//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no network access to crates.io (see
//! `third_party/README.md`), so this crate reimplements just enough of the
//! proptest surface for the workspace's property tests to run:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples,
//!   `prop::collection::vec` and `prop::sample::select`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`test_runner::TestCaseError`] for `?`-style failure propagation.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (test-name hash × case index), and there is **no
//! shrinking** — a failure reports the case number so it can be replayed,
//! but not a minimized input. For this workspace's oracle-comparison tests
//! that trade-off is acceptable; determinism means a red case stays red.

pub mod test_runner {
    use std::fmt;

    /// Why a test case failed. Carries a message only (no shrinking).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with a reason.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Alias used by upstream for rejecting inputs; treated as failure
        /// here (no strategy in this workspace filters inputs).
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps oracle-comparison suites
            // fast while still exploring a meaningful input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seed from the test's name and case index, so every test has its
        /// own reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                x: h ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Box the strategy (API parity; occasionally useful for naming).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vector-length specification: a fixed size or a `usize` range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fail the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Fail the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Define property tests. Each `pat in strategy` binding draws one value
/// per case; the body may use `?` with [`test_runner::TestCaseError`] and
/// the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest {} failed at case {}/{}: {}",
                           stringify!($name), case, cfg.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_streams() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, vec, tuples, select and prop_map all compose.
        #[test]
        fn strategies_compose(
            v in prop::collection::vec((0u32..10, 0usize..5), 1..20),
            pick in prop::sample::select(vec![1u64, 2, 3]),
            mapped in (0u32..4).prop_map(|x| x * 10),
        ) {
            prop_assert!((1..20).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!(*a < 10 && *b < 5);
            }
            prop_assert!([1u64, 2, 3].contains(&pick));
            prop_assert_eq!(mapped % 10, 0);
            prop_assert_ne!(mapped, 40);
        }
    }

    proptest! {
        /// `?` propagation works with TestCaseError.
        #[test]
        fn question_mark_propagates(x in 0u32..100) {
            let f = |v: u32| -> Result<(), TestCaseError> {
                if v >= 100 {
                    return Err(TestCaseError::fail("out of range"));
                }
                Ok(())
            };
            f(x)?;
        }
    }
}
