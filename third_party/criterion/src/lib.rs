//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! The build environment has no network access to crates.io (see
//! `third_party/README.md`), so this crate provides an API-compatible
//! wall-clock micro-runner: per benchmark it calibrates an iteration count
//! targeting ~`measurement_time / sample_size` per sample, takes
//! `sample_size` samples, and prints min/median/max time per iteration.
//! There is no statistics engine, no outlier analysis, and no HTML report —
//! the numbers are honest medians, good enough for the before/after
//! comparisons this workspace's benches exist for.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API parity; the
/// stub always runs setup once per measured invocation, which matches
/// `PerIteration` semantics and is safe for every batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks sharing runner settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (each sample is many iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        // Calibrate: time a single iteration, then pick a count that makes
        // each sample last ~measurement_time / sample_size.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let med = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{}/{:<32} [{} x {} iters]  min {}  med {}  max {}",
            self.name,
            name,
            self.sample_size,
            iters,
            fmt_secs(min),
            fmt_secs(med),
            fmt_secs(max)
        );
        self
    }

    /// End the group (API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Format seconds with an auto-selected unit, criterion-style.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Benchmark runner handle. Holds group defaults only.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            measurement_time,
            _parent: self,
        }
    }

    /// Chained configuration used by some harnesses; kept for parity.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// Collect benchmark functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target. Extra CLI
/// arguments from `cargo bench` (e.g. `--bench`, filters) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        g.bench_function("count_up", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
        assert!(runs > 0);
    }
}
