//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace pins its external dependencies to hand-rolled, API-compatible
//! local crates (see `third_party/README.md`). This one provides:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator (not the same
//!   stream as upstream's ChaCha12-based `StdRng`; any experiment artifact
//!   that depends on generated corpora was regenerated after the switch);
//! * [`Rng::gen`] / [`Rng::gen_range`] for the primitive types in use;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism is the load-bearing property: the same seed must yield the
//! same corpus on every host, which the tests below pin down.

/// Core random-source trait: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling convenience methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the `rand::SeedableRng` subset in use).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` by rejection sampling on the top bits.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator. *Not* stream-compatible with
    /// upstream `rand`'s ChaCha12 `StdRng` — only the API is.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (the `shuffle` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4u64..=4), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn rough_uniformity() {
        // Chi-squared-ish sanity: 8 buckets, 80k draws, each within 20%.
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
