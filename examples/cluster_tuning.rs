//! Cluster tuning: use the engine's metrics and the cluster model to pick
//! a configuration before paying for a real cluster.
//!
//! Sweeps pivot strategies, fragment counts and node counts on a Wiki-like
//! corpus and prints the simulated makespans, reduce skew and shuffle
//! volumes that drive the decision — the methodology behind the paper's
//! Figures 9 and 11.
//!
//! ```text
//! cargo run --release --example cluster_tuning
//! ```

use fsjoin_suite::prelude::*;

fn main() {
    let mut gen = CorpusProfile::WikiLike.config();
    gen.num_records = 2_000;
    let collection = fsjoin_suite::text::encode(&gen.generate());
    println!(
        "corpus: {} records, {} distinct tokens\n",
        collection.len(),
        collection.universe()
    );

    // --- 1. Pivot strategy: balance decides the reduce-phase makespan ----
    println!("pivot strategy sweep (θ=0.8, 10 nodes):");
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "strategy", "skew", "sim (ms)", "shuffle (KiB)"
    );
    for strategy in PivotStrategy::all() {
        let cfg = FsJoinConfig::default().with_pivot_strategy(strategy);
        let res = fsjoin_suite::fsjoin::run_self_join(&collection, &cfg);
        let filter = res.chain.job("fsjoin-filter").unwrap();
        println!(
            "{:<16} {:>12.2} {:>12.1} {:>14.0}",
            strategy.name(),
            filter.reduce_input_balance().skew,
            res.simulated_secs(&ClusterModel::paper_default(10)) * 1e3,
            filter.shuffle_bytes as f64 / 1024.0
        );
    }

    // --- 2. Fragment count: parallelism vs per-fragment overhead ---------
    println!("\nfragment count sweep (θ=0.8, 10 nodes):");
    println!(
        "{:<12} {:>12} {:>14}",
        "fragments", "sim (ms)", "candidates"
    );
    for fragments in [4usize, 8, 16, 32, 64] {
        let cfg = FsJoinConfig::default().with_fragments(fragments);
        let res = fsjoin_suite::fsjoin::run_self_join(&collection, &cfg);
        println!(
            "{:<12} {:>12.1} {:>14}",
            fragments,
            res.simulated_secs(&ClusterModel::paper_default(10)) * 1e3,
            res.candidates
        );
    }

    // --- 3. Node count: where does scaling flatten out? ------------------
    println!("\nnode count sweep (θ=0.8, reduce tasks = 3 × nodes):");
    println!("{:<8} {:>12} {:>12}", "nodes", "sim (ms)", "speedup");
    let mut base = None;
    for nodes in [2usize, 5, 10, 15, 20] {
        let cfg = FsJoinConfig::default().with_tasks(2 * nodes, 3 * nodes);
        let res = fsjoin_suite::fsjoin::run_self_join(&collection, &cfg);
        let secs = res.simulated_secs(&ClusterModel::paper_default(nodes));
        let base_secs = *base.get_or_insert(secs);
        println!(
            "{:<8} {:>12.1} {:>11.2}x",
            nodes,
            secs * 1e3,
            base_secs / secs
        );
    }

    println!(
        "\nreading: Even-TF minimizes skew; fragment count trades reduce \
         parallelism against segment-metadata overhead; node scaling \
         flattens as stragglers and shuffle dominate (paper Figure 9)."
    );
}
