//! Quickstart: find near-duplicate sentences with FS-Join.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fsjoin_suite::prelude::*;

fn main() {
    let documents = [
        "the quick brown fox jumps over the lazy dog",
        "the quick brown fox jumped over the lazy dog",
        "a completely different sentence about databases",
        "set similarity joins find all pairs of similar records",
        "set similarity joins find all pairs of similar records efficiently",
        "mapreduce is a programming model for large clusters",
    ];

    // 1. Tokenize and encode: tokens become global-order ranks
    //    (ascending frequency) — FS-Join's "ordering" phase.
    let corpus = RawCorpus::from_texts(&documents, &Tokenizer::Words);
    let collection = encode(&corpus);
    println!(
        "encoded {} records over {} distinct tokens",
        collection.len(),
        collection.universe()
    );

    // 2. Run the join. The default configuration is the paper's: Even-TF
    //    pivots, prefix join kernel, all four filters, horizontal
    //    partitioning on.
    let config = FsJoinConfig::default()
        .with_theta(0.6)
        .with_measure(Measure::Jaccard);
    let result = fsjoin_suite::fsjoin::run_self_join(&collection, &config);

    println!("\nsimilar pairs (Jaccard ≥ 0.6):");
    for pair in &result.pairs {
        println!(
            "  #{} ↔ #{}  sim={:.3}\n    {:?}\n    {:?}",
            pair.a, pair.b, pair.sim, documents[pair.a as usize], documents[pair.b as usize]
        );
    }

    // 3. Inspect what the engine did.
    let filter_job = result.chain.job("fsjoin-filter").expect("filter job ran");
    println!("\nengine metrics:");
    println!(
        "  candidates emitted by the filter job: {}",
        result.candidates
    );
    println!(
        "  shuffled bytes (filter job):          {}",
        filter_job.shuffle_bytes
    );
    println!(
        "  vertical pivots used:                 {:?}",
        result.pivots
    );
    println!(
        "  simulated 10-node cluster time:       {:.1} ms",
        result.simulated_secs(&ClusterModel::paper_default(10)) * 1e3
    );

    assert!(!result.pairs.is_empty(), "expected near-duplicates");
}
