//! Record linkage across two collections (R×S join) — the data-integration
//! workload from the paper's introduction.
//!
//! Two "product catalogs" describe overlapping items with slightly
//! different wording; the R×S join links records describing the same item.
//! Demonstrates [`encode_two`] (shared global ordering) and
//! [`run_rs_join`]'s id-offset convention.
//!
//! ```text
//! cargo run --release --example record_linkage
//! ```

use fsjoin_suite::fsjoin::run_rs_join;
use fsjoin_suite::prelude::*;
use fsjoin_suite::text::encode::encode_two;

fn main() {
    let catalog_a = [
        "apple iphone 15 pro max 256gb natural titanium smartphone",
        "samsung galaxy s24 ultra 512gb titanium gray smartphone",
        "sony wh-1000xm5 wireless noise canceling headphones black",
        "dell xps 13 laptop intel core i7 16gb ram 512gb ssd",
        "bose quietcomfort ultra wireless earbuds white",
    ];
    let catalog_b = [
        "apple iphone 15 pro max smartphone 256gb titanium natural", // = A0
        "sony wh 1000xm5 noise canceling wireless headphones",       // = A2
        "lenovo thinkpad x1 carbon laptop 14 inch",
        "samsung galaxy s24 ultra smartphone 512gb gray titanium", // = A1
    ];

    // Both sides must share one global ordering: encode them together.
    let tokenizer = Tokenizer::Words;
    let r_corpus = RawCorpus::from_texts(&catalog_a, &tokenizer);
    let s_corpus = RawCorpus::from_texts(&catalog_b, &tokenizer);
    let (r, s) = encode_two(&r_corpus, &s_corpus);

    let theta = 0.7;
    let result = run_rs_join(&r, &s, &FsJoinConfig::default().with_theta(theta));

    // S-side ids come back offset by |R|.
    let offset = r.len() as u32;
    println!("links at Jaccard ≥ {theta}:");
    let mut links = Vec::new();
    for p in &result.pairs {
        let (a_id, b_id) = (p.a, p.b - offset);
        println!(
            "  A{a_id} ↔ B{b_id}  sim={:.3}\n    {:?}\n    {:?}",
            p.sim, catalog_a[a_id as usize], catalog_b[b_id as usize]
        );
        links.push((a_id, b_id));
    }
    links.sort_unstable();
    assert_eq!(
        links,
        vec![(0, 0), (1, 3), (2, 1)],
        "expected exactly the three true links"
    );

    // Threshold sweep: precision/recall trade-off for linkage.
    println!("\nthreshold sweep:");
    for theta in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let res = run_rs_join(&r, &s, &FsJoinConfig::default().with_theta(theta));
        println!("  θ = {theta}: {} links", res.pairs.len());
    }
}
