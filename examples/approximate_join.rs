//! Approximate joins: MinHash/LSH candidate generation vs the exact
//! FS-Join — the "approximate approaches" the paper's conclusion names as
//! future work.
//!
//! Sweeps LSH band shapes on a Wiki-like corpus and reports recall
//! (precision is always 1.0: LSH candidates are verified exactly).
//!
//! ```text
//! cargo run --release --example approximate_join
//! ```

use fsjoin_suite::prelude::*;
use fsjoin_suite::similarity::minhash::{lsh_self_join, LshConfig};
use fsjoin_suite::similarity::pair::id_pairs;
use std::time::Instant;

fn main() {
    let mut gen = CorpusProfile::WikiLike.config();
    gen.num_records = 2_000;
    gen.near_dup_fraction = 0.15;
    let collection = fsjoin_suite::text::encode(&gen.generate());
    let theta = 0.8;

    // Ground truth from the exact distributed join.
    let start = Instant::now();
    let exact = fsjoin_suite::fsjoin::run_self_join(
        &collection,
        &FsJoinConfig::default().with_theta(theta),
    );
    let exact_secs = start.elapsed().as_secs_f64();
    let truth = id_pairs(&exact.pairs);
    println!(
        "exact FS-Join: {} pairs in {:.2}s ({} candidate records)",
        truth.len(),
        exact_secs,
        exact.candidates
    );

    println!(
        "\n{:<14} {:>10} {:>10} {:>12} {:>10}",
        "bands x rows", "pairs", "recall", "P(cand|0.8)", "time (s)"
    );
    for (bands, rows) in [(8usize, 8usize), (16, 6), (32, 4), (64, 3), (128, 2)] {
        let cfg = LshConfig {
            bands,
            rows,
            seed: 7,
        };
        let start = Instant::now();
        let approx = lsh_self_join(&collection.views(), Measure::Jaccard, theta, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let got = id_pairs(&approx);
        let hit = got.iter().filter(|p| truth.contains(p)).count();
        // Verified candidates => no false positives, ever.
        assert_eq!(hit, got.len(), "LSH join must have perfect precision");
        let recall = if truth.is_empty() {
            1.0
        } else {
            hit as f64 / truth.len() as f64
        };
        println!(
            "{:<14} {:>10} {:>9.1}% {:>12.3} {:>10.2}",
            format!("{bands} x {rows}"),
            got.len(),
            recall * 100.0,
            cfg.candidate_probability(theta),
            secs
        );
    }
    println!(
        "\nreading: more bands (shorter rows) raise the collision \
         probability at θ and with it recall; the exact join remains the \
         reference for correctness-critical workloads."
    );
}
