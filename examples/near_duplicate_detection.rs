//! Near-duplicate detection on an email-like corpus — the data-cleaning
//! workload the paper's introduction motivates.
//!
//! Generates an Enron-like corpus with planted near-duplicate clusters,
//! runs FS-Join at a high threshold, groups the resulting pairs into
//! duplicate clusters with a union-find, and cross-checks against
//! RIDPairsPPJoin.
//!
//! ```text
//! cargo run --release --example near_duplicate_detection
//! ```

use fsjoin_suite::baselines::ridpairs::ridpairs_ppjoin;
use fsjoin_suite::baselines::BaselineConfig;
use fsjoin_suite::prelude::*;
use fsjoin_suite::text::encode as text_encode;

/// Minimal union-find over record ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    // An Enron-analogue corpus: few records, long, with ~15% near-dups.
    let mut gen = CorpusProfile::EmailLike.config();
    gen.num_records = 400;
    gen.near_dup_fraction = 0.15;
    let collection = text_encode::encode(&gen.generate());
    let stats = collection.stats();
    println!(
        "corpus: {} records, avg {:.0} tokens (min {}, max {})",
        stats.records, stats.avg_len, stats.min_len, stats.max_len
    );

    let theta = 0.85;
    let result = fsjoin_suite::fsjoin::run_self_join(
        &collection,
        &FsJoinConfig::default().with_theta(theta),
    );
    println!(
        "FS-Join found {} near-duplicate pairs at θ = {theta}",
        result.pairs.len()
    );

    // Group into duplicate clusters.
    let mut uf = UnionFind::new(collection.len());
    for p in &result.pairs {
        uf.union(p.a, p.b);
    }
    let mut clusters: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for id in 0..collection.len() as u32 {
        clusters.entry(uf.find(id)).or_default().push(id);
    }
    let dup_clusters: Vec<&Vec<u32>> = clusters.values().filter(|c| c.len() > 1).collect();
    println!("duplicate clusters: {}", dup_clusters.len());
    for (i, cluster) in dup_clusters.iter().take(5).enumerate() {
        println!("  cluster {i}: records {:?}", cluster);
    }
    println!(
        "a dedup pass keeping one representative per cluster would retain {} of {} records",
        clusters.len(),
        collection.len()
    );

    // Cross-check with the strongest baseline.
    let baseline = ridpairs_ppjoin(
        &collection,
        Measure::Jaccard,
        theta,
        &BaselineConfig::default(),
    );
    assert_eq!(
        result.pairs.len(),
        baseline.pairs.len(),
        "FS-Join and RIDPairsPPJoin must agree"
    );
    println!(
        "RIDPairsPPJoin agrees ({} pairs) — but shuffled {:.1}x more bytes in its kernel job",
        baseline.pairs.len(),
        baseline.chain.job("ridpairs-kernel").unwrap().shuffle_bytes as f64
            / result.chain.job("fsjoin-filter").unwrap().shuffle_bytes as f64
    );
}
