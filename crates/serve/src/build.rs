//! The index-build plan: batch construction of the sealed main index.
//!
//! Building a serving index *is* a batch job, so it runs as a one-stage
//! [`Plan`] on the same engine as the joins: mappers walk their record
//! split and emit `(token, posting)` for each record's `theta_min` probe
//! prefix (tokens resolved from the shared `Arc<TokenPool>`, distributed-
//! cache style — no tokens travel through the shuffle); a streaming
//! reducer seals each token group into a columnar [`PostingBlock`]. The
//! partitioner is **token-range** (monotonic in rank), so concatenating
//! the reduce partitions in task order yields ascending tokens — exactly
//! the layout [`MainIndex`](crate::index) serves from, adopted by `Arc`
//! via [`PlanOutcome::take_sealed`] without a materialize-then-reindex
//! copy.

use std::sync::Arc;

use ssj_mapreduce::{
    Dataset, DirectPartitioner, Emitter, GroupValues, Mapper, Plan, PlanOutcome, PlanRunner,
    StageHandle, StreamingReducer,
};
use ssj_observe::span;
use ssj_similarity::Measure;
use ssj_text::{Collection, PooledRecord, TokenId, TokenPool};

use crate::config::ServeConfig;
use crate::index::ServeIndex;
use crate::posting::{Posting, PostingBlock};

/// Monotonic token-range partition function shared by the build plan and
/// compaction: rank `t` of a `universe`-token vocabulary goes to partition
/// `t·parts/universe`. Monotonic in `t`, so partition concatenation is
/// token-ascending.
pub(crate) fn token_partition(t: TokenId, universe: usize, parts: usize) -> usize {
    debug_assert!(parts > 0);
    let u = universe.max(1) as u64;
    (((t as u64).min(u - 1) * parts as u64) / u) as usize
}

/// Map task: emit the `theta_min` probe prefix of each record as
/// `(token, posting)` rows.
struct PrefixMapper {
    pool: Arc<TokenPool>,
    measure: Measure,
    theta_min: f64,
}

impl Mapper for PrefixMapper {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = TokenId;
    type OutValue = Posting;

    fn map(&mut self, _rid: u32, record: PooledRecord, out: &mut Emitter<TokenId, Posting>) {
        let tokens = self.pool.resolve(record.span);
        let prefix = self.measure.probe_prefix_len(self.theta_min, tokens.len());
        for (pos, &t) in tokens[..prefix].iter().enumerate() {
            out.emit(
                t,
                Posting {
                    rec: record.id,
                    pos: pos as u32,
                    len: tokens.len() as u32,
                },
            );
        }
    }
}

/// Streaming reduce task: seal one token's postings into a columnar
/// block. Values arrive in (map-task, emission) order = record-id order
/// (the dataset is chunked sequentially), so blocks come out
/// record-ascending without a sort.
struct BlockReducer;

impl StreamingReducer for BlockReducer {
    type InKey = TokenId;
    type InValue = Posting;
    type OutKey = TokenId;
    type OutValue = PostingBlock;

    fn reduce_group(
        &mut self,
        key: &TokenId,
        values: &mut GroupValues<'_, '_, TokenId, Posting>,
        out: &mut Emitter<TokenId, PostingBlock>,
    ) {
        let mut block = PostingBlock::default();
        for p in values {
            block.push(*p);
        }
        debug_assert!(block.recs.windows(2).all(|w| w[0] < w[1]));
        out.emit(*key, block);
    }
}

/// A prepared (not yet run) index build: the plan plus everything
/// [`ServeIndex::from_plan`] needs to adopt its output.
///
/// The two-step shape (`new` → `run`) exposes the plan and stage handle,
/// so callers embedding the build into a larger DAG — or the zero-copy
/// harness timing only the adoption step — can run the plan themselves
/// and hand the outcome to [`ServeIndex::from_plan`].
pub struct ServeIndexBuild {
    plan: Plan,
    handle: StageHandle<TokenId, PostingBlock>,
    pool: Arc<TokenPool>,
    freqs: Vec<u64>,
    cfg: ServeConfig,
}

impl ServeIndexBuild {
    /// Stage the build plan over `collection` (records keep their ids;
    /// the pool is shared, not copied).
    pub fn new(collection: &Collection, cfg: ServeConfig) -> ServeIndexBuild {
        cfg.validate();
        let pool = collection.share_pool();
        let universe = collection.token_freqs.len();
        let parts = cfg.build_partitions;

        let input: Vec<(u32, PooledRecord)> = (0..collection.len() as u32)
            .map(|rid| {
                (
                    rid,
                    PooledRecord {
                        id: rid,
                        span: pool.span_of(rid),
                    },
                )
            })
            .collect();

        let mut plan = Plan::new("serve").with_workers(cfg.workers);
        let handle = plan.add_partitioned(
            "serve-build",
            Dataset::from_records(input, cfg.map_tasks),
            parts,
            {
                let pool = Arc::clone(&pool);
                let (measure, theta_min) = (cfg.measure, cfg.theta_min);
                move |_| PrefixMapper {
                    pool: Arc::clone(&pool),
                    measure,
                    theta_min,
                }
            },
            |_| BlockReducer,
            DirectPartitioner::new(move |t: &TokenId| token_partition(*t, universe, parts)),
        );

        ServeIndexBuild {
            plan,
            handle,
            pool,
            freqs: collection.token_freqs.clone(),
            cfg,
        }
    }

    /// The sealed-output handle (`from_plan`'s second argument).
    pub fn handle(&self) -> StageHandle<TokenId, PostingBlock> {
        self.handle
    }

    /// Take the staged plan, leaving an empty one — for callers running
    /// the plan themselves (e.g. under a profiler).
    pub fn take_plan(&mut self) -> Plan {
        std::mem::replace(&mut self.plan, Plan::new("serve"))
    }

    /// Adopt an already-run plan's outcome (pairs with [`take_plan`]).
    ///
    /// [`ServeIndexBuild::take_plan`]: Self::take_plan
    pub fn adopt(self, outcome: &mut PlanOutcome) -> ServeIndex {
        ServeIndex::from_plan(outcome, self.handle, self.pool, self.freqs, self.cfg)
    }

    /// Run the plan and seal the index.
    pub fn run(self) -> ServeIndex {
        let _span = span("serve.stage", "build")
            .field("records", self.pool.len() as u64)
            .field("partitions", self.cfg.build_partitions as u64);
        let mut outcome = PlanRunner::new(self.cfg.plan_mode).run(self.plan);
        ServeIndex::from_plan(&mut outcome, self.handle, self.pool, self.freqs, self.cfg)
    }
}

/// Build a serving index over `collection` — the one-call path.
pub fn build_index(collection: &Collection, cfg: &ServeConfig) -> ServeIndex {
    ServeIndexBuild::new(collection, cfg.clone()).run()
}
