//! Posting types shared by the build plan, the sealed main index, and the
//! mutable delta index.
//!
//! A [`Posting`] is one `(record, position, length)` triple: record `rec`
//! carries the posting's token at position `pos` of its sorted token
//! vector, and has `len` tokens total. Storing the length *in* the posting
//! is the Bitmap-Filter-style design point (prune state resident next to
//! the index): the probe path applies the length window without touching
//! the record arena, so a pruned posting costs one comparison and zero
//! cache misses outside the posting block.
//!
//! A [`PostingBlock`] is one token's posting list stored **columnar** —
//! three parallel vectors rather than an array of structs — so the length
//! filter scans a contiguous `&[u32]` and the verify stage reads record
//! ids without striding over positions. Blocks are also the build plan's
//! reduce *output* type: the reducer seals each token's postings into a
//! block, and [`ServeIndex::from_plan`](crate::ServeIndex::from_plan)
//! serves straight out of the sealed partitions.

use ssj_common::ByteSize;
use ssj_text::{RecordId, TokenId};

/// One posting: `(record, position, length)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Posting {
    /// Record id within the serving index (main arena ++ delta pool).
    pub rec: RecordId,
    /// Position of the token within the record's sorted token vector.
    pub pos: u32,
    /// The record's total token count.
    pub len: u32,
}

impl ByteSize for Posting {
    #[inline]
    fn byte_size(&self) -> usize {
        12
    }
}

/// One token's posting list, columnar: `recs[i]`, `poss[i]`, `lens[i]`
/// form the `i`-th [`Posting`], ascending in `recs` (build and compaction
/// both emit record-ascending lists; probes rely on it only for
/// determinism, not correctness).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingBlock {
    /// Record ids, ascending.
    pub recs: Vec<RecordId>,
    /// Token positions, parallel to `recs`.
    pub poss: Vec<u32>,
    /// Record lengths, parallel to `recs`.
    pub lens: Vec<u32>,
}

impl PostingBlock {
    /// A block with room for `n` postings.
    pub fn with_capacity(n: usize) -> Self {
        PostingBlock {
            recs: Vec::with_capacity(n),
            poss: Vec::with_capacity(n),
            lens: Vec::with_capacity(n),
        }
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when the block holds no postings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Append one posting.
    #[inline]
    pub fn push(&mut self, p: Posting) {
        self.recs.push(p.rec);
        self.poss.push(p.pos);
        self.lens.push(p.len);
    }

    /// The `i`-th posting, re-assembled from the columns.
    #[inline]
    pub fn get(&self, i: usize) -> Posting {
        Posting {
            rec: self.recs[i],
            pos: self.poss[i],
            len: self.lens[i],
        }
    }

    /// Iterate the postings in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl ByteSize for PostingBlock {
    /// Wire size: three length-prefixed u32 columns — identical to the
    /// `(rec, pos, len)` rows plus two extra prefixes, so block-shaped
    /// shuffle accounting stays comparable to row-shaped accounting.
    fn byte_size(&self) -> usize {
        self.recs.byte_size() + self.poss.byte_size() + self.lens.byte_size()
    }
}

/// Flatten a `(token, block)` sequence into `(token, posting)` rows —
/// the run shape the compaction merge consumes.
pub(crate) fn expand<'a>(
    entries: impl Iterator<Item = &'a (TokenId, PostingBlock)> + 'a,
) -> impl Iterator<Item = (TokenId, Posting)> + 'a {
    entries.flat_map(|(t, block)| block.iter().map(move |p| (*t, p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips_postings() {
        let mut b = PostingBlock::with_capacity(2);
        assert!(b.is_empty());
        let p0 = Posting {
            rec: 3,
            pos: 0,
            len: 7,
        };
        let p1 = Posting {
            rec: 9,
            pos: 2,
            len: 4,
        };
        b.push(p0);
        b.push(p1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), p0);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![p0, p1]);
    }

    #[test]
    fn byte_sizes_are_row_comparable() {
        let mut b = PostingBlock::default();
        assert_eq!(b.byte_size(), 12); // three empty length prefixes
        b.push(Posting {
            rec: 1,
            pos: 0,
            len: 2,
        });
        assert_eq!(b.byte_size(), 12 + 12);
        assert_eq!(
            Posting {
                rec: 0,
                pos: 0,
                len: 0
            }
            .byte_size(),
            12
        );
    }

    #[test]
    fn expand_flattens_in_order() {
        let mut a = PostingBlock::default();
        a.push(Posting {
            rec: 1,
            pos: 0,
            len: 3,
        });
        a.push(Posting {
            rec: 4,
            pos: 1,
            len: 5,
        });
        let mut b = PostingBlock::default();
        b.push(Posting {
            rec: 2,
            pos: 0,
            len: 2,
        });
        let entries = [(10u32, a), (11u32, b)];
        let rows: Vec<(u32, u32)> = expand(entries.iter()).map(|(t, p)| (t, p.rec)).collect();
        assert_eq!(rows, vec![(10, 1), (10, 4), (11, 2)]);
    }
}
