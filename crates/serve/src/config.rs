//! Serving-plane configuration.

use ssj_mapreduce::PlanMode;
use ssj_similarity::Measure;

/// Configuration of a [`ServeIndex`](crate::ServeIndex) and its build plan.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Similarity measure the index answers queries under.
    pub measure: Measure,
    /// Smallest probe threshold the index supports. Index prefixes are
    /// sized for `theta_min`; probes may use any `θ ≥ theta_min` (a higher
    /// θ only shortens the probe prefix — the longer index prefix stays
    /// sound). Lower `theta_min` means longer prefixes: more index, more
    /// candidates, more thresholds servable.
    pub theta_min: f64,
    /// Reduce tasks of the build plan = sealed posting partitions of the
    /// main index (token-range partitioned, so concatenating partitions in
    /// order yields ascending tokens).
    pub build_partitions: usize,
    /// Map tasks of the build plan.
    pub map_tasks: usize,
    /// Worker threads for the build plan (query-path concurrency is the
    /// caller's: probes take `&self`).
    pub workers: usize,
    /// Plan sequencing mode for the build.
    pub plan_mode: PlanMode,
    /// Consult record bitmaps before the probe cascade's exact
    /// verification step (default true). Lossless: the bitmap bound is an
    /// upper bound on overlap, so hits are identical with it on or off —
    /// only `serve.probe.verified` and probe latency move (DESIGN.md §12).
    pub bitmap_prune: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            measure: Measure::Jaccard,
            theta_min: 0.7,
            build_partitions: 8,
            map_tasks: 8,
            workers: 4,
            plan_mode: PlanMode::Pipelined,
            bitmap_prune: true,
        }
    }
}

impl ServeConfig {
    /// Set the measure.
    pub fn with_measure(mut self, m: Measure) -> Self {
        self.measure = m;
        self
    }

    /// Set the minimum supported probe threshold.
    pub fn with_theta_min(mut self, theta: f64) -> Self {
        self.theta_min = theta;
        self
    }

    /// Set the build plan's reduce-task / sealed-partition count.
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.build_partitions = n;
        self
    }

    /// Set the build plan's map-task count.
    pub fn with_map_tasks(mut self, n: usize) -> Self {
        self.map_tasks = n;
        self
    }

    /// Set the build plan's worker-thread count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the build plan's sequencing mode.
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// Toggle the bitmap prune in front of exact verification. Turn off
    /// only for equivalence gates and A-B measurements.
    pub fn with_bitmap_prune(mut self, on: bool) -> Self {
        self.bitmap_prune = on;
        self
    }

    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(
            self.theta_min > 0.0 && self.theta_min <= 1.0,
            "theta_min must be in (0, 1]"
        );
        assert!(self.build_partitions > 0, "need at least one partition");
        assert!(self.map_tasks > 0, "need at least one map task");
    }
}
