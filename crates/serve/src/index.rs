//! The long-lived serving index: a sealed main index built by a plan,
//! a mutable [`DeltaIndex`] for inserts, and the probe path that answers
//! θ-threshold and top-k queries without launching any MapReduce job.
//!
//! # Index layout
//!
//! The main index serves straight out of the build plan's sealed reduce
//! partitions: each partition is an `Arc<Vec<(token, PostingBlock)>>`
//! taken from the plan outcome without copying (`PlanOutcome::take_sealed`).
//! Partitions are token-range partitioned, so their concatenation is
//! token-ascending; a flat `directory` indexed by token rank packs
//! `(partition, slot)` into a `u64` for O(1) posting lookup. Posting
//! lists hold `(record, position, length)` columnar (see [`PostingBlock`]),
//! covering each record's `theta_min` probe prefix.
//!
//! # Probe filter order
//!
//! For a query `x` at threshold `θ ≥ theta_min`, candidates flow through
//! the FS-Join/PPJoin filter cascade, cheapest first:
//!
//! 1. **prefix** — only postings of `x`'s first `probe_prefix_len(θ, |x|)`
//!    tokens are touched; records sharing no such token are never read.
//! 2. **length** — each posting's resident `len` is checked against the
//!    `[min_partner_len, max_partner_len]` window before the accumulator
//!    is consulted.
//! 3. **position** — the accumulated overlap plus the positional upper
//!    bound (`remaining` tokens past this match on either side) must reach
//!    `min_overlap(θ, |x|, |y|)`, else the candidate is tombstoned.
//! 4. **bitmap** — survivors' pooled token bitmaps bound the overlap from
//!    above ([`overlap_upper_bound`]); candidates whose bound falls short
//!    of `min_overlap` skip exact verification (lossless — see DESIGN.md
//!    §12, toggled by [`ServeConfig::bitmap_prune`](crate::config::ServeConfig)).
//! 5. **verify** — survivors get an exact early-exit merge intersection
//!    ([`intersect_count_at_least`]) and the measure's `passes` predicate.
//!
//! The index prefix is sized for `theta_min` while the probe prefix is
//! sized for the query's θ: both are at least `|·| − min_overlap(..) + 1`
//! long, so the classic prefix lemma applies a fortiori and recall stays
//! exact for every `θ ≥ theta_min`.
//!
//! # Delta and compaction lifecycle
//!
//! Inserts append to the delta pool against the *frozen* token ordering
//! (out-of-vocabulary tokens may use any rank `≥ universe`; any consistent
//! total order keeps prefix filtering sound). Probes scan the delta block
//! right after the main block per token, so inserts are visible
//! immediately. [`ServeIndex::compact`] merges both sides' postings with
//! the loser-tree [`GroupedRuns`] merge, concatenates the token pools, and
//! reseals — main record ids never change, delta ids are already offset
//! past the main arena, so public ids are stable across compactions.

use std::sync::Arc;
use std::time::Instant;

use fsjoin::keys;
use ssj_common::FxHashMap;
use ssj_mapreduce::{GroupedRuns, PlanOutcome, StageHandle};
use ssj_observe::{span, MetricsRegistry};
use ssj_similarity::bitmap::overlap_upper_bound;
use ssj_similarity::intersect::intersect_count_at_least;
use ssj_similarity::Measure;
use ssj_text::{MalformedRecord, RecordId, TokenId, TokenPool};

use crate::config::ServeConfig;
use crate::delta::DeltaIndex;
use crate::posting::{expand, Posting, PostingBlock};
use crate::stats::ProbeStats;

/// Threshold comparisons tolerate the same slack as the measure kernels.
const EPS: f64 = 1e-9;

/// Accumulator tombstone: candidate killed by the position filter.
const PRUNED: u32 = u32::MAX;

/// Directory sentinel: token has no postings.
const EMPTY: u64 = u64::MAX;

/// The sealed, immutable side of the index.
#[derive(Debug)]
pub(crate) struct MainIndex {
    /// Sealed posting partitions, token-ascending across the
    /// concatenation. Held by `Arc` exactly as the plan produced them.
    parts: Vec<Arc<Vec<(TokenId, PostingBlock)>>>,
    /// Token rank → packed `(partition << 32) | slot`, or [`EMPTY`].
    directory: Vec<u64>,
    /// All main record lengths, ascending — the main half of the
    /// prefix-filter pruning-power accounting.
    sorted_lens: Vec<u32>,
    /// Total postings across all partitions.
    postings: usize,
}

impl MainIndex {
    /// Assemble from sealed partitions. O(1) *container* allocations —
    /// the directory, the length vector, and the partition vector — so
    /// the zero-copy harness can bound the build with a small constant.
    pub(crate) fn build(
        parts: Vec<Arc<Vec<(TokenId, PostingBlock)>>>,
        universe: usize,
        lens: impl Iterator<Item = usize>,
    ) -> MainIndex {
        let mut directory = vec![EMPTY; universe];
        let mut postings = 0usize;
        for (p, part) in parts.iter().enumerate() {
            for (s, (t, block)) in part.iter().enumerate() {
                debug_assert!((*t as usize) < universe, "token outside directory");
                debug_assert_eq!(directory[*t as usize], EMPTY, "token in two partitions");
                directory[*t as usize] = ((p as u64) << 32) | s as u64;
                postings += block.len();
            }
        }
        let mut sorted_lens: Vec<u32> = lens.map(|l| l as u32).collect();
        sorted_lens.sort_unstable();
        MainIndex {
            parts,
            directory,
            sorted_lens,
            postings,
        }
    }

    /// Posting block for token `t`, if indexed. Ranks beyond the directory
    /// (out-of-vocabulary probe tokens) simply have no postings.
    #[inline]
    pub(crate) fn postings_of(&self, t: TokenId) -> Option<&PostingBlock> {
        let packed = *self.directory.get(t as usize)?;
        if packed == EMPTY {
            return None;
        }
        let (p, s) = ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize);
        Some(&self.parts[p][s].1)
    }

    /// All postings as token-ascending rows (compaction's main run).
    pub(crate) fn iter_postings(&self) -> impl Iterator<Item = (TokenId, Posting)> + '_ {
        self.parts.iter().flat_map(|p| expand(p.iter()))
    }
}

/// Count of values in an ascending slice within `[lo, hi]`.
fn window_count(sorted: &[u32], lo: u32, hi: u32) -> usize {
    if lo > hi {
        return 0;
    }
    sorted.partition_point(|&l| l <= hi) - sorted.partition_point(|&l| l < lo)
}

/// A long-lived similarity-serving index over a frozen token ordering.
///
/// Build one with [`build_index`](crate::build_index) (runs the build plan)
/// or [`ServeIndex::from_plan`] (adopts an already-run plan's sealed
/// output). Probes take `&self` and are safe to issue from many threads;
/// [`insert`](ServeIndex::insert) and [`compact`](ServeIndex::compact)
/// take `&mut self`.
#[derive(Debug)]
pub struct ServeIndex {
    cfg: ServeConfig,
    /// Main token arena (record ids `0..pool.len()`).
    pool: Arc<TokenPool>,
    /// Frozen global-ordering frequency table; `freqs.len()` is the token
    /// universe the directory covers (until a compaction widens it).
    freqs: Vec<u64>,
    main: MainIndex,
    delta: DeltaIndex,
    registry: Arc<MetricsRegistry>,
}

impl ServeIndex {
    /// Adopt a build plan's sealed output as the main index. The posting
    /// partitions move out of `outcome` by `Arc` — zero posting-list deep
    /// copies (asserted by the counting-allocator harness in
    /// `tests/zero_copy.rs`).
    pub fn from_plan(
        outcome: &mut PlanOutcome,
        handle: StageHandle<TokenId, PostingBlock>,
        pool: Arc<TokenPool>,
        freqs: Vec<u64>,
        cfg: ServeConfig,
    ) -> ServeIndex {
        cfg.validate();
        let parts = outcome.take_sealed(handle);
        let main = MainIndex::build(parts, freqs.len(), pool.lengths());
        let idx = ServeIndex {
            cfg,
            pool,
            freqs,
            main,
            delta: DeltaIndex::new(),
            registry: Arc::new(MetricsRegistry::new()),
        };
        idx.refresh_gauges();
        idx
    }

    /// The index's own metrics registry (`serve.*` keys).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Share the registry handle (e.g. to merge into a global one).
    pub fn share_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Total records visible to probes (main + delta).
    pub fn len(&self) -> usize {
        self.pool.len() + self.delta.len()
    }

    /// True when the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records currently in the delta (un-compacted) side.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Postings in the sealed main index.
    pub fn main_postings(&self) -> usize {
        self.main.postings
    }

    /// The frozen frequency table backing the token ordering.
    pub fn token_freqs(&self) -> &[u64] {
        &self.freqs
    }

    /// Tokens of any visible record (main arena or delta pool).
    #[inline]
    pub fn tokens_of(&self, rec: RecordId) -> &[TokenId] {
        let base = self.pool.len() as RecordId;
        if rec < base {
            self.pool.tokens_of(rec)
        } else {
            self.delta.tokens_of(rec - base)
        }
    }

    /// Bitmap of any visible record (main arena or delta pool). Both
    /// pools use the default width, so lanes line up.
    #[inline]
    fn bitmap_of(&self, rec: RecordId) -> &[u64] {
        let base = self.pool.len() as RecordId;
        if rec < base {
            self.pool.bitmap_of(rec)
        } else {
            self.delta.pool().bitmap_of(rec - base)
        }
    }

    /// Answer a θ-threshold probe: all visible records `y` with
    /// `sim(x, y) ≥ θ`, as `(record, score)` ascending by record id.
    ///
    /// Convenience wrapper around [`probe_with`](ServeIndex::probe_with)
    /// that times the query and flushes stats + latency into the index
    /// registry.
    ///
    /// `tokens` must be strictly ascending in the index's frozen token
    /// ordering (ranks `≥ universe` are allowed: out-of-vocabulary tokens
    /// match nothing but keep the order consistent).
    pub fn probe(&self, tokens: &[TokenId], theta: f64) -> Vec<(RecordId, f64)> {
        let start = Instant::now();
        let mut stats = ProbeStats::default();
        let out = self.probe_with(tokens, theta, None, &mut stats);
        self.note_probe(&stats, &start);
        out
    }

    /// Top-`k` most similar visible records, scored at the measure and
    /// admitted at `theta_min`, ties broken by ascending record id.
    pub fn top_k(&self, tokens: &[TokenId], k: usize) -> Vec<(RecordId, f64)> {
        let start = Instant::now();
        let mut stats = ProbeStats::default();
        let mut out = self.probe_with(tokens, self.cfg.theta_min, None, &mut stats);
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        self.note_probe(&stats, &start);
        out
    }

    fn note_probe(&self, stats: &ProbeStats, start: &Instant) {
        stats.record_to(&self.registry);
        self.registry.counter_add(keys::SERVE_PROBE_QUERIES, 1);
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.registry
            .histogram_record(keys::SERVE_PROBE_LATENCY_US, micros);
    }

    /// The probe kernel: candidate generation over the prefix postings,
    /// length + position filtering, exact verification. Accumulates into
    /// caller-held `stats` (no registry traffic — the closed-loop harness
    /// keeps these thread-local) and skips `exclude` (self-join style
    /// probes of an indexed record).
    ///
    /// # Panics
    /// Panics if `theta` lies outside `[theta_min, 1]` — the index prefix
    /// is only long enough for thresholds it was built for.
    pub fn probe_with(
        &self,
        tokens: &[TokenId],
        theta: f64,
        exclude: Option<RecordId>,
        stats: &mut ProbeStats,
    ) -> Vec<(RecordId, f64)> {
        assert!(
            theta + EPS >= self.cfg.theta_min && theta <= 1.0 + EPS,
            "probe theta {theta} outside supported [{}, 1]",
            self.cfg.theta_min
        );
        debug_assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "probe tokens must be strictly ascending"
        );
        let qlen = tokens.len();
        if qlen == 0 {
            return Vec::new();
        }
        let m = self.cfg.measure;
        let min_len = m.min_partner_len(theta, qlen).max(1) as u32;
        let max_len = m.max_partner_len(theta, qlen).min(u32::MAX as usize) as u32;
        let probe_len = m.probe_prefix_len(theta, qlen);
        let candidates_before = stats.candidates;

        let mut acc: FxHashMap<RecordId, u32> = FxHashMap::default();
        for (i, &t) in tokens[..probe_len].iter().enumerate() {
            let sources = [self.main.postings_of(t), self.delta.postings_of(t)];
            for block in sources.into_iter().flatten() {
                scan_block(
                    block, m, theta, qlen, i, min_len, max_len, exclude, &mut acc, stats,
                );
            }
        }

        // Prefix-filter pruning power: records inside the length window
        // that no probe-prefix token ever reached.
        let mut eligible = window_count(&self.main.sorted_lens, min_len, max_len)
            + window_count(self.delta.sorted_lens(), min_len, max_len);
        if let Some(e) = exclude {
            let l = self.tokens_of(e).len() as u32;
            if (min_len..=max_len).contains(&l) {
                eligible -= 1;
            }
        }
        let seen = stats.candidates - candidates_before;
        stats.prefix_pruned += (eligible as u64).saturating_sub(seen);

        // Verify survivors in record order (deterministic output).
        let mut survivors: Vec<RecordId> = acc
            .into_iter()
            .filter(|&(_, count)| count != PRUNED)
            .map(|(rec, _)| rec)
            .collect();
        survivors.sort_unstable();
        let mut qbits = Vec::new();
        if self.cfg.bitmap_prune {
            self.pool.fill_bitmap(tokens, &mut qbits);
        }
        let mut out = Vec::new();
        for rec in survivors {
            let ytokens = self.tokens_of(rec);
            let alpha = m.min_overlap(theta, qlen, ytokens.len());
            if self.cfg.bitmap_prune {
                // Saturation guard: skip the bitmap reads when the bound's
                // floor `(|x| + |y| - width) / 2` already reaches α (long
                // records saturate the bitmap, so it cannot prune).
                let floor_ub = (qlen + ytokens.len()).saturating_sub(self.pool.bitmap_bits()) / 2;
                if floor_ub < alpha {
                    stats.bitmap_checks += 1;
                    let ub = overlap_upper_bound(&qbits, self.bitmap_of(rec), qlen, ytokens.len());
                    if ub < alpha {
                        stats.bitmap_pruned += 1;
                        continue;
                    }
                }
            }
            stats.verified += 1;
            if let Some(overlap) = intersect_count_at_least(tokens, ytokens, alpha) {
                if m.passes(overlap, qlen, ytokens.len(), theta) {
                    stats.hits += 1;
                    out.push((rec, m.score(overlap, qlen, ytokens.len())));
                }
            }
        }
        out
    }

    /// Insert one record (tokens strictly ascending in the frozen
    /// ordering; out-of-vocabulary ranks `≥ universe` welcome). Returns
    /// the record's public id — visible to probes immediately.
    pub fn insert(&mut self, tokens: &[TokenId]) -> Result<RecordId, MalformedRecord> {
        let base = self.pool.len() as RecordId;
        let rid = self
            .delta
            .insert(tokens, base, self.cfg.measure, self.cfg.theta_min)?;
        self.registry.counter_add(keys::SERVE_INSERTS, 1);
        self.registry
            .counter_add(keys::SERVE_INSERT_TOKENS, tokens.len() as u64);
        self.refresh_gauges();
        Ok(rid)
    }

    /// Merge the delta into the main index: loser-tree merge of the two
    /// token-ascending posting runs, pool concatenation, reseal. No-op on
    /// an empty delta. Record ids are stable across compaction.
    pub fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let _span = span("serve.stage", "compact")
            .field("delta_records", self.delta.len() as u64)
            .field("delta_postings", self.delta.posting_count() as u64)
            .field("main_postings", self.main.postings as u64);

        let mut main_run: Vec<(TokenId, Posting)> = Vec::with_capacity(self.main.postings);
        main_run.extend(self.main.iter_postings());
        let delta_run = self.delta.sorted_run();
        let merged = main_run.len() + delta_run.len();

        // Inserts may have minted ranks beyond the frozen vocabulary;
        // widen the directory to cover them.
        let universe = self
            .main
            .directory
            .len()
            .max(self.delta.max_token().map_or(0, |t| t as usize + 1));
        let parts_n = self.cfg.build_partitions.max(1);
        let mut new_parts: Vec<Vec<(TokenId, PostingBlock)>> =
            (0..parts_n).map(|_| Vec::new()).collect();
        GroupedRuns::new(vec![&main_run[..], &delta_run[..]]).for_each_group(|&t, values| {
            // Run 0 (main) drains before run 1 (delta), and delta ids all
            // exceed main ids — the block stays record-ascending.
            let mut block = PostingBlock::default();
            for p in values {
                block.push(*p);
            }
            new_parts[crate::build::token_partition(t, universe, parts_n)].push((t, block));
        });

        let new_pool = Arc::new(TokenPool::concat(&self.pool, self.delta.pool()));
        let parts: Vec<Arc<Vec<(TokenId, PostingBlock)>>> =
            new_parts.into_iter().map(Arc::new).collect();
        self.main = MainIndex::build(parts, universe, new_pool.lengths());
        self.pool = new_pool;
        self.delta.clear();

        self.registry.counter_add(keys::SERVE_COMPACTIONS, 1);
        self.registry
            .counter_add(keys::SERVE_COMPACT_POSTINGS, merged as u64);
        self.refresh_gauges();
    }

    fn refresh_gauges(&self) {
        self.registry
            .gauge_set(keys::SERVE_RECORDS, self.len() as f64);
        self.registry
            .gauge_set(keys::SERVE_DELTA_RECORDS, self.delta.len() as f64);
        self.registry
            .gauge_set(keys::SERVE_MAIN_POSTINGS, self.main.postings as f64);
    }
}

/// One token's posting scan: length filter, accumulate, position filter.
#[allow(clippy::too_many_arguments)]
fn scan_block(
    block: &PostingBlock,
    m: Measure,
    theta: f64,
    qlen: usize,
    i: usize,
    min_len: u32,
    max_len: u32,
    exclude: Option<RecordId>,
    acc: &mut FxHashMap<RecordId, u32>,
    stats: &mut ProbeStats,
) {
    for k in 0..block.len() {
        let rec = block.recs[k];
        if Some(rec) == exclude {
            continue;
        }
        let ylen = block.lens[k];
        if ylen < min_len || ylen > max_len {
            stats.length_pruned += 1;
            continue;
        }
        let entry = acc.entry(rec).or_insert_with(|| {
            stats.candidates += 1;
            0
        });
        if *entry == PRUNED {
            continue;
        }
        let alpha = m.min_overlap(theta, qlen, ylen as usize) as u32;
        let remaining = ((qlen - i - 1) as u32).min(ylen - block.poss[k] - 1);
        if *entry + 1 + remaining >= alpha {
            *entry += 1;
        } else {
            *entry = PRUNED;
            stats.position_pruned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_count_is_inclusive_and_handles_empty_windows() {
        let lens = [2u32, 3, 3, 5, 9];
        assert_eq!(window_count(&lens, 3, 5), 3);
        assert_eq!(window_count(&lens, 1, 100), 5);
        assert_eq!(window_count(&lens, 6, 8), 0);
        assert_eq!(window_count(&lens, 7, 4), 0);
        assert_eq!(window_count(&[], 0, 10), 0);
    }

    #[test]
    fn main_index_directory_resolves_across_partitions() {
        let mut b0 = PostingBlock::default();
        b0.push(Posting {
            rec: 0,
            pos: 0,
            len: 2,
        });
        let mut b1 = PostingBlock::default();
        b1.push(Posting {
            rec: 1,
            pos: 0,
            len: 3,
        });
        let parts = vec![
            Arc::new(vec![(0u32, b0)]),
            Arc::new(vec![(4u32, b1.clone())]),
        ];
        let main = MainIndex::build(parts, 6, [2usize, 3].into_iter());
        assert_eq!(main.postings, 2);
        assert_eq!(main.sorted_lens, vec![2, 3]);
        assert_eq!(main.postings_of(4), Some(&b1));
        assert!(main.postings_of(1).is_none(), "unindexed token");
        assert!(main.postings_of(99).is_none(), "out-of-directory token");
        let rows: Vec<(u32, RecordId)> = main.iter_postings().map(|(t, p)| (t, p.rec)).collect();
        assert_eq!(rows, vec![(0, 0), (4, 1)]);
    }
}
