//! # ssj-serve — online similarity serving
//!
//! The batch side of this repository answers *set similarity joins*: run a
//! MapReduce plan, get every similar pair, exit. This crate is the serving
//! plane for the same workload shape: a **long-lived
//! [`ServeIndex`]** holds a prefix/position index over the shared token
//! arena and answers point queries — θ-threshold probes and top-k
//! lookups — in microseconds, with *no* MapReduce machinery on the query
//! path.
//!
//! The two planes meet twice:
//!
//! * **Build** — constructing the index *is* a batch job, so it runs as a
//!   [`Plan`](ssj_mapreduce::Plan) stage ([`ServeIndexBuild`]); the sealed
//!   reduce partitions become the index's posting storage by `Arc`
//!   adoption ([`ServeIndex::from_plan`]), not by copy.
//! * **Algorithms** — probes reuse the exact filter kernels the joins are
//!   built from (length window, prefix filter, positional upper bound,
//!   early-exit merge verification), so serving answers are bit-identical
//!   to batch FS-Join results — a property the equivalence test suite
//!   enforces, including under inserts and compactions.
//!
//! Freshness comes from a delta side: [`ServeIndex::insert`] tokenizes
//! against the frozen global ordering into a private delta pool, visible
//! to the very next probe; [`ServeIndex::compact`] folds the delta into
//! the sealed main index with the engine's loser-tree merge.
//!
//! ```
//! use ssj_serve::{build_index, ServeConfig};
//! use ssj_text::{encode, CorpusProfile};
//!
//! let collection = encode(&CorpusProfile::WikiLike.config().with_records(300).generate());
//! let cfg = ServeConfig::default().with_theta_min(0.7);
//! let mut index = build_index(&collection, &cfg);
//!
//! // Threshold probe: all records ≥ 0.8-similar to the query.
//! let query = collection.tokens(7).to_vec();
//! let hits = index.probe(&query, 0.8);
//! assert!(hits.iter().any(|&(rec, sim)| rec == 7 && sim == 1.0));
//!
//! // Inserts are visible immediately; compaction preserves answers.
//! let rid = index.insert(&query).unwrap();
//! assert!(index.probe(&query, 0.8).iter().any(|&(r, _)| r == rid));
//! index.compact();
//! assert!(index.probe(&query, 0.8).iter().any(|&(r, _)| r == rid));
//! # let _ = hits;
//! ```

pub mod build;
pub mod config;
mod delta;
pub mod index;
pub mod posting;
pub mod stats;

pub use build::{build_index, ServeIndexBuild};
pub use config::ServeConfig;
pub use index::ServeIndex;
pub use posting::{Posting, PostingBlock};
pub use stats::ProbeStats;
