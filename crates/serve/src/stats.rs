//! Per-probe pruning statistics, mirroring the batch side's
//! `FilterStats` pattern: accumulate locally (no registry contention on
//! the query hot path), flush to a [`MetricsRegistry`] when the caller
//! chooses — per query for the convenience API, per worker thread for the
//! closed-loop harness.

use fsjoin::keys;
use ssj_observe::MetricsRegistry;

/// Counters for one probe (or an accumulation of many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Distinct records that entered the candidate accumulator.
    pub candidates: u64,
    /// Postings rejected by the length window before accumulation.
    pub length_pruned: u64,
    /// Records inside the length window that shared no probe-prefix token.
    pub prefix_pruned: u64,
    /// Candidates killed by the positional upper bound.
    pub position_pruned: u64,
    /// Position-filter survivors whose bitmaps were consulted.
    pub bitmap_checks: u64,
    /// Survivors the bitmap upper bound rejected before verification
    /// (lossless — the bound is ≥ the true overlap).
    pub bitmap_pruned: u64,
    /// Candidates that reached exact verification.
    pub verified: u64,
    /// Verified candidates at or above the threshold.
    pub hits: u64,
}

impl ProbeStats {
    /// Fold another accumulation into this one.
    pub fn add(&mut self, other: &ProbeStats) {
        self.candidates += other.candidates;
        self.length_pruned += other.length_pruned;
        self.prefix_pruned += other.prefix_pruned;
        self.position_pruned += other.position_pruned;
        self.bitmap_checks += other.bitmap_checks;
        self.bitmap_pruned += other.bitmap_pruned;
        self.verified += other.verified;
        self.hits += other.hits;
    }

    /// Canonical `serve.probe.*` key/value pairs (key order is the report
    /// order used by `bench_probe` and `results/serve.md`).
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            (keys::SERVE_PROBE_CANDIDATES, self.candidates),
            (keys::SERVE_PROBE_LENGTH_PRUNED, self.length_pruned),
            (keys::SERVE_PROBE_PREFIX_PRUNED, self.prefix_pruned),
            (keys::SERVE_PROBE_POSITION_PRUNED, self.position_pruned),
            (keys::SERVE_PROBE_BITMAP_CHECKS, self.bitmap_checks),
            (keys::SERVE_PROBE_BITMAP_PRUNED, self.bitmap_pruned),
            (keys::SERVE_PROBE_VERIFIED, self.verified),
            (keys::SERVE_PROBE_HITS, self.hits),
        ]
    }

    /// Flush into a registry as additive counters.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        for (key, value) in self.fields() {
            registry.counter_add(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_record_agree_with_fields() {
        let mut a = ProbeStats {
            candidates: 1,
            length_pruned: 2,
            prefix_pruned: 3,
            position_pruned: 4,
            bitmap_checks: 7,
            bitmap_pruned: 8,
            verified: 5,
            hits: 6,
        };
        let b = a;
        a.add(&b);
        let registry = MetricsRegistry::new();
        a.record_to(&registry);
        for (key, value) in a.fields() {
            assert_eq!(registry.counter_get(key), value);
            assert_eq!(value % 2, 0, "doubled by add");
        }
    }
}
