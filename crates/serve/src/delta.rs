//! The mutable side of the serving index.
//!
//! Inserts land here: tokens are appended to a private [`TokenPool`]
//! (validated CSR push, see `TokenPool::append`) and the record's
//! `theta_min` prefix is indexed into small per-token posting blocks kept
//! in a hash map. Probes scan the delta block for each probe-prefix token
//! right after the sealed main block, so fresh records are visible
//! immediately. Compaction drains the whole structure into the main index
//! via the loser-tree merge and clears it.
//!
//! Record ids continue the main arena's dense numbering: a delta record's
//! public id is `base + local`, where `base` is the main pool's length at
//! insert time and `local` its slot in the delta pool. Compaction
//! concatenates the pools, so public ids are stable across compactions.

use ssj_common::FxHashMap;
use ssj_similarity::Measure;
use ssj_text::{MalformedRecord, RecordId, TokenId, TokenPool};

use crate::posting::{Posting, PostingBlock};

/// Mutable delta index: private token pool + per-token prefix postings.
#[derive(Debug, Default)]
pub(crate) struct DeltaIndex {
    pool: TokenPool,
    postings: FxHashMap<TokenId, PostingBlock>,
    /// All delta record lengths, ascending (binary-insert on insert) —
    /// the delta half of the prefix-filter pruning-power accounting.
    sorted_lens: Vec<u32>,
    /// Total postings across all blocks.
    posting_count: usize,
}

impl DeltaIndex {
    pub(crate) fn new() -> Self {
        DeltaIndex::default()
    }

    /// Number of delta records.
    pub(crate) fn len(&self) -> usize {
        self.pool.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pool.len() == 0
    }

    /// Total postings held.
    pub(crate) fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// The delta token pool (compaction concatenates it onto the main
    /// arena).
    pub(crate) fn pool(&self) -> &TokenPool {
        &self.pool
    }

    /// Tokens of delta-local record `local`.
    pub(crate) fn tokens_of(&self, local: RecordId) -> &[TokenId] {
        self.pool.tokens_of(local)
    }

    /// Delta record lengths, ascending.
    pub(crate) fn sorted_lens(&self) -> &[u32] {
        &self.sorted_lens
    }

    /// Posting block for token `t`, if any delta record's indexed prefix
    /// contains it.
    pub(crate) fn postings_of(&self, t: TokenId) -> Option<&PostingBlock> {
        self.postings.get(&t)
    }

    /// Validate and index one record. `base` is the main arena's record
    /// count: the returned public id is `base + local`, and errors are
    /// remapped to the public id space too.
    pub(crate) fn insert(
        &mut self,
        tokens: &[TokenId],
        base: RecordId,
        measure: Measure,
        theta_min: f64,
    ) -> Result<RecordId, MalformedRecord> {
        let (local, _span) = self.pool.append(tokens).map_err(|e| MalformedRecord {
            id: base + e.id,
            position: e.position,
        })?;
        let rid = base + local;
        let len = tokens.len() as u32;
        let prefix = measure.probe_prefix_len(theta_min, tokens.len());
        for (pos, &t) in tokens[..prefix].iter().enumerate() {
            self.postings.entry(t).or_default().push(Posting {
                rec: rid,
                pos: pos as u32,
                len,
            });
        }
        self.posting_count += prefix;
        let at = self.sorted_lens.partition_point(|&l| l <= len);
        self.sorted_lens.insert(at, len);
        Ok(rid)
    }

    /// Largest token indexed, if any — compaction widens the directory to
    /// cover tokens beyond the frozen vocabulary.
    pub(crate) fn max_token(&self) -> Option<TokenId> {
        self.postings.keys().copied().max()
    }

    /// All postings as token-ascending `(token, posting)` rows — one
    /// sorted run for the compaction merge. Within a token, postings are
    /// record-ascending (insertion order is id order).
    pub(crate) fn sorted_run(&self) -> Vec<(TokenId, Posting)> {
        let mut keys: Vec<TokenId> = self.postings.keys().copied().collect();
        keys.sort_unstable();
        let mut run = Vec::with_capacity(self.posting_count);
        for t in keys {
            for p in self.postings[&t].iter() {
                run.push((t, p));
            }
        }
        run
    }

    /// Drop everything (post-compaction).
    pub(crate) fn clear(&mut self) {
        *self = DeltaIndex::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_indexes_theta_min_prefix_and_remaps_ids() {
        let mut d = DeltaIndex::new();
        // |x| = 4, θ_min = 0.5 Jaccard ⇒ probe prefix = 4 - ceil(0.5·4) + 1 = 3.
        let rid = d
            .insert(&[5, 7, 9, 11], 100, Measure::Jaccard, 0.5)
            .unwrap();
        assert_eq!(rid, 100);
        assert_eq!(d.len(), 1);
        assert_eq!(d.tokens_of(0), &[5, 7, 9, 11]);
        assert_eq!(d.sorted_lens(), &[4]);
        let prefix = Measure::Jaccard.probe_prefix_len(0.5, 4);
        assert_eq!(d.posting_count(), prefix);
        let p = d.postings_of(5).unwrap().get(0);
        assert_eq!((p.rec, p.pos, p.len), (100, 0, 4));
        assert!(d.postings_of(11).is_none(), "suffix tokens are not indexed");
    }

    #[test]
    fn insert_error_carries_public_id_and_leaves_state_clean() {
        let mut d = DeltaIndex::new();
        let err = d.insert(&[3, 3], 42, Measure::Jaccard, 0.8).unwrap_err();
        assert_eq!((err.id, err.position), (42, 1));
        assert!(d.is_empty());
        assert_eq!(d.posting_count(), 0);
        assert!(d.sorted_run().is_empty());
    }

    #[test]
    fn sorted_run_is_token_then_record_ascending() {
        let mut d = DeltaIndex::new();
        d.insert(&[2, 8], 10, Measure::Jaccard, 0.5).unwrap();
        d.insert(&[2, 4], 10 + 1, Measure::Jaccard, 0.5).unwrap();
        let run = d.sorted_run();
        let keys: Vec<(TokenId, RecordId)> = run.iter().map(|(t, p)| (*t, p.rec)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(d.max_token(), Some(keys.last().unwrap().0));
    }
}
