//! The batch/serve seam's zero-copy guarantee, asserted with a counting
//! allocator: adopting a build plan's sealed output into a [`ServeIndex`]
//! ([`ServeIndexBuild::adopt`] → `PlanOutcome::take_sealed`) must perform
//! a small **constant** number of container allocations — independent of
//! how many postings the plan produced — because the posting partitions
//! move by `Arc`, never by deep copy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ssj_mapreduce::PlanRunner;
use ssj_serve::{ServeConfig, ServeIndexBuild};
use ssj_text::{encode, CorpusProfile};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOC_CALLS.load(Ordering::Relaxed) - before)
}

/// Allocation budget for adopting a plan outcome: the partition vector,
/// the directory, the length vector, the registry and its handful of
/// gauge entries — and nothing proportional to postings.
const ADOPT_ALLOC_BUDGET: usize = 64;

#[test]
fn from_plan_adopts_sealed_partitions_without_posting_copies() {
    let collection = encode(
        &CorpusProfile::WikiLike
            .config()
            .with_records(800)
            .generate(),
    );
    let cfg = ServeConfig::default().with_theta_min(0.7).with_workers(2);
    let mut build = ServeIndexBuild::new(&collection, cfg);
    let plan = build.take_plan();
    let mut outcome = PlanRunner::pipelined().run(plan);

    let (index, allocs) = allocs_during(|| build.adopt(&mut outcome));

    assert!(
        index.main_postings() > 10_000,
        "corpus too small to make the bound meaningful: {} postings",
        index.main_postings()
    );
    assert!(
        allocs <= ADOPT_ALLOC_BUDGET,
        "adopting the plan outcome allocated {allocs} times (budget \
         {ADOPT_ALLOC_BUDGET}) — a posting-list deep copy has crept into \
         the batch/serve seam"
    );

    // The adopted index must actually work.
    let query = collection.tokens(0).to_vec();
    let hits = index.probe(&query, 0.8);
    assert!(hits.iter().any(|&(rec, sim)| rec == 0 && sim == 1.0));
}
