//! The serving plane's correctness gate: probe answers must be
//! **bit-identical** to batch FS-Join results — same pair sets, same
//! score bits — on random corpora across thresholds, and must stay so
//! under randomized insert/compaction interleavings. Top-k must match a
//! naive scored scan exactly (same admission, same ordering, same bits).

use proptest::prelude::*;
use ssj_serve::{build_index, ServeConfig, ServeIndex};
use ssj_similarity::intersect::intersect_count_merge;
use ssj_similarity::Measure;
use ssj_text::{encode, Collection, RawCorpus, Record, RecordId};

/// Thresholds the gate sweeps (all ≥ the index's `theta_min`).
const THETAS: [f64; 3] = [0.75, 0.85, 0.95];
const THETA_MIN: f64 = 0.7;

fn serve_cfg() -> ServeConfig {
    ServeConfig::default()
        .with_theta_min(THETA_MIN)
        .with_partitions(3)
        .with_map_tasks(2)
        .with_workers(2)
}

fn batch_cfg(theta: f64) -> fsjoin::FsJoinConfig {
    fsjoin::FsJoinConfig::default()
        .with_theta(theta)
        .with_tasks(2, 4)
        .with_workers(2)
}

/// Encode random docs into a collection (global ordering computed over
/// the whole corpus, exactly like the batch pipeline).
fn collection_from_docs(docs: Vec<Vec<u64>>) -> Collection {
    encode(&RawCorpus { docs, vocab: None })
}

/// The first `n` records of `full`, in `full`'s rank space — the frozen
/// ordering an index is built on before the remaining records arrive as
/// inserts.
fn prefix_collection(full: &Collection, n: usize) -> Collection {
    let records = (0..n)
        .map(|rid| Record::from_sorted(rid as RecordId, full.tokens(rid as RecordId).to_vec()))
        .collect();
    Collection::new(records, full.token_freqs.clone(), None)
}

/// Canonical digest shape: `(a, b, score bits)` ascending, `a < b`.
type PairBits = (RecordId, RecordId, u64);

fn batch_pairs(collection: &Collection, theta: f64) -> Vec<PairBits> {
    let result = fsjoin::run_self_join(collection, &batch_cfg(theta));
    let mut pairs: Vec<PairBits> = result
        .pairs
        .iter()
        .map(|p| (p.a, p.b, p.sim.to_bits()))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Probe every visible record against the index (self excluded) and
/// collect the canonical pair digest. Each pair is found from both
/// endpoints; scores must agree bit-for-bit, so dedup collapses them.
fn probe_all(index: &ServeIndex, theta: f64) -> Vec<PairBits> {
    let mut stats = ssj_serve::ProbeStats::default();
    let mut pairs: Vec<PairBits> = Vec::new();
    for rec in 0..index.len() as RecordId {
        let hits = index.probe_with(index.tokens_of(rec), theta, Some(rec), &mut stats);
        for (other, sim) in hits {
            let (a, b) = if rec < other {
                (rec, other)
            } else {
                (other, rec)
            };
            pairs.push((a, b, sim.to_bits()));
        }
    }
    pairs.sort_unstable();
    let before = pairs.len();
    pairs.dedup();
    assert_eq!(
        pairs.len() * 2,
        before,
        "every pair must be found from both endpoints"
    );
    pairs
}

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..60, 0..10), 1..40).prop_map(|mut docs| {
        // Random token sets almost never collide at θ ≥ 0.75, which would
        // make the equivalence property vacuous. Turn every odd doc into a
        // one-token mutation of its predecessor so the corpora carry real
        // near-duplicate structure at every swept threshold.
        for i in (1..docs.len()).step_by(2) {
            let mut dup = docs[i - 1].clone();
            if let Some(extra) = docs[i].first().copied() {
                dup.push(extra);
            }
            docs[i] = dup;
        }
        docs
    })
}

/// The proptest corpora are only useful if they actually produce similar
/// pairs; pin that on a deterministic corpus so the property tests can't
/// silently degenerate to comparing empty sets.
#[test]
fn known_corpus_has_pairs_and_matches() {
    let docs = vec![
        vec![0, 1, 2, 3, 4, 5],
        vec![0, 1, 2, 3, 4, 5, 6], // J = 6/7 ≈ 0.857
        vec![0, 1, 2, 3, 4, 5],    // exact duplicate of doc 0
        vec![10, 11, 12],
        vec![10, 11, 12, 13], // J = 3/4 = 0.75
    ];
    let collection = collection_from_docs(docs);
    let index = build_index(&collection, &serve_cfg());
    for theta in THETAS {
        let batch = batch_pairs(&collection, theta);
        assert!(!batch.is_empty(), "θ={theta} found no pairs");
        assert_eq!(probe_all(&index, theta), batch);
    }
    assert_eq!(
        batch_pairs(&collection, 0.95).len(),
        1,
        "only the exact duplicate at 0.95"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole gate 1: probe-all == batch FS-Join, for every θ.
    #[test]
    fn probe_all_matches_batch_join(docs in docs_strategy()) {
        let collection = collection_from_docs(docs);
        let index = build_index(&collection, &serve_cfg());
        for theta in THETAS {
            prop_assert_eq!(probe_all(&index, theta), batch_pairs(&collection, theta));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole gate 2: build on a prefix, insert the rest with random
    /// compaction points — answers still match the batch join over the
    /// full collection, at every θ, with ids aligned.
    #[test]
    fn insert_compaction_interleavings_match_batch_join(
        docs in docs_strategy(),
        split in 0.0f64..1.0,
        compact_mask in prop::collection::vec(0u32..4, 64),
    ) {
        let full = collection_from_docs(docs);
        let n = full.len();
        let base = 1 + (split * (n - 1) as f64) as usize; // 1..=n
        let index_base = prefix_collection(&full, base);
        let mut index = build_index(&index_base, &serve_cfg());
        for rid in base..n {
            // Insert ids must continue the arena's dense numbering.
            let got = index.insert(full.tokens(rid as RecordId)).unwrap();
            prop_assert_eq!(got as usize, rid);
            // Compact after ~1/4 of inserts, at positions drawn by proptest.
            if compact_mask[(rid - base) % compact_mask.len()] == 0 {
                index.compact();
            }
        }
        prop_assert_eq!(index.len(), n);
        for theta in THETAS {
            prop_assert_eq!(probe_all(&index, theta), batch_pairs(&full, theta));
        }
        // One final compaction must not change anything either.
        index.compact();
        prop_assert_eq!(index.delta_len(), 0);
        for theta in THETAS {
            prop_assert_eq!(probe_all(&index, theta), batch_pairs(&full, theta));
        }
    }
}

/// Naive top-k oracle: score the query against every record with the full
/// intersection, admit at `theta_min`, order by (score desc, id asc).
fn naive_top_k(
    collection_like: &ServeIndex,
    query: &[u32],
    measure: Measure,
    k: usize,
) -> Vec<(RecordId, u64)> {
    let mut scored: Vec<(RecordId, f64)> = Vec::new();
    for rec in 0..collection_like.len() as RecordId {
        let tokens = collection_like.tokens_of(rec);
        let overlap = intersect_count_merge(query, tokens);
        if measure.passes(overlap, query.len(), tokens.len(), THETA_MIN) {
            scored.push((rec, measure.score(overlap, query.len(), tokens.len())));
        }
    }
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored.into_iter().map(|(r, s)| (r, s.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole gate 3: top-k == naive scored scan, bit-for-bit, for
    /// arbitrary queries — including out-of-vocabulary ranks.
    #[test]
    fn top_k_matches_naive_scan(
        docs in docs_strategy(),
        raw_query in prop::collection::vec(0u32..80, 0..12),
        k in 1usize..8,
    ) {
        let collection = collection_from_docs(docs);
        let universe = collection.token_freqs.len() as u32;
        // Fold the raw draw into rank space, allowing ranks past the
        // universe (out-of-vocabulary: legal, matches nothing).
        let mut query: Vec<u32> = raw_query
            .into_iter()
            .map(|t| t % (universe + 5))
            .collect();
        query.sort_unstable();
        query.dedup();
        let index = build_index(&collection, &serve_cfg());
        let got: Vec<(RecordId, u64)> = index
            .top_k(&query, k)
            .into_iter()
            .map(|(r, s)| (r, s.to_bits()))
            .collect();
        prop_assert_eq!(got, naive_top_k(&index, &query, index.config().measure, k));
    }
}

/// Out-of-vocabulary inserts: ranks at or past the frozen universe are
/// legal, probeable, and survive compaction (the directory widens).
#[test]
fn oov_inserts_probe_and_compact() {
    let collection = collection_from_docs(vec![vec![0, 1, 2], vec![0, 1, 3], vec![4, 5]]);
    let universe = collection.token_freqs.len() as u32;
    let mut index = build_index(&collection, &serve_cfg());
    let novel = vec![universe + 2, universe + 7, universe + 9];
    let rid = index.insert(&novel).unwrap();
    let hits = index.probe(&novel, 0.95);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].0, rid);
    assert_eq!(hits[0].1, 1.0);
    index.compact();
    assert_eq!(index.delta_len(), 0);
    let hits = index.probe(&novel, 0.95);
    assert_eq!((hits.len(), hits[0].0, hits[0].1), (1, rid, 1.0));
}

/// Probing below `theta_min` must fail loudly — the index prefix is too
/// short to be sound there.
#[test]
#[should_panic(expected = "outside supported")]
fn probe_below_theta_min_panics() {
    let collection = collection_from_docs(vec![vec![0, 1], vec![1, 2]]);
    let index = build_index(&collection, &serve_cfg());
    let _ = index.probe(&[0, 1], 0.5);
}
