//! `ssj-faults`: deterministic chaos for the MapReduce engine.
//!
//! The paper's scalability results run on Hadoop 0.20.2 and silently lean on
//! its fault tolerance: failed task attempts are retried (up to
//! `mapred.map.max.attempts = 4`), stragglers are speculatively re-executed
//! with first-finisher-wins semantics, and map outputs are materialized so a
//! reducer failure re-fetches instead of re-mapping. This crate supplies the
//! *fault model* half of that machinery:
//!
//! * a [`FaultPlan`] — a seeded injector whose per-attempt decisions
//!   ([`FaultPlan::decide`]) and per-node loss events
//!   ([`FaultPlan::node_loss_at`]) are **pure functions of the seed and the
//!   decision scope** (job name, phase, task index, attempt ordinal). Two
//!   runs with the same seed inject byte-identical fault patterns no matter
//!   how threads interleave;
//! * [`RetryPolicy`] — bounded attempts with exponential backoff;
//! * [`SpeculationPolicy`] — when an idle worker may launch a backup copy of
//!   a slow task;
//! * a process-global plan slot ([`install_plan`]) mirroring
//!   `ssj_observe::install_collector`, so drivers enable cluster-wide chaos
//!   without threading a plan through every job builder.
//!
//! The execution half (attempt scheduling, panic capture, checkpointed map
//! output) lives in `ssj-mapreduce`; the simulated half (rescheduling on a
//! modelled cluster, node-loss re-runs) in its `sim_faults` module.

pub mod rng;

use rng::{hash_str, SplitMix64};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Which phase a task attempt belongs to (the injector scopes decisions by
/// phase so map and reduce fault patterns are independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A map task attempt.
    Map,
    /// A reduce task attempt.
    Reduce,
}

impl Phase {
    fn word(self) -> u64 {
        match self {
            Phase::Map => 1,
            Phase::Reduce => 2,
        }
    }

    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

/// A fault injected into one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt fails with a clean error (Hadoop: child JVM exits
    /// non-zero / task throws).
    Error,
    /// The attempt panics mid-flight (Hadoop: child JVM crash). The
    /// executor must catch this without poisoning shared state.
    Panic,
    /// The attempt completes correctly but runs `straggler_factor` slower
    /// (Hadoop: a straggler node; the case speculation exists for).
    Straggle,
}

impl Fault {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Fault::Error => "error",
            Fault::Panic => "panic",
            Fault::Straggle => "straggle",
        }
    }
}

/// Payload type used for injected panics, so panic hooks and the executor
/// can tell deliberate chaos apart from genuine bugs.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// Job the attempt belonged to.
    pub job: String,
    /// Phase of the attempt.
    pub phase: Phase,
    /// Task index within the phase.
    pub task: usize,
    /// Attempt ordinal.
    pub attempt: u32,
}

/// A seeded, deterministic fault plan.
///
/// All rates are per *attempt* probabilities in `[0, 1]`; one uniform draw
/// per attempt partitions the unit interval as
/// `[error | panic | straggle | clean]`, so the rates are mutually
/// exclusive and their sum must stay ≤ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability an attempt fails with [`Fault::Error`].
    pub error_rate: f64,
    /// Probability an attempt fails with [`Fault::Panic`].
    pub panic_rate: f64,
    /// Probability an attempt straggles ([`Fault::Straggle`]).
    pub straggler_rate: f64,
    /// Simulated duration multiplier for straggling attempts (≥ 1).
    pub straggler_factor: f64,
    /// Real-executor sleep injected into straggling attempts (kept small:
    /// the host pays it in wall-clock).
    pub straggler_delay: Duration,
    /// Probability a given `(job, node)` suffers node loss during the job
    /// (simulator only: the real executor has no nodes to lose).
    pub node_loss_rate: f64,
    /// Attempt ordinals `>= max_injected_attempts` are never injected,
    /// guaranteeing forward progress as long as the retry budget exceeds
    /// this bound.
    pub max_injected_attempts: u32,
    /// Fraction of an attempt's clean duration that elapses before an
    /// injected failure manifests (simulator: work lost to the failure).
    pub failure_point: f64,
    /// Deterministic targeted injections, consulted *before* the
    /// probabilistic rates (and exempt from `max_injected_attempts` — the
    /// target's own attempt bound governs). Lets tests pin a fault on one
    /// `(job, phase)` without perturbing any other decision.
    pub targets: Vec<FaultTarget>,
}

/// One deterministic injection rule: every task of `(job, phase)` fails
/// with `fault` on attempt ordinals `< attempts`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTarget {
    /// Job (or plan-stage) name the rule applies to.
    pub job: String,
    /// Phase the rule applies to.
    pub phase: Phase,
    /// The fault to inject.
    pub fault: Fault,
    /// Attempt ordinals `< attempts` are injected (`u32::MAX` = always,
    /// which exhausts any finite retry budget).
    pub attempts: u32,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 4.0,
            straggler_delay: Duration::from_millis(15),
            node_loss_rate: 0.0,
            max_injected_attempts: 2,
            failure_point: 0.5,
            targets: Vec::new(),
        }
    }

    /// The standard chaos mix at a headline failure rate: 60% of failures
    /// are clean errors, 40% panics, plus an equal rate of stragglers.
    /// `chaos(seed, 0.05)` ≈ "5% of attempts fail, 5% straggle".
    pub fn chaos(seed: u64, failure_rate: f64) -> Self {
        FaultPlan {
            error_rate: failure_rate * 0.6,
            panic_rate: failure_rate * 0.4,
            straggler_rate: failure_rate,
            ..FaultPlan::new(seed)
        }
    }

    /// Set error/panic rates (replacing the current split).
    pub fn with_failures(mut self, error_rate: f64, panic_rate: f64) -> Self {
        self.error_rate = error_rate;
        self.panic_rate = panic_rate;
        self.check()
    }

    /// Set straggler rate and simulated slowdown factor.
    pub fn with_stragglers(mut self, rate: f64, factor: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_factor = factor.max(1.0);
        self.check()
    }

    /// Set the per-`(job, node)` loss probability (simulator only).
    pub fn with_node_loss(mut self, rate: f64) -> Self {
        self.node_loss_rate = rate;
        self.check()
    }

    /// Add a deterministic targeted injection: every task of
    /// `(job, phase)` fails with `fault` on attempt ordinals `< attempts`.
    pub fn with_target(
        mut self,
        job: impl Into<String>,
        phase: Phase,
        fault: Fault,
        attempts: u32,
    ) -> Self {
        self.targets.push(FaultTarget {
            job: job.into(),
            phase,
            fault,
            attempts,
        });
        self
    }

    fn check(self) -> Self {
        let total = self.error_rate + self.panic_rate + self.straggler_rate;
        assert!(
            (0.0..=1.0).contains(&total)
                && self.error_rate >= 0.0
                && self.panic_rate >= 0.0
                && self.straggler_rate >= 0.0,
            "fault rates must be non-negative and sum to <= 1 (got {self:?})"
        );
        assert!(
            (0.0..=1.0).contains(&self.node_loss_rate),
            "node_loss_rate must be in [0, 1]"
        );
        self
    }

    /// The injection decision for one task attempt. Pure in
    /// `(seed, job, phase, task, attempt)`: call it twice, get the same
    /// answer; reorder the calls, nothing changes.
    pub fn decide(&self, job: &str, phase: Phase, task: usize, attempt: u32) -> Option<Fault> {
        for t in &self.targets {
            if t.job == job && t.phase == phase && attempt < t.attempts {
                return Some(t.fault);
            }
        }
        if attempt >= self.max_injected_attempts {
            return None;
        }
        let u = SplitMix64::scoped(
            self.seed,
            &[hash_str(job), phase.word(), task as u64, attempt as u64],
        )
        .next_f64();
        if u < self.error_rate {
            Some(Fault::Error)
        } else if u < self.error_rate + self.panic_rate {
            Some(Fault::Panic)
        } else if u < self.error_rate + self.panic_rate + self.straggler_rate {
            Some(Fault::Straggle)
        } else {
            None
        }
    }

    /// When (if ever) `node` is lost during `job`, as seconds uniformly
    /// drawn over `[0, horizon_secs)`. Pure in `(seed, job, node)`.
    pub fn node_loss_at(&self, job: &str, node: usize, horizon_secs: f64) -> Option<f64> {
        if self.node_loss_rate <= 0.0 || horizon_secs <= 0.0 {
            return None;
        }
        let mut g = SplitMix64::scoped(
            self.seed,
            &[
                0x6e6f_6465_u64, /* "node" */
                hash_str(job),
                node as u64,
            ],
        );
        if g.next_f64() < self.node_loss_rate {
            Some(g.next_f64() * horizon_secs)
        } else {
            None
        }
    }

    /// Whether any fault kind has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.error_rate > 0.0
            || self.panic_rate > 0.0
            || self.straggler_rate > 0.0
            || self.node_loss_rate > 0.0
            || !self.targets.is_empty()
    }
}

/// Bounded retry with exponential backoff — the engine analogue of
/// Hadoop's `mapred.{map,reduce}.max.attempts` (default 4) plus its retry
/// delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (including the first). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `base × 2ⁿ`, capped at `cap`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    /// Hadoop's default attempt budget with a millisecond-scale backoff
    /// (the in-process engine has no JVM restart cost to hide).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all (a failure is immediately fatal).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to wait after `failed_attempts` failures.
    pub fn backoff(&self, failed_attempts: u32) -> Duration {
        let shift = failed_attempts.min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// When an idle worker may speculatively re-execute a running attempt
/// (first finisher wins, the loser is discarded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationPolicy {
    /// Master switch. Off by default: replayed attempts re-run user task
    /// code, whose side effects (e.g. metrics emitted at cleanup) are then
    /// observed more than once — exactly Hadoop's semantics, but worth
    /// opting into knowingly.
    pub enabled: bool,
    /// A task qualifies once its running attempt has been executing for at
    /// least `threshold × median completed-task duration`.
    pub slowdown_threshold: f64,
    /// Minimum running time before a task may qualify regardless of the
    /// median (guards the cold start where nothing has completed yet).
    pub min_runtime: Duration,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            enabled: false,
            slowdown_threshold: 1.5,
            min_runtime: Duration::from_millis(5),
        }
    }
}

impl SpeculationPolicy {
    /// Speculation on with default thresholds.
    pub fn enabled() -> Self {
        SpeculationPolicy {
            enabled: true,
            ..SpeculationPolicy::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global plan (the "cluster configuration" slot).
// ---------------------------------------------------------------------------

static PLAN_ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install `plan` as the process-global fault plan; every job run without
/// an explicit plan picks it up. Returns the shared handle.
pub fn install_plan(plan: FaultPlan) -> Arc<FaultPlan> {
    let p = Arc::new(plan);
    *plan_slot().lock().unwrap() = Some(Arc::clone(&p));
    PLAN_ACTIVE.store(true, Ordering::Release);
    p
}

/// Remove and return the global plan (chaos off).
pub fn uninstall_plan() -> Option<Arc<FaultPlan>> {
    PLAN_ACTIVE.store(false, Ordering::Release);
    plan_slot().lock().unwrap().take()
}

/// The installed global plan, if any. One relaxed atomic load when chaos
/// is off, so the engine can query this per phase at no real cost.
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    if !PLAN_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    plan_slot().lock().unwrap().clone()
}

/// Wrap the current panic hook so deliberate [`InjectedPanic`]s do not spam
/// stderr with backtraces during chaos runs; genuine panics still print.
/// Call once per process (idempotent enough: wrapping twice just nests).
pub fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_order_free() {
        let plan = FaultPlan::chaos(42, 0.3);
        let mut forward = Vec::new();
        for t in 0..100 {
            for a in 0..2 {
                forward.push(plan.decide("job", Phase::Map, t, a));
            }
        }
        let mut backward = Vec::new();
        for t in (0..100).rev() {
            for a in (0..2).rev() {
                backward.push(plan.decide("job", Phase::Map, t, a));
            }
        }
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn rates_are_respected_empirically() {
        let plan = FaultPlan::new(7)
            .with_failures(0.2, 0.1)
            .with_stragglers(0.1, 3.0);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for t in 0..n {
            match plan.decide("j", Phase::Reduce, t, 0) {
                Some(Fault::Error) => counts[0] += 1,
                Some(Fault::Panic) => counts[1] += 1,
                Some(Fault::Straggle) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.2).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[1]) - 0.1).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[2]) - 0.1).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn different_scopes_draw_independently() {
        let plan = FaultPlan::chaos(1, 0.5);
        let map: Vec<_> = (0..64)
            .map(|t| plan.decide("j", Phase::Map, t, 0))
            .collect();
        let red: Vec<_> = (0..64)
            .map(|t| plan.decide("j", Phase::Reduce, t, 0))
            .collect();
        let other: Vec<_> = (0..64)
            .map(|t| plan.decide("k", Phase::Map, t, 0))
            .collect();
        assert_ne!(map, red);
        assert_ne!(map, other);
    }

    #[test]
    fn injection_stops_at_attempt_bound() {
        let plan = FaultPlan::new(3).with_failures(1.0, 0.0);
        assert_eq!(plan.decide("j", Phase::Map, 0, 0), Some(Fault::Error));
        assert_eq!(plan.decide("j", Phase::Map, 0, 1), Some(Fault::Error));
        assert_eq!(
            plan.decide("j", Phase::Map, 0, 2),
            None,
            "progress guarantee"
        );
    }

    #[test]
    fn node_loss_is_deterministic_and_in_horizon() {
        let plan = FaultPlan::new(5).with_node_loss(0.5);
        let mut hits = 0;
        for node in 0..200 {
            if let Some(t) = plan.node_loss_at("j", node, 30.0) {
                assert!((0.0..30.0).contains(&t));
                assert_eq!(plan.node_loss_at("j", node, 30.0), Some(t));
                hits += 1;
            }
        }
        assert!((60..140).contains(&hits), "≈50% of 200 nodes, got {hits}");
        assert_eq!(plan.node_loss_at("j", 0, 0.0), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(0), Duration::from_millis(1));
        assert_eq!(r.backoff(1), Duration::from_millis(2));
        assert_eq!(r.backoff(3), Duration::from_millis(8));
        assert_eq!(r.backoff(30), Duration::from_millis(50), "capped");
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(0).with_failures(0.9, 0.9);
    }

    #[test]
    fn global_plan_install_round_trip() {
        // Runs in one test to avoid cross-test interference on the global.
        assert!(active_plan().is_none() || uninstall_plan().is_some());
        let p = install_plan(FaultPlan::chaos(11, 0.1));
        let got = active_plan().expect("installed");
        assert_eq!(*got, *p);
        let back = uninstall_plan().expect("uninstall");
        assert_eq!(*back, *p);
        assert!(active_plan().is_none());
    }
}
