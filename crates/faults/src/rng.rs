//! Deterministic scoped randomness for fault decisions.
//!
//! Fault injection must be a *pure function of the seed and the decision
//! scope* — never of thread scheduling or call order — so that a chaos run
//! is reproducible and a speculative re-execution cannot shift the fault
//! pattern of unrelated tasks. Every decision therefore derives its own
//! generator from `(seed, scope words...)` instead of drawing from one
//! shared stream.

/// SplitMix64 — the standard 64-bit mixing PRNG (Steele et al., OOPSLA'14).
/// Tiny, full-period, and excellent avalanche behaviour; exactly what a
/// hash-derived decision stream needs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded directly.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Generator scoped to `(seed, words...)`: the words are folded into
    /// the state with the SplitMix finalizer, so nearby scopes (task 3
    /// attempt 0 vs task 3 attempt 1) produce unrelated streams.
    pub fn scoped(seed: u64, words: &[u64]) -> Self {
        let mut g = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        for &w in words {
            g.state ^= mix(w);
            g.next_u64();
        }
        g
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 output finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string — used to fold job names into decision scopes
/// (dependency-free; stability across runs is all that matters here).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_streams_are_reproducible() {
        let a = SplitMix64::scoped(42, &[1, 2, 3]).next_f64();
        let b = SplitMix64::scoped(42, &[1, 2, 3]).next_f64();
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_scopes_decorrelate() {
        let mut seen = Vec::new();
        for task in 0..50u64 {
            for attempt in 0..3u64 {
                seen.push(SplitMix64::scoped(7, &[task, attempt]).next_u64());
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 150, "scoped draws must not collide");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(1);
        for _ in 0..1000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_draws_look_uniform() {
        let mut g = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hash_str_is_stable_and_discriminating() {
        assert_eq!(hash_str("fsjoin-filter"), hash_str("fsjoin-filter"));
        assert_ne!(hash_str("fsjoin-filter"), hash_str("fsjoin-verify"));
        assert_ne!(hash_str(""), hash_str("a"));
    }
}
