//! Summary statistics for load-balance and timing reports.
//!
//! The paper's load-balancing claims (Table I, Figure 11) are qualitative;
//! we quantify them with the statistics here: max/mean skew ratio, the Gini
//! coefficient of per-reducer input sizes, and percentile summaries of task
//! durations.

/// A one-pass summary of a sample of non-negative measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sum of observations.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Population standard deviation (0 when empty).
    pub stddev: f64,
    /// Median (P50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Ratio `max / mean`; 1.0 means perfectly balanced, larger means skew.
    /// Defined as 1.0 when the mean is zero.
    pub skew: f64,
    /// Gini coefficient in `[0, 1)`; 0 means perfectly equal shares.
    pub gini: f64,
}

impl Summary {
    /// Summarize a sample. Values may arrive in any order.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
                p50: 0.0,
                p95: 0.0,
                skew: 1.0,
                gini: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN stats input"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let min = sorted[0];
        let max = sorted[count - 1];
        let skew = if mean > 0.0 { max / mean } else { 1.0 };
        Summary {
            count,
            sum,
            mean,
            min,
            max,
            stddev: var.sqrt(),
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            skew,
            gini: gini_sorted(&sorted),
        }
    }

    /// Convenience for integer samples (per-reducer record counts etc.).
    pub fn of_counts<I: IntoIterator<Item = usize>>(values: I) -> Self {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Self::of(&v)
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
/// `q` is in `[0, 1]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Gini coefficient of an already-sorted (ascending) non-negative sample.
///
/// Uses the standard formula `G = (2·Σ i·x_i / (n·Σ x_i)) − (n+1)/n` with
/// 1-based ranks. Returns 0 for empty, all-zero, or single-element samples.
pub fn gini_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n <= 1 {
        return 0.0;
    }
    let sum: f64 = sorted.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted / (n as f64 * sum)) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.skew, 1.0);
    }

    #[test]
    fn uniform_sample_has_no_skew() {
        let s = Summary::of(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.skew, 1.0);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn skewed_sample() {
        let s = Summary::of(&[0.0, 0.0, 0.0, 10.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.skew, 4.0);
        // One holder of everything among 4: Gini = 3/4.
        assert!((s.gini - 0.75).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert!((percentile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn of_counts_matches_of() {
        let a = Summary::of_counts([1usize, 2, 3]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn gini_handles_degenerate() {
        assert_eq!(gini_sorted(&[]), 0.0);
        assert_eq!(gini_sorted(&[3.0]), 0.0);
        assert_eq!(gini_sorted(&[0.0, 0.0]), 0.0);
    }
}
