//! A fast, deterministic, non-cryptographic hasher.
//!
//! The workspace hashes small integer keys (token ids, record-id pairs,
//! partition ids) billions of times in the join kernels and the shuffle.
//! `std`'s default SipHash is DoS-resistant but several times slower for
//! these workloads, and its per-process random seed would make run-to-run
//! byte counts non-deterministic. This module implements the well-known
//! FxHash construction (multiply by a large odd constant, rotate) used by
//! rustc itself. We implement it locally rather than adding a dependency
//! (see DESIGN.md §2).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation
/// (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher.
///
/// Not cryptographic and not DoS-resistant; only use for in-process data
/// structures keyed by trusted data (token ids, record ids).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // unwrap: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic across processes.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single value with [`FxHasher`]; convenience for partitioners.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = fx_hash_one(&(42u32, 7u32));
        let b = fx_hash_one(&(42u32, 7u32));
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_differ() {
        // Not a collision-resistance proof, just a smoke test that the
        // hasher actually mixes input bits.
        let a = fx_hash_one(&1u64);
        let b = fx_hash_one(&2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn byte_stream_tail_is_length_sensitive() {
        let mut h1 = FxHasher::default();
        h1.write(&[0, 0, 0]);
        let mut h2 = FxHasher::default();
        h2.write(&[0, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn strings_hash_consistently() {
        assert_eq!(fx_hash_one(&"token"), fx_hash_one(&"token"));
        assert_ne!(fx_hash_one(&"token"), fx_hash_one(&"tokem"));
    }
}
