//! Logical byte accounting for shuffle and output volume.
//!
//! The MapReduce engine keeps data in memory, so "bytes shuffled" cannot be
//! observed from real serialization. Instead every key/value type implements
//! [`ByteSize`], which returns the number of bytes the value would occupy in
//! a compact length-prefixed wire encoding (fixed-width integers, varint-free
//! for simplicity). The absolute numbers matter less than their being
//! *consistent across algorithms*, which is what the paper's
//! shuffle-cost comparisons rely on.

/// Number of bytes a value would occupy in a compact wire encoding.
pub trait ByteSize {
    /// Encoded size in bytes, including any length prefixes for
    /// variable-length parts.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            #[inline]
            fn byte_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_fixed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl ByteSize for () {
    #[inline]
    fn byte_size(&self) -> usize {
        0
    }
}

impl ByteSize for String {
    #[inline]
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl ByteSize for &str {
    #[inline]
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for [T] {
    #[inline]
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<T: ByteSize + ?Sized> ByteSize for &T {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize + ?Sized> ByteSize for Box<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: ByteSize),+> ByteSize for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn byte_size(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.byte_size())+
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(1u8.byte_size(), 1);
        assert_eq!(1u32.byte_size(), 4);
        assert_eq!(1u64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn strings_include_length_prefix() {
        assert_eq!(String::from("abc").byte_size(), 7);
        assert_eq!("".byte_size(), 4);
    }

    #[test]
    fn vectors_are_recursive() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.byte_size(), 4 + 12);
        let vv: Vec<Vec<u16>> = vec![vec![1], vec![]];
        assert_eq!(vv.byte_size(), 4 + (4 + 2) + 4);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u32, 2u64).byte_size(), 12);
        assert_eq!((1u8, (2u8, 3u8)).byte_size(), 3);
    }

    #[test]
    fn option_carries_tag_byte() {
        assert_eq!(Option::<u32>::None.byte_size(), 1);
        assert_eq!(Some(7u32).byte_size(), 5);
    }
}
