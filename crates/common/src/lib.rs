//! Shared utilities for the FS-Join reproduction workspace.
//!
//! This crate deliberately has no external dependencies. It provides:
//!
//! * [`hash`] — a fast, deterministic, non-cryptographic hasher (an
//!   FxHash-style multiply-rotate design) plus `HashMap`/`HashSet` aliases
//!   used on hot paths throughout the workspace;
//! * [`bytesize`] — the [`ByteSize`](bytesize::ByteSize) trait used by the
//!   MapReduce engine to account for shuffle and output volume without
//!   serializing anything;
//! * [`stats`] — summary statistics (mean, percentiles, Gini coefficient,
//!   skew ratios) used for load-balance reporting;
//! * [`table`] — minimal markdown / TSV table rendering for experiment
//!   reports (we do not depend on serde_json).

pub mod bytesize;
pub mod hash;
pub mod stats;
pub mod table;

pub use bytesize::ByteSize;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
