//! Minimal table rendering for experiment reports.
//!
//! Experiment binaries print paper-style tables as GitHub-flavoured markdown
//! (for EXPERIMENTS.md) and TSV (for downstream plotting). We keep this
//! dependency-free rather than pulling in a serialization stack.

use std::fmt::Write as _;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows panic (caller bug).
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        render_md_row(&mut out, &self.header, &widths);
        let _ = write!(out, "|");
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_md_row(&mut out, row, &widths);
        }
        out
    }

    /// Render as tab-separated values (header first).
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

fn render_md_row(out: &mut String, cells: &[String], widths: &[usize]) {
    let _ = write!(out, "|");
    for (cell, w) in cells.iter().zip(widths) {
        let _ = write!(out, " {cell:w$} |", w = w);
    }
    out.push('\n');
}

/// Format a duration in seconds with adaptive precision (`1.23s`, `45ms`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

/// Format a byte count with binary-unit suffixes (`1.5 MiB`).
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Format a large count with thousands separators (`1,234,567`).
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new(["a", "bb"]);
        t.push_row(["1", "2"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a "));
        assert!(lines[1].starts_with("|-"));
        assert!(lines[2].contains("| 1 "));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["x"]);
        assert_eq!(t.to_tsv(), "a\tb\tc\nx\t\t\n");
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn long_rows_panic() {
        let mut t = Table::new(["a"]);
        t.push_row(["1", "2", "3"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0451), "45.1ms");
        assert_eq!(fmt_secs(0.000_5), "500us");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
        assert_eq!(fmt_count(1_000), "1,000");
    }

    #[test]
    fn tsv_round_trips_cells() {
        let mut t = Table::new(["x", "y"]);
        t.push_row(["hello", "world"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.to_tsv(), "x\ty\nhello\tworld\n1\t2\n");
    }
}
