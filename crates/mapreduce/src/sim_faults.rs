//! Fault-aware cluster simulation.
//!
//! [`ClusterModel`] answers "how long would this measured job take on N
//! nodes?" under the *fault-free* assumption. This module answers the same
//! question under a seeded [`FaultPlan`]: task attempts fail and are
//! rescheduled (consuming retry budget), stragglers run `straggler_factor`×
//! slower, whole nodes can be lost mid-job, and — optionally — idle slots
//! launch speculative backup copies of slow attempts with
//! first-finisher-wins semantics. The simulation is a deterministic
//! discrete-event loop: with the same metrics, plan, and policy it produces
//! bit-identical outcomes, which is what makes makespan-vs-failure-rate
//! curves reproducible.
//!
//! Fidelity notes (deliberate simplifications, mirrored in DESIGN.md):
//!
//! * Retry backoff is ignored — milliseconds of backoff are invisible at
//!   cluster timescales.
//! * A lost node stays lost for the remainder of the *job*; chains give
//!   each job a fresh cluster (the per-job fault process matches how
//!   [`FaultPlan::node_loss_at`] scopes its draw).
//! * Losing a node during the reduce phase forces re-execution of the map
//!   tasks that ran on it *unless* `checkpoint_map_outputs` is set —
//!   modelling Hadoop's materialized map outputs (and this engine's
//!   [`SpillStore`](crate::SpillStore)). Re-run map work competes for slots
//!   with the remaining reduces.

use crate::cluster::ClusterModel;
use crate::metrics::{ChainMetrics, JobMetrics, TaskStat};
use ssj_faults::{Fault, FaultPlan, Phase, RetryPolicy};
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Scheduler behaviour under faults.
#[derive(Debug, Clone, Copy)]
pub struct SimFaultPolicy {
    /// Per-task attempt budget (backoff fields are ignored by the sim).
    pub retry: RetryPolicy,
    /// Launch speculative backup copies of slow attempts on idle slots.
    pub speculation: bool,
    /// A backup launches only when the running attempt's projected finish
    /// is later than `now + spec_threshold × clean_duration` (1.0 = launch
    /// whenever a fresh copy would win; Hadoop's heuristic is close to
    /// this).
    pub spec_threshold: f64,
    /// Map outputs survive node loss (Hadoop re-fetches materialized
    /// spills). When false, reduce-phase node loss re-runs the lost node's
    /// map tasks.
    pub checkpoint_map_outputs: bool,
}

impl Default for SimFaultPolicy {
    fn default() -> Self {
        SimFaultPolicy {
            retry: RetryPolicy::default(),
            speculation: false,
            spec_threshold: 1.0,
            checkpoint_map_outputs: true,
        }
    }
}

impl SimFaultPolicy {
    /// Default policy with speculation turned on.
    pub fn speculative() -> Self {
        SimFaultPolicy {
            speculation: true,
            ..SimFaultPolicy::default()
        }
    }
}

/// What the fault-aware simulation observed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimFaultOutcome {
    /// Simulated makespan under faults.
    pub makespan_secs: f64,
    /// Fault-free makespan of the same job(s) on the same cluster.
    pub clean_makespan_secs: f64,
    /// Task attempts started (first attempts + retries + backups + reruns).
    pub attempts: u64,
    /// Failed attempts rescheduled within the retry budget.
    pub retries: u64,
    /// Injected transient errors.
    pub injected_errors: u64,
    /// Injected panics.
    pub injected_panics: u64,
    /// Injected straggler slowdowns.
    pub injected_stragglers: u64,
    /// Speculative backup attempts launched.
    pub speculative_launched: u64,
    /// Backups that finished before the original attempt.
    pub speculative_wins: u64,
    /// Nodes lost mid-job.
    pub node_losses: u64,
    /// Map tasks re-executed because their node was lost after the map
    /// phase and outputs were not checkpointed.
    pub map_reruns: u64,
}

impl SimFaultOutcome {
    /// Makespan inflation over the fault-free run (1.0 = no slowdown).
    pub fn slowdown(&self) -> f64 {
        if self.clean_makespan_secs == 0.0 {
            return 1.0;
        }
        self.makespan_secs / self.clean_makespan_secs
    }

    fn absorb(&mut self, other: &SimFaultOutcome) {
        self.makespan_secs += other.makespan_secs;
        self.clean_makespan_secs += other.clean_makespan_secs;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.injected_errors += other.injected_errors;
        self.injected_panics += other.injected_panics;
        self.injected_stragglers += other.injected_stragglers;
        self.speculative_launched += other.speculative_launched;
        self.speculative_wins += other.speculative_wins;
        self.node_losses += other.node_losses;
        self.map_reruns += other.map_reruns;
    }
}

/// Why a simulated job could not finish.
#[derive(Debug, Clone, PartialEq)]
pub enum SimFaultError {
    /// Every node died with work still outstanding.
    ClusterLost {
        /// Job that was running.
        job: String,
        /// Simulated time of the final node loss.
        at_secs: f64,
    },
    /// A task exhausted its retry budget.
    TaskFailed {
        /// Job that was running.
        job: String,
        /// Phase of the failing task.
        phase: Phase,
        /// Task index within the phase.
        task: usize,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl std::fmt::Display for SimFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFaultError::ClusterLost { job, at_secs } => {
                write!(f, "sim: job {job:?} lost every node at t={at_secs:.3}s")
            }
            SimFaultError::TaskFailed {
                job,
                phase,
                task,
                attempts,
            } => write!(
                f,
                "sim: job {job:?} {} task {task} failed after {attempts} attempts",
                phase.name()
            ),
        }
    }
}

impl std::error::Error for SimFaultError {}

// --------------------------------------------------------------------------
// Discrete-event phase engine.
// --------------------------------------------------------------------------

/// Total-order f64 key for the event heap (durations are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tsecs(f64);
impl Eq for Tsecs {}
impl PartialOrd for Tsecs {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tsecs {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("non-NaN sim time")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Attempt `aid` reached its scheduled finish time.
    Done { aid: usize },
    /// Node `node` dies.
    Death { node: usize },
}

/// Heap entry; min-ordered by (time, seq) via `Reverse` at the call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    t: Tsecs,
    seq: u64,
    kind: EvKind,
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    // Reversed: the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// One unit of schedulable work inside a phase.
#[derive(Debug, Clone, Copy)]
enum Work {
    /// Phase task by index (subject to fault injection).
    Task { index: usize, attempt: u32 },
    /// Re-execution of a lost map output (runs clean).
    Rerun { secs: f64 },
}

#[derive(Debug, Clone, Copy)]
struct Attempt {
    work: Work,
    node: usize,
    slot: usize,
    finish: f64,
    speculative: bool,
    will_fail: bool,
    live: bool,
}

#[derive(Debug, Clone, Default)]
struct TaskCtl {
    done: bool,
    failed: u32,
    launched: u32,
    running: Vec<usize>, // live attempt ids
    has_spec: bool,
}

struct PhaseSim<'a> {
    job: &'a str,
    phase: Phase,
    cluster: &'a ClusterModel,
    plan: &'a FaultPlan,
    policy: &'a SimFaultPolicy,
    /// Clean per-task durations (already node-speed scaled).
    clean: &'a [f64],
    /// Map durations + final map placements, for reduce-phase rerun logic.
    rerun_source: Option<(&'a [f64], &'a [usize])>,
    /// Fault-free total makespan of the job (node-loss draw horizon).
    clean_total: f64,

    now: f64,
    seq: u64,
    heap: BinaryHeap<Ev>,
    idle: BinaryHeap<std::cmp::Reverse<usize>>, // free global slot ids
    pending: VecDeque<Work>,
    tasks: Vec<TaskCtl>,
    attempts: Vec<Attempt>,
    alive: &'a mut [bool],
    death_applied: &'a mut [bool],
    /// Final node of each finished task (map placements feed rerun logic).
    placements: Vec<usize>,
    done_count: usize,
    reruns_outstanding: usize,
    out: &'a mut SimFaultOutcome,
}

impl<'a> PhaseSim<'a> {
    fn push_ev(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ev {
            t: Tsecs(t),
            seq,
            kind,
        });
    }

    fn finished(&self) -> bool {
        self.done_count == self.clean.len() && self.reruns_outstanding == 0
    }

    fn launch(&mut self, slot: usize, work: Work, speculative: bool) {
        let node = slot / self.cluster.slots_per_node;
        let (dur, will_fail) = match work {
            Work::Rerun { secs } => (secs, false),
            Work::Task { index, attempt } => {
                if speculative {
                    // Backups run clean by design (see executor docs).
                    (self.clean[index], false)
                } else {
                    match self.plan.decide(self.job, self.phase, index, attempt) {
                        Some(Fault::Error) => {
                            self.out.injected_errors += 1;
                            (self.clean[index] * self.plan.failure_point, true)
                        }
                        Some(Fault::Panic) => {
                            self.out.injected_panics += 1;
                            (self.clean[index] * self.plan.failure_point, true)
                        }
                        Some(Fault::Straggle) => {
                            self.out.injected_stragglers += 1;
                            (self.clean[index] * self.plan.straggler_factor, false)
                        }
                        None => (self.clean[index], false),
                    }
                }
            }
        };
        let finish = self.now + dur;
        let aid = self.attempts.len();
        self.attempts.push(Attempt {
            work,
            node,
            slot,
            finish,
            speculative,
            will_fail,
            live: true,
        });
        if let Work::Task { index, .. } = work {
            let ctl = &mut self.tasks[index];
            ctl.launched += 1;
            ctl.running.push(aid);
            if speculative {
                ctl.has_spec = true;
            }
        }
        self.out.attempts += 1;
        self.push_ev(finish, EvKind::Done { aid });
    }

    /// Fill idle slots from the pending queue, then (optionally) with
    /// speculative backups.
    fn dispatch(&mut self) {
        while !self.idle.is_empty() {
            // Skip work that became moot (task finished by a backup).
            let work = loop {
                match self.pending.pop_front() {
                    Some(Work::Task { index, .. }) if self.tasks[index].done => continue,
                    other => break other,
                }
            };
            let Some(work) = work else { break };
            let std::cmp::Reverse(slot) = self.idle.pop().expect("checked non-empty");
            self.launch(slot, work, false);
        }
        if !self.policy.speculation {
            return;
        }
        while !self.idle.is_empty() {
            // Slowest running attempt whose projected finish is worse than
            // starting a fresh copy right now.
            let candidate = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.done && !c.has_spec && c.failed == 0 && !c.running.is_empty())
                .filter_map(|(i, c)| {
                    let finish = c
                        .running
                        .iter()
                        .map(|&aid| self.attempts[aid].finish)
                        .fold(f64::NEG_INFINITY, f64::max);
                    let fresh = self.now + self.policy.spec_threshold * self.clean[i];
                    (finish > fresh + 1e-12).then_some((i, finish))
                })
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
            let Some((task, _)) = candidate else { break };
            let std::cmp::Reverse(slot) = self.idle.pop().expect("checked non-empty");
            let attempt = self.tasks[task].launched;
            self.out.speculative_launched += 1;
            self.launch(
                slot,
                Work::Task {
                    index: task,
                    attempt,
                },
                true,
            );
        }
    }

    fn kill_attempt(&mut self, aid: usize, free_slot: bool) {
        let a = &mut self.attempts[aid];
        if !a.live {
            return;
        }
        a.live = false;
        if free_slot && self.alive[a.node] {
            self.idle.push(std::cmp::Reverse(a.slot));
        }
        if let Work::Task { index, .. } = a.work {
            let speculative = a.speculative;
            let ctl = &mut self.tasks[index];
            ctl.running.retain(|&x| x != aid);
            if speculative {
                ctl.has_spec = false;
            }
        }
    }

    fn on_death(&mut self, node: usize) {
        if !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        self.death_applied[node] = true;
        self.out.node_losses += 1;
        // Drop the node's idle slots.
        let spn = self.cluster.slots_per_node;
        let keep: Vec<std::cmp::Reverse<usize>> =
            self.idle.drain().filter(|r| r.0 / spn != node).collect();
        self.idle.extend(keep);
        // Reschedule its running attempts; node loss does not consume the
        // task's failure budget (it is not the task's fault).
        let victims: Vec<usize> = self
            .attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live && a.node == node)
            .map(|(aid, _)| aid)
            .collect();
        for aid in victims {
            let work = self.attempts[aid].work;
            let speculative = self.attempts[aid].speculative;
            self.kill_attempt(aid, false);
            match work {
                Work::Task { index, .. } if !speculative => {
                    let attempt = self.tasks[index].launched;
                    self.pending.push_back(Work::Task { index, attempt });
                }
                Work::Task { .. } => {} // lost backup: original still runs
                Work::Rerun { .. } => self.pending.push_back(work),
            }
        }
        // Reduce-phase loss without checkpointed map outputs: the lost
        // node's map outputs are gone — re-run those map tasks.
        if self.phase == Phase::Reduce && !self.policy.checkpoint_map_outputs {
            if let Some((map_durs, map_nodes)) = self.rerun_source {
                for (i, &n) in map_nodes.iter().enumerate() {
                    if n == node {
                        self.out.map_reruns += 1;
                        self.reruns_outstanding += 1;
                        self.pending.push_back(Work::Rerun { secs: map_durs[i] });
                    }
                }
            }
        }
    }

    fn on_done(&mut self, aid: usize) -> Result<(), SimFaultError> {
        if !self.attempts[aid].live {
            return Ok(()); // killed earlier (lost race or node death)
        }
        let a = self.attempts[aid];
        self.kill_attempt(aid, true);
        match a.work {
            Work::Rerun { .. } => {
                self.reruns_outstanding -= 1;
            }
            Work::Task { index, .. } if a.will_fail => {
                let ctl = &mut self.tasks[index];
                ctl.failed += 1;
                let failed = ctl.failed;
                if failed >= self.policy.retry.max_attempts.max(1) {
                    return Err(SimFaultError::TaskFailed {
                        job: self.job.to_string(),
                        phase: self.phase,
                        task: index,
                        attempts: failed,
                    });
                }
                self.out.retries += 1;
                let attempt = ctl.launched;
                self.pending.push_back(Work::Task { index, attempt });
            }
            Work::Task { index, .. } => {
                if !self.tasks[index].done {
                    self.tasks[index].done = true;
                    self.done_count += 1;
                    self.placements[index] = a.node;
                    if a.speculative {
                        self.out.speculative_wins += 1;
                    }
                    // First finisher wins: kill the losing attempts now and
                    // free their slots (Hadoop kills the slower attempt).
                    let losers = std::mem::take(&mut self.tasks[index].running);
                    for loser in losers {
                        self.kill_attempt(loser, true);
                    }
                }
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<(f64, Vec<usize>), SimFaultError> {
        // Apply deaths that happened before this phase (earlier phase or
        // during the shuffle interval), then schedule future ones.
        let deaths: Vec<(usize, f64)> = (0..self.alive.len())
            .filter(|&n| self.alive[n] && !self.death_applied[n])
            .filter_map(|n| {
                let horizon = self.plan_horizon();
                self.plan.node_loss_at(self.job, n, horizon).map(|t| (n, t))
            })
            .collect();
        for (n, t) in deaths {
            if t <= self.now {
                self.on_death(n);
            } else {
                self.push_ev(t, EvKind::Death { node: n });
            }
        }

        // Seed the queue with every phase task, first attempts.
        for index in 0..self.clean.len() {
            self.pending.push_back(Work::Task { index, attempt: 0 });
        }
        // All slots on live nodes start idle.
        let spn = self.cluster.slots_per_node;
        for node in 0..self.alive.len() {
            if self.alive[node] {
                for s in 0..spn {
                    self.idle.push(std::cmp::Reverse(node * spn + s));
                }
            }
        }

        self.dispatch();
        while !self.finished() {
            let Some(ev) = self.heap.pop() else {
                return Err(SimFaultError::ClusterLost {
                    job: self.job.to_string(),
                    at_secs: self.now,
                });
            };
            self.now = self.now.max(ev.t.0);
            match ev.kind {
                EvKind::Death { node } => self.on_death(node),
                EvKind::Done { aid } => self.on_done(aid)?,
            }
            if !self.finished() {
                let have_work = !self.pending.is_empty() || self.attempts.iter().any(|a| a.live);
                if !have_work || self.alive.iter().all(|a| !a) {
                    return Err(SimFaultError::ClusterLost {
                        job: self.job.to_string(),
                        at_secs: self.now,
                    });
                }
            }
            self.dispatch();
        }
        Ok((self.now, self.placements))
    }

    fn plan_horizon(&self) -> f64 {
        // Node-loss draws are scoped to the job's fault-free makespan so
        // the loss *rate* is per-job, not per-phase.
        self.clean_total
    }
}

impl ClusterModel {
    /// Simulate one measured job under a fault plan. Deterministic: same
    /// inputs, same outcome.
    pub fn simulate_job_faults(
        &self,
        m: &JobMetrics,
        plan: &FaultPlan,
        policy: &SimFaultPolicy,
    ) -> Result<SimFaultOutcome, SimFaultError> {
        let clean_total = self.simulate_job(m).total_secs();
        let mut out = SimFaultOutcome {
            clean_makespan_secs: clean_total,
            ..SimFaultOutcome::default()
        };
        let mut alive = vec![true; self.nodes];
        let mut death_applied = vec![false; self.nodes];

        let scale = |tasks: &[TaskStat]| -> Vec<f64> {
            tasks
                .iter()
                .map(|t| t.duration.as_secs_f64() / self.node_speed)
                .collect()
        };
        let map_durs = scale(&m.map_tasks);
        let reduce_durs = scale(&m.reduce_tasks);

        let map_sim = PhaseSim {
            job: &m.name,
            phase: Phase::Map,
            cluster: self,
            plan,
            policy,
            clean: &map_durs,
            rerun_source: None,
            clean_total,
            now: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
            idle: BinaryHeap::new(),
            pending: VecDeque::new(),
            tasks: vec![TaskCtl::default(); map_durs.len()],
            attempts: Vec::new(),
            alive: &mut alive,
            death_applied: &mut death_applied,
            placements: vec![0; map_durs.len()],
            done_count: 0,
            reruns_outstanding: 0,
            out: &mut out,
        };
        let (map_end, map_placements) = map_sim.run()?;

        let record_overhead =
            m.shuffle_records as f64 * self.per_record_secs / self.total_slots() as f64;
        let reduce_base = map_end + self.shuffle_secs(m.shuffle_bytes) + record_overhead;

        let reduce_sim = PhaseSim {
            job: &m.name,
            phase: Phase::Reduce,
            cluster: self,
            plan,
            policy,
            clean: &reduce_durs,
            rerun_source: Some((&map_durs, &map_placements)),
            clean_total,
            now: reduce_base,
            seq: 1_000_000, // disjoint from the map phase's seq range
            heap: BinaryHeap::new(),
            idle: BinaryHeap::new(),
            pending: VecDeque::new(),
            tasks: vec![TaskCtl::default(); reduce_durs.len()],
            attempts: Vec::new(),
            alive: &mut alive,
            death_applied: &mut death_applied,
            placements: vec![0; reduce_durs.len()],
            done_count: 0,
            reruns_outstanding: 0,
            out: &mut out,
        };
        let (reduce_end, _) = reduce_sim.run()?;
        out.makespan_secs = reduce_end;
        Ok(out)
    }

    /// Simulate a chain of jobs under a fault plan; jobs run back-to-back
    /// and each job faces a fresh cluster (the loss process is per-job).
    pub fn simulate_chain_faults(
        &self,
        chain: &ChainMetrics,
        plan: &FaultPlan,
        policy: &SimFaultPolicy,
    ) -> Result<SimFaultOutcome, SimFaultError> {
        let mut total = SimFaultOutcome::default();
        for job in &chain.jobs {
            let one = self.simulate_job_faults(job, plan, policy)?;
            total.absorb(&one);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskKind;
    use std::time::Duration;

    fn job(name: &str, maps: usize, map_secs: f64, reduces: usize, reduce_secs: f64) -> JobMetrics {
        let stat = |kind, index, secs: f64| TaskStat {
            kind,
            index,
            duration: Duration::from_secs_f64(secs),
            queue: Duration::ZERO,
            input_records: 1,
            input_bytes: 100,
            input_keys: 0,
            output_records: 1,
            output_bytes: 100,
        };
        JobMetrics {
            name: name.into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: (0..maps)
                .map(|i| stat(TaskKind::Map, i, map_secs))
                .collect(),
            reduce_tasks: (0..reduces)
                .map(|i| stat(TaskKind::Reduce, i, reduce_secs))
                .collect(),
            shuffle_records: 100,
            shuffle_bytes: 10_000,
            pre_combine_records: 100,
            pre_combine_bytes: 10_000,
            elapsed: Duration::from_secs(1),
            map_elapsed: Duration::from_secs(1),
            shuffle_elapsed: Duration::ZERO,
            reduce_elapsed: Duration::from_secs(1),
            exec: Default::default(),
        }
    }

    #[test]
    fn clean_plan_matches_fault_free_simulation() {
        let m = job("clean", 12, 1.0, 6, 2.0);
        let c = ClusterModel::paper_default(2);
        let plan = FaultPlan::new(1);
        let out = c
            .simulate_job_faults(&m, &plan, &SimFaultPolicy::default())
            .expect("no faults injected");
        assert!(
            (out.makespan_secs - out.clean_makespan_secs).abs() < 1e-9,
            "{out:?}"
        );
        assert_eq!(out.attempts, 18);
        assert_eq!(out.retries, 0);
        assert_eq!(out.node_losses, 0);
        assert!((out.slowdown() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chaos_outcome_is_deterministic_and_slower() {
        let m = job("chaos", 20, 1.0, 10, 1.5);
        let c = ClusterModel::paper_default(3);
        let plan = FaultPlan::chaos(42, 0.3);
        let policy = SimFaultPolicy::default();
        let a = c
            .simulate_job_faults(&m, &plan, &policy)
            .expect("within budget");
        let b = c
            .simulate_job_faults(&m, &plan, &policy)
            .expect("within budget");
        assert_eq!(a, b, "same seed, same outcome");
        assert!(a.retries > 0, "30% failure rate over 30 tasks: {a:?}");
        assert!(a.makespan_secs >= a.clean_makespan_secs - 1e-9);
        assert!(a.attempts as usize > 30);
    }

    #[test]
    fn speculation_cuts_straggler_bound_makespan() {
        // Straggler-heavy plan: no failures, half the attempts run 10x
        // slower. With backups on idle slots the tail collapses.
        let m = job("spec", 30, 1.0, 6, 1.0);
        let c = ClusterModel::paper_default(2); // 6 slots
        let plan = FaultPlan::new(7).with_stragglers(0.5, 10.0);
        let base = c
            .simulate_job_faults(&m, &plan, &SimFaultPolicy::default())
            .expect("stragglers never fail");
        let spec = c
            .simulate_job_faults(&m, &plan, &SimFaultPolicy::speculative())
            .expect("stragglers never fail");
        assert!(
            spec.makespan_secs <= base.makespan_secs + 1e-9,
            "speculation must never hurt: {} vs {}",
            spec.makespan_secs,
            base.makespan_secs
        );
        assert!(
            spec.makespan_secs < base.makespan_secs * 0.8,
            "tail should collapse: {} vs {}",
            spec.makespan_secs,
            base.makespan_secs
        );
        assert!(spec.speculative_launched > 0);
        assert!(spec.speculative_wins > 0);
        assert_eq!(base.speculative_launched, 0);
    }

    #[test]
    fn speculation_never_hurts_across_seeds() {
        let m = job("never-hurts", 24, 1.0, 8, 1.5);
        let c = ClusterModel::paper_default(2);
        for seed in 0..10 {
            let plan = FaultPlan::new(seed).with_stragglers(0.3, 6.0);
            let base = c
                .simulate_job_faults(&m, &plan, &SimFaultPolicy::default())
                .unwrap();
            let spec = c
                .simulate_job_faults(&m, &plan, &SimFaultPolicy::speculative())
                .unwrap();
            assert!(
                spec.makespan_secs <= base.makespan_secs + 1e-9,
                "seed {seed}: {} vs {}",
                spec.makespan_secs,
                base.makespan_secs
            );
        }
    }

    #[test]
    fn losing_every_node_kills_the_job() {
        let m = job("doomed", 10, 5.0, 5, 5.0);
        let c = ClusterModel::paper_default(3);
        let plan = FaultPlan::new(11).with_node_loss(1.0);
        let err = c
            .simulate_job_faults(&m, &plan, &SimFaultPolicy::default())
            .expect_err("all nodes die before the work can finish");
        assert!(matches!(err, SimFaultError::ClusterLost { .. }), "{err:?}");
        assert!(err.to_string().contains("lost every node"));
    }

    #[test]
    fn node_loss_reruns_are_deterministic_and_survivable() {
        // Moderate loss rate on a bigger cluster: some seeds lose a node,
        // the job still finishes, and lost-node work re-runs elsewhere.
        let m = job("lossy", 20, 1.0, 10, 4.0);
        let c = ClusterModel::paper_default(5);
        let mut saw_loss = false;
        for seed in 0..20 {
            let plan = FaultPlan::new(seed).with_node_loss(0.4);
            let policy = SimFaultPolicy::default();
            let a = c.simulate_job_faults(&m, &plan, &policy);
            let b = c.simulate_job_faults(&m, &plan, &policy);
            assert_eq!(a, b, "seed {seed}: even failures must be deterministic");
            // A seed that kills every node is a legitimate outcome at this
            // loss rate; the survivable seeds must still make sense.
            let Ok(a) = a else { continue };
            if a.node_losses > 0 {
                saw_loss = true;
                assert!(a.makespan_secs >= a.clean_makespan_secs - 1e-9);
            }
        }
        assert!(saw_loss, "40% loss rate over 20 seeds x 5 nodes must hit");
    }

    #[test]
    fn checkpointing_avoids_map_reruns() {
        // Long reduce phase so node losses land there; without checkpointed
        // map outputs the lost node's maps re-run, with them they don't.
        let m = job("ckpt", 15, 0.5, 10, 6.0);
        let c = ClusterModel::paper_default(5);
        let mut saw_rerun = false;
        for seed in 0..30 {
            let plan = FaultPlan::new(seed).with_node_loss(0.5);
            let with = SimFaultPolicy {
                checkpoint_map_outputs: true,
                ..SimFaultPolicy::default()
            };
            let without = SimFaultPolicy {
                checkpoint_map_outputs: false,
                ..SimFaultPolicy::default()
            };
            let (Ok(a), Ok(b)) = (
                c.simulate_job_faults(&m, &plan, &with),
                c.simulate_job_faults(&m, &plan, &without),
            ) else {
                continue; // this seed killed the whole cluster
            };
            assert_eq!(a.map_reruns, 0, "checkpointed outputs never re-map");
            if b.map_reruns > 0 {
                saw_rerun = true;
                assert!(
                    b.makespan_secs >= a.makespan_secs - 1e-9,
                    "re-mapping cannot be faster: {} vs {}",
                    b.makespan_secs,
                    a.makespan_secs
                );
            }
        }
        assert!(saw_rerun, "reduce-phase node loss must occur in 30 seeds");
    }

    #[test]
    fn exhausted_retry_budget_fails_the_task() {
        let m = job("hopeless", 4, 1.0, 2, 1.0);
        let c = ClusterModel::paper_default(2);
        let mut plan = FaultPlan::new(3).with_failures(1.0, 0.0);
        plan.max_injected_attempts = u32::MAX; // never relent
        let policy = SimFaultPolicy {
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..SimFaultPolicy::default()
        };
        let err = c
            .simulate_job_faults(&m, &plan, &policy)
            .expect_err("every attempt fails");
        match err {
            SimFaultError::TaskFailed { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn chain_sums_jobs() {
        let mut chain = ChainMetrics::default();
        chain.push(job("a", 6, 1.0, 3, 1.0));
        chain.push(job("b", 6, 1.0, 3, 1.0));
        let c = ClusterModel::paper_default(2);
        let plan = FaultPlan::chaos(5, 0.2);
        let policy = SimFaultPolicy::default();
        let total = c.simulate_chain_faults(&chain, &plan, &policy).unwrap();
        let a = c
            .simulate_job_faults(&chain.jobs[0], &plan, &policy)
            .unwrap();
        let b = c
            .simulate_job_faults(&chain.jobs[1], &plan, &policy)
            .unwrap();
        assert!((total.makespan_secs - a.makespan_secs - b.makespan_secs).abs() < 1e-9);
        assert_eq!(total.attempts, a.attempts + b.attempts);
        assert_eq!(total.retries, a.retries + b.retries);
    }
}
