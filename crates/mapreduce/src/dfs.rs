//! A minimal distributed-file-system stand-in: a typed, named dataset store.
//!
//! Hadoop drivers chain jobs through HDFS paths; ours chain through [`Dfs`]
//! names. Datasets are stored type-erased and recovered with
//! [`Dfs::take`]/[`Dfs::get`], which panic on a type mismatch the same way a
//! Hadoop job fails on an input-format mismatch. The mismatch message
//! carries record-level context — stored vs requested types, record/byte
//! counts, and the offending record's byte offset with a truncated payload
//! preview — because "different type" alone is useless when the driver
//! chained five jobs through the store.
//!
//! The store also keeps untyped blobs ([`Dfs::put_blob`]): checkpointed
//! shuffle output ([`SpillStore`](crate::SpillStore)) is registered here
//! when a driver wants map outputs to outlive one job, mirroring Hadoop
//! materializing spills on the DFS-adjacent local disks.

use crate::dataset::Dataset;
use ssj_common::{ByteSize, FxHashMap};
use std::any::Any;
use std::fmt::Debug;

/// Maximum characters of a record preview kept for error messages.
const PREVIEW_CHARS: usize = 80;

/// Record-level context captured when a dataset is stored, reported on
/// input-format (type) mismatch.
#[derive(Debug, Clone)]
pub struct EntryMeta {
    /// `type_name` of the stored key type.
    pub key_type: &'static str,
    /// `type_name` of the stored value type.
    pub value_type: &'static str,
    /// Total records stored.
    pub records: usize,
    /// Total logical bytes stored.
    pub bytes: usize,
    /// The record a format reader would fail on — the first record of the
    /// first non-empty partition — with its byte offset in the dataset's
    /// logical byte stream and a truncated `Debug` rendering.
    pub first_record: Option<RecordPreview>,
}

/// A truncated rendering of one stored record.
#[derive(Debug, Clone)]
pub struct RecordPreview {
    /// Logical byte offset of the record within the dataset (bytes of all
    /// records preceding it in partition order).
    pub byte_offset: usize,
    /// `Debug` rendering, truncated to [`PREVIEW_CHARS`] characters.
    pub payload: String,
}

struct Entry {
    data: Box<dyn Any + Send>,
    meta: EntryMeta,
}

fn truncate_payload(rendered: String) -> String {
    if rendered.chars().count() <= PREVIEW_CHARS {
        return rendered;
    }
    let cut: String = rendered.chars().take(PREVIEW_CHARS).collect();
    format!("{cut}…")
}

fn describe_mismatch(name: &str, requested_k: &str, requested_v: &str, meta: &EntryMeta) -> String {
    let record = match &meta.first_record {
        Some(p) => format!(
            "; offending record at byte offset {}: {}",
            p.byte_offset, p.payload
        ),
        None => "; dataset is empty".to_string(),
    };
    format!(
        "dfs: dataset {name:?} has input format ({}, {}) but ({requested_k}, {requested_v}) \
         was requested ({} records, {} bytes{record})",
        meta.key_type, meta.value_type, meta.records, meta.bytes
    )
}

/// Named, typed dataset store used to chain jobs within a driver.
#[derive(Default)]
pub struct Dfs {
    entries: FxHashMap<String, Entry>,
}

impl Dfs {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a dataset under `name`, replacing any previous dataset with
    /// that name (HDFS overwrite semantics).
    pub fn put<K, V>(&mut self, name: impl Into<String>, dataset: Dataset<K, V>)
    where
        K: Send + Debug + ByteSize + 'static,
        V: Send + Debug + ByteSize + 'static,
    {
        let mut records = 0usize;
        let mut bytes = 0usize;
        let mut first_record = None;
        for part in dataset.partitions() {
            for (k, v) in part {
                if first_record.is_none() {
                    first_record = Some(RecordPreview {
                        byte_offset: bytes,
                        payload: truncate_payload(format!("{:?}", (k, v))),
                    });
                }
                records += 1;
                bytes += k.byte_size() + v.byte_size();
            }
        }
        let meta = EntryMeta {
            key_type: std::any::type_name::<K>(),
            value_type: std::any::type_name::<V>(),
            records,
            bytes,
            first_record,
        };
        self.entries.insert(
            name.into(),
            Entry {
                data: Box::new(dataset),
                meta,
            },
        );
    }

    /// Borrow a dataset by name.
    ///
    /// # Panics
    /// Panics if the name is missing, or — with full record-level context —
    /// if it was stored with different types.
    pub fn get<K, V>(&self, name: &str) -> &Dataset<K, V>
    where
        K: Send + 'static,
        V: Send + 'static,
    {
        let entry = self
            .entries
            .get(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"));
        entry
            .data
            .downcast_ref::<Dataset<K, V>>()
            .unwrap_or_else(|| {
                panic!(
                    "{}",
                    describe_mismatch(
                        name,
                        std::any::type_name::<K>(),
                        std::any::type_name::<V>(),
                        &entry.meta
                    )
                )
            })
    }

    /// Remove and return a dataset by name.
    ///
    /// # Panics
    /// Panics if the name is missing, or — with full record-level context —
    /// if it was stored with different types.
    pub fn take<K, V>(&mut self, name: &str) -> Dataset<K, V>
    where
        K: Send + 'static,
        V: Send + 'static,
    {
        let entry = self
            .entries
            .remove(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"));
        let meta = entry.meta;
        *entry.data.downcast::<Dataset<K, V>>().unwrap_or_else(|_| {
            panic!(
                "{}",
                describe_mismatch(
                    name,
                    std::any::type_name::<K>(),
                    std::any::type_name::<V>(),
                    &meta
                )
            )
        })
    }

    /// Stored metadata for a dataset, if present (types, counts, preview).
    pub fn meta(&self, name: &str) -> Option<&EntryMeta> {
        self.entries.get(name).map(|e| &e.meta)
    }

    /// Store an untyped blob (e.g. a [`SpillStore`](crate::SpillStore)
    /// checkpoint) under `name`. Overwrites like [`Dfs::put`].
    pub fn put_blob<T: Send + 'static>(&mut self, name: impl Into<String>, blob: T) {
        let meta = EntryMeta {
            key_type: std::any::type_name::<T>(),
            value_type: "(blob)",
            records: 0,
            bytes: 0,
            first_record: None,
        };
        self.entries.insert(
            name.into(),
            Entry {
                data: Box::new(blob),
                meta,
            },
        );
    }

    /// Borrow a blob by name.
    ///
    /// # Panics
    /// Panics if the name is missing or holds a different type.
    pub fn get_blob<T: Send + 'static>(&self, name: &str) -> &T {
        let entry = self
            .entries
            .get(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"));
        entry.data.downcast_ref::<T>().unwrap_or_else(|| {
            panic!(
                "dfs: blob {name:?} holds {} but {} was requested",
                entry.meta.key_type,
                std::any::type_name::<T>()
            )
        })
    }

    /// Remove and return a blob by name.
    ///
    /// # Panics
    /// Panics if the name is missing or holds a different type.
    pub fn take_blob<T: Send + 'static>(&mut self, name: &str) -> T {
        let entry = self
            .entries
            .remove(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"));
        let stored = entry.meta.key_type;
        *entry.data.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "dfs: blob {name:?} holds {stored} but {} was requested",
                std::any::type_name::<T>()
            )
        })
    }

    /// Whether a dataset with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Delete a dataset if present; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    /// Names of all stored datasets (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::SpillStore;

    #[test]
    fn put_get_take_round_trip() {
        let mut dfs = Dfs::new();
        let d = Dataset::from_records(vec![(1u32, "a".to_string())], 1);
        dfs.put("x", d.clone());
        assert!(dfs.contains("x"));
        assert_eq!(dfs.get::<u32, String>("x"), &d);
        let back = dfs.take::<u32, String>("x");
        assert_eq!(back, d);
        assert!(!dfs.contains("x"));
    }

    #[test]
    fn overwrite_replaces() {
        let mut dfs = Dfs::new();
        dfs.put("x", Dataset::from_records(vec![(1u32, 1u32)], 1));
        dfs.put("x", Dataset::from_records(vec![(2u32, 2u32)], 1));
        assert_eq!(dfs.get::<u32, u32>("x").total_records(), 1);
        assert_eq!(dfs.get::<u32, u32>("x").iter().next(), Some(&(2, 2)));
    }

    #[test]
    #[should_panic(expected = "no dataset named")]
    fn missing_name_panics() {
        let dfs = Dfs::new();
        let _ = dfs.get::<u32, u32>("absent");
    }

    #[test]
    #[should_panic(expected = "input format")]
    fn type_mismatch_panics() {
        let mut dfs = Dfs::new();
        dfs.put("x", Dataset::from_records(vec![(1u32, 1u32)], 1));
        let _ = dfs.get::<u32, String>("x");
    }

    #[test]
    fn mismatch_reports_record_offset_and_preview() {
        let mut dfs = Dfs::new();
        dfs.put(
            "tokens",
            Dataset::from_records(vec![(7u32, "hello world".to_string()), (8, "x".into())], 1),
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = dfs.get::<u64, u64>("tokens");
        }))
        .expect_err("mismatch must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String")
            .clone();
        assert!(msg.contains("tokens"), "{msg}");
        assert!(msg.contains("u32"), "stored key type: {msg}");
        assert!(msg.contains("u64"), "requested key type: {msg}");
        assert!(msg.contains("2 records"), "{msg}");
        assert!(msg.contains("offending record at byte offset 0"), "{msg}");
        assert!(msg.contains("hello world"), "payload preview: {msg}");
    }

    #[test]
    fn long_payload_previews_are_truncated() {
        let mut dfs = Dfs::new();
        let long = "A".repeat(500);
        dfs.put("big", Dataset::from_records(vec![(1u32, long)], 1));
        let meta = dfs.meta("big").expect("stored");
        let preview = meta.first_record.as_ref().expect("non-empty");
        assert_eq!(preview.byte_offset, 0);
        assert!(
            preview.payload.chars().count() <= PREVIEW_CHARS + 1,
            "len {}",
            preview.payload.chars().count()
        );
        assert!(preview.payload.ends_with('…'));
    }

    #[test]
    fn empty_dataset_mismatch_says_so() {
        let mut dfs = Dfs::new();
        dfs.put("void", Dataset::<u32, u32>::empty());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = dfs.get::<u64, u64>("void");
        }))
        .expect_err("mismatch must panic");
        let msg = err.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("dataset is empty"), "{msg}");
    }

    #[test]
    fn meta_counts_records_and_bytes() {
        let mut dfs = Dfs::new();
        dfs.put(
            "m",
            Dataset::from_records(vec![(1u32, 2u64), (3, 4), (5, 6)], 2),
        );
        let meta = dfs.meta("m").unwrap();
        assert_eq!(meta.records, 3);
        assert_eq!(meta.bytes, 3 * (4 + 8));
        assert!(meta.key_type.contains("u32"));
        assert!(meta.value_type.contains("u64"));
    }

    #[test]
    fn spill_store_blob_round_trip() {
        let mut dfs = Dfs::new();
        let mut spill: SpillStore<u32, u64> = SpillStore::new(2);
        spill.register(0, vec![(1, 10)]);
        spill.register(1, vec![(2, 20), (3, 30)]);
        dfs.put_blob("job0/map-output", spill);
        assert!(dfs.contains("job0/map-output"));
        {
            let s = dfs.get_blob::<SpillStore<u32, u64>>("job0/map-output");
            assert_eq!(s.total_records(), 3);
            assert_eq!(*s.fetch(0)[0], vec![(1, 10)]);
        }
        let s = dfs.take_blob::<SpillStore<u32, u64>>("job0/map-output");
        assert_eq!(*s.fetch(1)[0], vec![(2, 20), (3, 30)]);
        assert!(!dfs.contains("job0/map-output"));
    }

    #[test]
    #[should_panic(expected = "holds")]
    fn blob_type_mismatch_panics() {
        let mut dfs = Dfs::new();
        dfs.put_blob("b", 42u64);
        let _ = dfs.get_blob::<String>("b");
    }

    #[test]
    fn names_and_remove() {
        let mut dfs = Dfs::new();
        dfs.put("a", Dataset::from_records(vec![(1u32, 1u32)], 1));
        dfs.put("b", Dataset::from_records(vec![(1u32, 1u32)], 1));
        let mut names: Vec<&str> = dfs.names().collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert!(dfs.remove("a"));
        assert!(!dfs.remove("a"));
    }
}
