//! A minimal distributed-file-system stand-in: a typed, named dataset store.
//!
//! Hadoop drivers chain jobs through HDFS paths; ours chain through [`Dfs`]
//! names. Datasets are stored type-erased and recovered with
//! [`Dfs::take`]/[`Dfs::get`], which panic on a type mismatch the same way a
//! Hadoop job fails on an input-format mismatch.

use crate::dataset::Dataset;
use ssj_common::FxHashMap;
use std::any::Any;

/// Named, typed dataset store used to chain jobs within a driver.
#[derive(Default)]
pub struct Dfs {
    entries: FxHashMap<String, Box<dyn Any + Send>>,
}

impl Dfs {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a dataset under `name`, replacing any previous dataset with
    /// that name (HDFS overwrite semantics).
    pub fn put<K, V>(&mut self, name: impl Into<String>, dataset: Dataset<K, V>)
    where
        K: Send + 'static,
        V: Send + 'static,
    {
        self.entries.insert(name.into(), Box::new(dataset));
    }

    /// Borrow a dataset by name.
    ///
    /// # Panics
    /// Panics if the name is missing or was stored with different types.
    pub fn get<K, V>(&self, name: &str) -> &Dataset<K, V>
    where
        K: Send + 'static,
        V: Send + 'static,
    {
        self.entries
            .get(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"))
            .downcast_ref::<Dataset<K, V>>()
            .unwrap_or_else(|| panic!("dfs: dataset {name:?} has a different type"))
    }

    /// Remove and return a dataset by name.
    ///
    /// # Panics
    /// Panics if the name is missing or was stored with different types.
    pub fn take<K, V>(&mut self, name: &str) -> Dataset<K, V>
    where
        K: Send + 'static,
        V: Send + 'static,
    {
        *self
            .entries
            .remove(name)
            .unwrap_or_else(|| panic!("dfs: no dataset named {name:?}"))
            .downcast::<Dataset<K, V>>()
            .unwrap_or_else(|_| panic!("dfs: dataset {name:?} has a different type"))
    }

    /// Whether a dataset with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Delete a dataset if present; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    /// Names of all stored datasets (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_take_round_trip() {
        let mut dfs = Dfs::new();
        let d = Dataset::from_records(vec![(1u32, "a".to_string())], 1);
        dfs.put("x", d.clone());
        assert!(dfs.contains("x"));
        assert_eq!(dfs.get::<u32, String>("x"), &d);
        let back = dfs.take::<u32, String>("x");
        assert_eq!(back, d);
        assert!(!dfs.contains("x"));
    }

    #[test]
    fn overwrite_replaces() {
        let mut dfs = Dfs::new();
        dfs.put("x", Dataset::from_records(vec![(1u32, 1u32)], 1));
        dfs.put("x", Dataset::from_records(vec![(2u32, 2u32)], 1));
        assert_eq!(dfs.get::<u32, u32>("x").total_records(), 1);
        assert_eq!(dfs.get::<u32, u32>("x").iter().next(), Some(&(2, 2)));
    }

    #[test]
    #[should_panic(expected = "no dataset named")]
    fn missing_name_panics() {
        let dfs = Dfs::new();
        let _ = dfs.get::<u32, u32>("absent");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let mut dfs = Dfs::new();
        dfs.put("x", Dataset::from_records(vec![(1u32, 1u32)], 1));
        let _ = dfs.get::<u32, String>("x");
    }

    #[test]
    fn names_and_remove() {
        let mut dfs = Dfs::new();
        dfs.put("a", Dataset::from_records(vec![(1u32, 1u32)], 1));
        dfs.put("b", Dataset::from_records(vec![(1u32, 1u32)], 1));
        let mut names: Vec<&str> = dfs.names().collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert!(dfs.remove("a"));
        assert!(!dfs.remove("a"));
    }
}
