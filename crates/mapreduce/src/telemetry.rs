//! Registry telemetry emitted once per finished job/stage.
//!
//! [`JobBuilder::run_full`](crate::JobBuilder) and the plan runner's
//! `finalize_stage` both funnel through [`record_job_telemetry`] so a
//! standalone job and the same job inside a plan write an identical
//! registry block. Two namespaces:
//!
//! * `mr.*` — global accumulators across all jobs of the process-level
//!   registry (shuffle volume, attempts, queue-delay histograms).
//! * `mr.stage.<job>.*` — per-stage shuffle-skew telemetry: per-reduce-
//!   partition records/bytes/keys histograms, imbalance factors
//!   (max/mean, p99/p50, Gini) over partition bytes, map-output skew
//!   over map tasks, and a straggler count (task slower than
//!   [`STRAGGLER_FACTOR`] × its stage's median).

use ssj_common::stats::Summary;
use ssj_observe::{LogHistogram, MetricsRegistry};

use crate::metrics::JobMetrics;

/// A task counts as a straggler when its duration exceeds this multiple of
/// its stage's median task duration.
pub const STRAGGLER_FACTOR: f64 = 2.0;

/// Count tasks whose duration exceeds `STRAGGLER_FACTOR ×` the median of
/// `durations_us` (bucket-interpolated median, so the detector matches
/// what an offline reader reconstructs from the exported histogram).
pub fn straggler_count(durations_us: &[u64]) -> u64 {
    if durations_us.len() < 2 {
        return 0;
    }
    let mut h = LogHistogram::default();
    for &d in durations_us {
        h.record(d);
    }
    let cutoff = STRAGGLER_FACTOR * h.quantile(0.5);
    durations_us.iter().filter(|&&d| d as f64 > cutoff).count() as u64
}

/// p99/p50 imbalance factor of a count distribution via the same log
/// histogram the registry exports (1.0 for empty/degenerate input).
pub fn p99_over_p50(values: &[u64]) -> f64 {
    let mut h = LogHistogram::default();
    for &v in values {
        h.record(v);
    }
    let p50 = h.quantile(0.5);
    if p50 <= 0.0 {
        return 1.0;
    }
    h.quantile(0.99) / p50
}

/// Record a plan stage's shuffle fan-in (number of upstream edges; 0 =
/// external input) as `mr.stage.<job>.fan_in`, so the skew namespace
/// tells a two-input join-reduce stage apart from a plain chain stage.
pub fn record_stage_fan_in(reg: &MetricsRegistry, stage: &str, fan_in: usize) {
    reg.gauge_set(&format!("mr.stage.{stage}.fan_in"), fan_in as f64);
}

/// Emit the full per-job registry block: global `mr.*` accumulators plus
/// the `mr.stage.<job>.*` skew/straggler namespace.
pub fn record_job_telemetry(reg: &MetricsRegistry, m: &JobMetrics) {
    let exec = &m.exec;
    reg.counter_add("mr.jobs", 1);
    reg.counter_add("mr.shuffle.records", m.shuffle_records as u64);
    reg.counter_add("mr.shuffle.bytes", m.shuffle_bytes as u64);
    reg.counter_add("mr.task.attempts", exec.attempts);
    reg.counter_add("mr.task.retries", exec.retries);
    reg.counter_add("mr.faults.injected.errors", exec.injected_errors);
    reg.counter_add("mr.faults.injected.panics", exec.injected_panics);
    reg.counter_add("mr.faults.injected.stragglers", exec.injected_stragglers);
    reg.counter_add("mr.spec.launched", exec.speculative_launched);
    reg.counter_add("mr.spec.wins", exec.speculative_wins);
    reg.counter_add("mr.pre_combine.records", m.pre_combine_records as u64);
    for t in &m.map_tasks {
        reg.histogram_record("mr.map.output_records", t.output_records as u64);
        reg.histogram_record("mr.task.queue_us", t.queue.as_micros() as u64);
    }
    for t in &m.reduce_tasks {
        reg.histogram_record("mr.reduce.input_records", t.input_records as u64);
        reg.histogram_record("mr.reduce.input_bytes", t.input_bytes as u64);
        reg.histogram_record("mr.reduce.input_keys", t.input_keys as u64);
        reg.histogram_record("mr.task.queue_us", t.queue.as_micros() as u64);
    }

    // ---- Per-stage skew namespace ------------------------------------
    let stage = &m.name;
    // Co-group stages announce themselves: the gauge tells readers why
    // the stage has no map tasks, and the saved-bytes counter is the
    // shuffle volume an identity-rekey fan-in over the same inputs
    // would have re-transferred.
    if m.cogroup {
        reg.gauge_set(&format!("mr.stage.{stage}.cogroup"), 1.0);
        reg.counter_add(
            &format!("mr.stage.{stage}.cogroup.shuffle_bytes_saved"),
            m.cogroup_shuffle_bytes_saved() as u64,
        );
    }
    let records: Vec<u64> = m
        .reduce_tasks
        .iter()
        .map(|t| t.input_records as u64)
        .collect();
    let bytes: Vec<u64> = m
        .reduce_tasks
        .iter()
        .map(|t| t.input_bytes as u64)
        .collect();
    let keys: Vec<u64> = m.reduce_tasks.iter().map(|t| t.input_keys as u64).collect();
    for ((r, b), k) in records.iter().zip(&bytes).zip(&keys) {
        reg.histogram_record(&format!("mr.stage.{stage}.reduce.records"), *r);
        reg.histogram_record(&format!("mr.stage.{stage}.reduce.bytes"), *b);
        reg.histogram_record(&format!("mr.stage.{stage}.reduce.keys"), *k);
    }
    let byte_balance = Summary::of_counts(m.reduce_tasks.iter().map(|t| t.input_bytes));
    reg.gauge_set(
        &format!("mr.stage.{stage}.skew.max_over_mean"),
        byte_balance.skew,
    );
    reg.gauge_set(&format!("mr.stage.{stage}.skew.gini"), byte_balance.gini);
    reg.gauge_set(
        &format!("mr.stage.{stage}.skew.p99_over_p50"),
        p99_over_p50(&bytes),
    );

    // Map-output skew: how unevenly the map tasks themselves produced
    // shuffle data (distinct from how the partitioner spread it).
    let map_out = Summary::of_counts(m.map_tasks.iter().map(|t| t.output_records));
    reg.gauge_set(
        &format!("mr.stage.{stage}.map.skew.max_over_mean"),
        map_out.skew,
    );

    // Straggler annotation over all task durations of the stage.
    let durations: Vec<u64> = m
        .map_tasks
        .iter()
        .chain(&m.reduce_tasks)
        .map(|t| t.duration.as_micros() as u64)
        .collect();
    reg.counter_add(
        &format!("mr.stage.{stage}.stragglers"),
        straggler_count(&durations),
    );
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::metrics::{ExecSummary, TaskKind, TaskStat};

    fn stat(kind: TaskKind, index: usize, ms: u64, bytes: usize, keys: usize) -> TaskStat {
        TaskStat {
            kind,
            index,
            duration: Duration::from_millis(ms),
            queue: Duration::ZERO,
            input_records: bytes / 8,
            input_bytes: bytes,
            input_keys: keys,
            output_records: 1,
            output_bytes: 8,
        }
    }

    fn job(reduce_bytes: &[usize], reduce_ms: &[u64]) -> JobMetrics {
        JobMetrics {
            name: "probe".into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: vec![stat(TaskKind::Map, 0, 5, 100, 0)],
            reduce_tasks: reduce_bytes
                .iter()
                .zip(reduce_ms)
                .enumerate()
                .map(|(i, (&b, &ms))| stat(TaskKind::Reduce, i, ms, b, 3))
                .collect(),
            shuffle_records: 10,
            shuffle_bytes: reduce_bytes.iter().sum(),
            pre_combine_records: 10,
            pre_combine_bytes: 100,
            elapsed: Duration::from_millis(50),
            map_elapsed: Duration::from_millis(10),
            shuffle_elapsed: Duration::from_millis(5),
            reduce_elapsed: Duration::from_millis(30),
            exec: ExecSummary::default(),
        }
    }

    #[test]
    fn fan_in_gauge_lands_in_stage_namespace() {
        let reg = MetricsRegistry::new();
        record_stage_fan_in(&reg, "join", 2);
        let jsonl = reg.to_jsonl();
        assert!(jsonl.contains("mr.stage.join.fan_in"), "{jsonl}");
    }

    #[test]
    fn stragglers_need_clear_outliers() {
        // Uniform durations: no stragglers.
        assert_eq!(straggler_count(&[100, 100, 100, 100]), 0);
        // One task 10× the median trips the detector.
        assert_eq!(straggler_count(&[100, 100, 100, 1000]), 1);
        // Degenerate inputs never divide by zero.
        assert_eq!(straggler_count(&[]), 0);
        assert_eq!(straggler_count(&[500]), 0);
    }

    #[test]
    fn imbalance_factor_tracks_skew() {
        let even = p99_over_p50(&[1000, 1000, 1000, 1000]);
        assert!(even <= 2.0, "balanced load factor {even}");
        let skewed = p99_over_p50(&[100, 100, 100, 100_000]);
        assert!(skewed > 10.0, "skewed load factor {skewed}");
        assert_eq!(p99_over_p50(&[]), 1.0);
    }

    #[test]
    fn telemetry_emits_stage_namespace() {
        let reg = MetricsRegistry::new();
        let m = job(&[800, 800, 800, 80_000], &[10, 10, 10, 200]);
        record_job_telemetry(&reg, &m);
        let jsonl = reg.to_jsonl();
        for needed in [
            "mr.stage.probe.reduce.records",
            "mr.stage.probe.reduce.bytes",
            "mr.stage.probe.reduce.keys",
            "mr.stage.probe.skew.max_over_mean",
            "mr.stage.probe.skew.p99_over_p50",
            "mr.stage.probe.skew.gini",
            "mr.stage.probe.map.skew.max_over_mean",
            "mr.stage.probe.stragglers",
            "mr.reduce.input_keys",
            "mr.shuffle.records",
        ] {
            assert!(jsonl.contains(needed), "missing {needed} in:\n{jsonl}");
        }
        // The hot partition shows up in the gauges and straggler count.
        let snap = reg.snapshot();
        let gauge = |name: &str| {
            snap.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| match v {
                    ssj_observe::MetricValue::Gauge(g) => *g,
                    _ => panic!("{name} not a gauge"),
                })
                .unwrap()
        };
        assert!(gauge("mr.stage.probe.skew.max_over_mean") > 1.5);
        assert!(gauge("mr.stage.probe.skew.gini") > 0.3);
        let stragglers = snap
            .iter()
            .find(|(n, _)| n == "mr.stage.probe.stragglers")
            .map(|(_, v)| match v {
                ssj_observe::MetricValue::Counter(c) => *c,
                _ => panic!("not a counter"),
            })
            .unwrap();
        assert_eq!(stragglers, 1);
    }

    #[test]
    fn cogroup_stage_emits_gauge_and_bytes_saved() {
        let reg = MetricsRegistry::new();
        let mut m = job(&[800, 1200], &[10, 10]);
        m.cogroup = true;
        m.map_tasks.clear();
        for t in &mut m.reduce_tasks {
            t.kind = TaskKind::CoGroup;
        }
        record_job_telemetry(&reg, &m);
        let snap = reg.snapshot();
        let find = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
        match find("mr.stage.probe.cogroup") {
            Some(ssj_observe::MetricValue::Gauge(g)) => assert_eq!(g, 1.0),
            other => panic!("cogroup gauge missing/wrong: {other:?}"),
        }
        match find("mr.stage.probe.cogroup.shuffle_bytes_saved") {
            Some(ssj_observe::MetricValue::Counter(c)) => assert_eq!(c, 2000),
            other => panic!("bytes-saved counter missing/wrong: {other:?}"),
        }
        // A plain map-reduce stage emits neither.
        let reg2 = MetricsRegistry::new();
        record_job_telemetry(&reg2, &job(&[800], &[10]));
        assert!(!reg2.to_jsonl().contains("cogroup"));
    }
}
