//! Partitioned in-memory datasets — the unit of data exchanged between jobs.
//!
//! A [`Dataset`] plays the role HDFS files play between Hadoop jobs: a named
//! collection of records laid out in partitions. Map tasks are created one
//! per input partition (a partition ≈ an input split), so `repartition`
//! controls map-side parallelism of the next job.

use ssj_common::ByteSize;

/// A partitioned collection of `(key, value)` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset<K, V> {
    partitions: Vec<Vec<(K, V)>>,
}

impl<K, V> Dataset<K, V> {
    /// Build a dataset from explicit partitions.
    pub fn from_partitions(partitions: Vec<Vec<(K, V)>>) -> Self {
        Dataset { partitions }
    }

    /// Build a dataset by dealing records round-robin into `num_partitions`
    /// partitions (preserving order within each partition).
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn from_records(records: Vec<(K, V)>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "dataset needs at least one partition");
        let per = records.len().div_ceil(num_partitions).max(1);
        let mut partitions: Vec<Vec<(K, V)>> = Vec::with_capacity(num_partitions);
        let mut it = records.into_iter();
        for _ in 0..num_partitions {
            let chunk: Vec<(K, V)> = it.by_ref().take(per).collect();
            partitions.push(chunk);
        }
        // Any remainder (possible only from rounding) joins the last partition.
        partitions.last_mut().expect("non-empty").extend(it);
        Dataset { partitions }
    }

    /// An empty dataset with one empty partition.
    pub fn empty() -> Self {
        Dataset {
            partitions: vec![Vec::new()],
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of records across partitions.
    pub fn total_records(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Borrow the partitions.
    pub fn partitions(&self) -> &[Vec<(K, V)>] {
        &self.partitions
    }

    /// Consume into partitions.
    pub fn into_partitions(self) -> Vec<Vec<(K, V)>> {
        self.partitions
    }

    /// Iterate over all records in partition order, consuming the dataset.
    pub fn into_records(self) -> impl Iterator<Item = (K, V)> {
        self.partitions.into_iter().flatten()
    }

    /// Iterate over all records by reference, in partition order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.partitions.iter().flatten()
    }

    /// Redistribute records into `num_partitions` partitions of near-equal
    /// record count (order-preserving). Used to control the number of map
    /// tasks in the next job.
    pub fn repartition(self, num_partitions: usize) -> Self {
        let records: Vec<(K, V)> = self.into_records().collect();
        Self::from_records(records, num_partitions)
    }
}

impl<K: ByteSize, V: ByteSize> Dataset<K, V> {
    /// Total logical encoded size of all records.
    pub fn total_bytes(&self) -> usize {
        self.iter()
            .map(|(k, v)| k.byte_size() + v.byte_size())
            .sum()
    }
}

impl<K, V> FromIterator<(K, V)> for Dataset<K, V> {
    /// Collect records into a single-partition dataset.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Dataset {
            partitions: vec![iter.into_iter().collect()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|i| (i, i * 10)).collect()
    }

    #[test]
    fn from_records_balances_partitions() {
        let d = Dataset::from_records(records(10), 3);
        assert_eq!(d.num_partitions(), 3);
        assert_eq!(d.total_records(), 10);
        let sizes: Vec<usize> = d.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn from_records_more_partitions_than_records() {
        let d = Dataset::from_records(records(2), 5);
        assert_eq!(d.num_partitions(), 5);
        assert_eq!(d.total_records(), 2);
    }

    #[test]
    fn repartition_preserves_records() {
        let d = Dataset::from_records(records(7), 2).repartition(4);
        assert_eq!(d.num_partitions(), 4);
        let mut all: Vec<(u32, u32)> = d.into_records().collect();
        all.sort();
        assert_eq!(all, records(7));
    }

    #[test]
    fn byte_accounting() {
        let d = Dataset::from_records(vec![(1u32, vec![1u32, 2])], 1);
        assert_eq!(d.total_bytes(), 4 + 4 + 8);
    }

    #[test]
    fn empty_dataset() {
        let d: Dataset<u32, u32> = Dataset::empty();
        assert_eq!(d.total_records(), 0);
        assert_eq!(d.num_partitions(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let d: Dataset<u32, u32> = records(3).into_iter().collect();
        assert_eq!(d.num_partitions(), 1);
        assert_eq!(d.total_records(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = Dataset::from_records(records(3), 0);
    }
}
