//! Output collector handed to map and reduce tasks.

use ssj_common::ByteSize;

/// Collects `(key, value)` pairs emitted by a task and accounts their
/// logical encoded size (see [`ByteSize`]).
#[derive(Debug)]
pub struct Emitter<K, V> {
    buf: Vec<(K, V)>,
    bytes: usize,
}

impl<K: ByteSize, V: ByteSize> Emitter<K, V> {
    /// Create an empty emitter.
    pub fn new() -> Self {
        Emitter {
            buf: Vec::new(),
            bytes: 0,
        }
    }

    /// Create an emitter with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Emitter {
            buf: Vec::with_capacity(cap),
            bytes: 0,
        }
    }

    /// Emit one pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += key.byte_size() + value.byte_size();
        self.buf.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Logical encoded size of everything emitted so far.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Consume the emitter, returning its buffer and byte count.
    pub(crate) fn into_parts(self) -> (Vec<(K, V)>, usize) {
        (self.buf, self.bytes)
    }
}

impl<K: ByteSize, V: ByteSize> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_counts_records_and_bytes() {
        let mut e: Emitter<u32, u64> = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, 10);
        e.emit(2, 20);
        assert_eq!(e.len(), 2);
        assert_eq!(e.bytes(), 2 * (4 + 8));
        let (buf, bytes) = e.into_parts();
        assert_eq!(buf, vec![(1, 10), (2, 20)]);
        assert_eq!(bytes, 24);
    }

    #[test]
    fn variable_length_values_accounted() {
        let mut e: Emitter<u32, Vec<u32>> = Emitter::new();
        e.emit(1, vec![1, 2, 3]);
        // key 4 + vec prefix 4 + 3*4 payload
        assert_eq!(e.bytes(), 4 + 4 + 12);
    }
}
