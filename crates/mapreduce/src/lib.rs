//! A from-scratch, in-process MapReduce engine.
//!
//! The FS-Join paper (ICDE 2017) evaluates on Hadoop. There are no Rust
//! Hadoop/Spark bindings, so this crate reimplements the MapReduce
//! execution model faithfully enough that every quantity the paper's
//! experiments observe is produced by the same mechanism:
//!
//! * typed [`Mapper`]/[`Reducer`] tasks with `setup`/`map|reduce`/`cleanup`
//!   lifecycle hooks (Hadoop semantics);
//! * a sort-merge shuffle with per-partition routing through a
//!   [`Partitioner`], optional [`Combiner`], and byte-level accounting via
//!   [`ssj_common::ByteSize`];
//! * parallel task execution on a thread pool, with per-task wall-clock and
//!   record/byte counters collected into [`JobMetrics`];
//! * a [`ClusterModel`] that schedules the measured task durations onto a
//!   configurable `nodes × slots` cluster and charges shuffle volume against
//!   a network-bandwidth model, yielding the simulated makespan used by the
//!   node-scalability experiments (paper Figure 9).
//!
//! # Example
//!
//! Word count:
//!
//! ```
//! use ssj_mapreduce::{Dataset, Emitter, JobBuilder, Mapper, Reducer};
//!
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = u32;            // line number
//!     type InValue = String;       // line text
//!     type OutKey = String;        // word
//!     type OutValue = u64;         // count
//!     fn map(&mut self, _k: u32, line: String, out: &mut Emitter<String, u64>) {
//!         for w in line.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer for Sum {
//!     type InKey = String;
//!     type InValue = u64;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn reduce(&mut self, word: &String, counts: Vec<u64>, out: &mut Emitter<String, u64>) {
//!         out.emit(word.clone(), counts.iter().sum());
//!     }
//! }
//!
//! let input = Dataset::from_records(vec![(0u32, "a b a".to_string()), (1, "b".to_string())], 2);
//! let (output, metrics) = JobBuilder::new("wordcount")
//!     .reduce_tasks(2)
//!     .run(&input, |_| Tokenize, |_| Sum);
//! let mut counts: Vec<(String, u64)> = output.into_records().collect();
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2)]);
//! assert_eq!(metrics.map_output_records(), 4);
//! ```

pub mod cluster;
pub mod dataset;
pub mod dfs;
pub mod emitter;
pub mod executor;
pub mod job;
pub mod merge;
pub mod metrics;
pub mod partitioner;
pub mod plan;
pub mod sim_faults;
pub mod spill;
pub mod telemetry;
pub mod traits;

pub use cluster::{schedules_makespan_secs, ClusterModel, PhaseTimes, SimSchedule, SimTask};
pub use dataset::Dataset;
pub use dfs::Dfs;
pub use emitter::Emitter;
pub use executor::{AttemptCtx, ExecPolicy, TaskError, TaskFailure};
pub use job::{IdentityCombiner, JobBuilder};
pub use merge::{CoGroupedRuns, GroupValues, GroupedRuns, KWayMerge, SideGroups};
pub use metrics::{ChainMetrics, ExecSummary, JobMetrics, TaskKind, TaskStat};
pub use partitioner::{DirectPartitioner, HashPartitioner, Partitioner};
pub use plan::{
    next_plan_run_id, BroadcastHandle, Plan, PlanMode, PlanOutcome, PlanRunner, Stage, StageEdge,
    StageHandle, StageInput,
};
pub use sim_faults::{SimFaultError, SimFaultOutcome, SimFaultPolicy};
pub use spill::{SharedRun, SpillStore};
pub use traits::{
    CoGroupReducer, Combiner, Key, Mapper, Reducer, StreamingReducer, SumCombiner, Value,
};
