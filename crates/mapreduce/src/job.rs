//! Job construction and execution: split → map → combine → partition →
//! sort-merge shuffle → reduce.
//!
//! The reduce-side data plane is streaming: map tasks spill *sorted* runs
//! per reduce partition, the shuffle transposes them (in parallel, across
//! partitions) into an [`SpillStore`] of `Arc`-shared immutable runs, and
//! each reduce task k-way-merges its runs ([`GroupedRuns`]) instead of
//! concatenating and re-sorting — `O(n log k)` where the map side already
//! paid the `O(n log n)`. Key groups stream to the reducer by reference;
//! batch [`Reducer`]s get their `Vec` through the adapter in
//! [`crate::traits`], [`StreamingReducer`]s consume groups without any
//! engine-side per-key allocation.

use crate::dataset::Dataset;
use crate::emitter::Emitter;
use crate::executor::{default_workers, run_tasks, run_tasks_ft, AttemptCtx, ExecPolicy};
use crate::merge::GroupedRuns;
use crate::metrics::{ExecSummary, JobMetrics, TaskKind, TaskStat};
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::spill::{SharedRun, SpillStore};
use crate::traits::{Combiner, Key, Mapper, StreamingReducer, Value};
use ssj_common::ByteSize;
use ssj_faults::{FaultPlan, Phase, RetryPolicy, SpeculationPolicy};
use ssj_observe::{global_registry, span};
use std::sync::Arc;
use std::time::Instant;

/// A combiner that passes values through unchanged (no combining).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCombiner;

impl<K: Key, V: Value> Combiner<K, V> for IdentityCombiner {
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }

    fn combine_into(&self, _key: &K, values: &mut dyn Iterator<Item = V>, out: &mut Vec<V>) {
        out.extend(values);
    }
}

/// Configures and runs a MapReduce job.
///
/// One map task is created per input-dataset partition (use
/// [`Dataset::repartition`] to control map parallelism); the number of
/// reduce tasks is set with [`JobBuilder::reduce_tasks`] (the paper sets it
/// to 3 × the node count).
#[derive(Debug, Clone)]
pub struct JobBuilder {
    name: String,
    reduce_tasks: usize,
    workers: usize,
    retry: RetryPolicy,
    speculation: SpeculationPolicy,
    faults: Option<Arc<FaultPlan>>,
}

impl JobBuilder {
    /// Start configuring a job.
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            reduce_tasks: 4,
            workers: default_workers(),
            retry: RetryPolicy::default(),
            speculation: SpeculationPolicy::default(),
            faults: None,
        }
    }

    /// Set the number of reduce tasks (default 4).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn reduce_tasks(mut self, n: usize) -> Self {
        assert!(n > 0, "a job needs at least one reduce task");
        self.reduce_tasks = n;
        self
    }

    /// Set the number of host worker threads used to execute tasks
    /// (default: available parallelism). This affects only real wall-clock,
    /// never results or byte counters.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a job needs at least one worker thread");
        self.workers = n;
        self
    }

    /// Set the per-task retry budget and backoff (default: 4 attempts with
    /// exponential backoff, Hadoop's `mapred.map.max.attempts`).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Configure speculative re-execution of stragglers (default: off).
    pub fn speculation(mut self, policy: SpeculationPolicy) -> Self {
        self.speculation = policy;
        self
    }

    /// Inject faults from a deterministic [`FaultPlan`] into this job's
    /// task attempts. When unset, the job still honours a process-global
    /// plan installed via [`ssj_faults::install_plan`] (how the chaos CI
    /// smoke drives an unmodified pipeline).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// The fault plan in effect: explicit builder setting, else the
    /// process-global plan, else none.
    fn effective_faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.clone().or_else(ssj_faults::active_plan)
    }

    /// Assemble the executor policy for one phase.
    fn exec_policy(&self, phase: Phase) -> ExecPolicy {
        ExecPolicy {
            job: self.name.clone(),
            phase,
            workers: self.workers,
            retry: self.retry,
            speculation: self.speculation,
            faults: self.effective_faults(),
        }
    }

    /// Run with the default [`HashPartitioner`] and no combiner.
    pub fn run<M, R, FM, FR>(
        &self,
        input: &Dataset<M::InKey, M::InValue>,
        mapper: FM,
        reducer: FR,
    ) -> (Dataset<R::OutKey, R::OutValue>, JobMetrics)
    where
        M: Mapper,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue>,
        FM: Fn(usize) -> M + Sync,
        FR: Fn(usize) -> R + Sync,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        self.run_full(
            input,
            mapper,
            reducer,
            &HashPartitioner,
            None::<&IdentityCombiner>,
        )
    }

    /// Run with a custom partitioner and no combiner.
    pub fn run_partitioned<M, R, P, FM, FR>(
        &self,
        input: &Dataset<M::InKey, M::InValue>,
        mapper: FM,
        reducer: FR,
        partitioner: &P,
    ) -> (Dataset<R::OutKey, R::OutValue>, JobMetrics)
    where
        M: Mapper,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
        FM: Fn(usize) -> M + Sync,
        FR: Fn(usize) -> R + Sync,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        self.run_full(
            input,
            mapper,
            reducer,
            partitioner,
            None::<&IdentityCombiner>,
        )
    }

    /// Run with a custom partitioner and an optional map-side combiner.
    pub fn run_full<M, R, P, C, FM, FR>(
        &self,
        input: &Dataset<M::InKey, M::InValue>,
        mapper: FM,
        reducer: FR,
        partitioner: &P,
        combiner: Option<&C>,
    ) -> (Dataset<R::OutKey, R::OutValue>, JobMetrics)
    where
        M: Mapper,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
        C: Combiner<M::OutKey, M::OutValue>,
        FM: Fn(usize) -> M + Sync,
        FR: Fn(usize) -> R + Sync,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        let job_start = Instant::now();
        let num_reduce = self.reduce_tasks;
        let mut job_span = span("mr.job", &self.name);
        job_span.record("reduce_tasks", num_reduce);

        // A commutative combiner erases any equal-key permutation before
        // the shuffle observes it, which licenses the faster unstable
        // map-side bucket sort; everything else keeps the stable sort so
        // reducers see values in exact emission order.
        let unstable_bucket_sort = combiner.is_some_and(Combiner::is_commutative);

        // ---- Map phase ---------------------------------------------------
        let splits: Vec<&[(M::InKey, M::InValue)]> =
            input.partitions().iter().map(|p| p.as_slice()).collect();

        let map_phase_start = Instant::now();
        let mut map_span = span("mr.phase", "map");
        map_span.record("job", self.name.as_str());
        map_span.record("tasks", splits.len());
        let map_policy = self.exec_policy(Phase::Map);
        let (map_results, map_exec) =
            run_tasks_ft(&map_policy, splits, |task_idx, split, ctx: AttemptCtx| {
                let queue = map_phase_start.elapsed();
                let mut task_span = span("mr.task", "map");
                task_span.record("job", self.name.as_str());
                task_span.record("index", task_idx);
                task_span.record("attempt", ctx.attempt);
                if ctx.speculative {
                    task_span.record("speculative", 1u64);
                }
                let start = Instant::now();
                let mut m = mapper(task_idx);
                let mut out: Emitter<M::OutKey, M::OutValue> = Emitter::new();
                m.setup();
                let mut input_bytes = 0usize;
                for (k, v) in split.iter() {
                    input_bytes += k.byte_size() + v.byte_size();
                    m.map(k.clone(), v.clone(), &mut out);
                }
                m.cleanup(&mut out);

                let pre_records = out.len();
                let pre_bytes = out.bytes();
                let (pairs, _) = out.into_parts();

                // Partition into reduce buckets, sort each by key, and apply the
                // combiner per key run (Hadoop's spill pipeline, without disk).
                let mut buckets: Vec<Vec<(M::OutKey, M::OutValue)>> =
                    (0..num_reduce).map(|_| Vec::new()).collect();
                for (k, v) in pairs {
                    let p = partitioner.partition(&k, num_reduce);
                    debug_assert!(p < num_reduce);
                    buckets[p].push((k, v));
                }
                let mut post_bytes = 0usize;
                let mut post_records = 0usize;
                for bucket in &mut buckets {
                    if unstable_bucket_sort {
                        bucket.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    } else {
                        bucket.sort_by(|a, b| a.0.cmp(&b.0));
                    }
                    if let Some(c) = combiner {
                        *bucket = combine_runs(std::mem::take(bucket), c);
                    }
                    post_records += bucket.len();
                    post_bytes += bucket
                        .iter()
                        .map(|(k, v)| k.byte_size() + v.byte_size())
                        .sum::<usize>();
                }

                task_span.record("input_records", split.len());
                task_span.record("output_records", post_records);
                let stat = TaskStat {
                    kind: TaskKind::Map,
                    index: task_idx,
                    duration: start.elapsed(),
                    queue,
                    input_records: split.len(),
                    input_bytes,
                    input_keys: 0,
                    output_records: post_records,
                    output_bytes: post_bytes,
                };
                (buckets, stat, pre_records, pre_bytes)
            })
            .unwrap_or_else(|failure| panic!("{failure}"));
        let map_elapsed = map_phase_start.elapsed();
        drop(map_span);

        let shuffle_start = Instant::now();
        let mut shuffle_span = span("mr.phase", "shuffle");
        shuffle_span.record("job", self.name.as_str());
        let mut map_stats = Vec::with_capacity(map_results.len());
        let mut pre_combine_records = 0usize;
        let mut pre_combine_bytes = 0usize;
        let mut shuffle_records = 0usize;
        let mut shuffle_bytes = 0usize;
        // Seal each map task's sorted buckets behind Arcs (O(1) per
        // bucket — the data is not copied, only ownership moves), then
        // transpose into per-reduce-partition run lists in parallel on the
        // executor pool: partition r's task clones the r-th Arc of every
        // map output, in map-task order (the merge's determinism
        // tie-break). The result is checkpointed in the SpillStore so
        // reduce attempts re-fetch shared views, never copies.
        let mut sealed: Vec<Vec<SharedRun<M::OutKey, M::OutValue>>> =
            Vec::with_capacity(map_results.len());
        for (buckets, stat, pre_r, pre_b) in map_results {
            pre_combine_records += pre_r;
            pre_combine_bytes += pre_b;
            shuffle_records += stat.output_records;
            shuffle_bytes += stat.output_bytes;
            map_stats.push(stat);
            sealed.push(buckets.into_iter().map(Arc::new).collect());
        }
        let columns = run_tasks(self.workers, (0..num_reduce).collect(), |_, r| {
            sealed
                .iter()
                .map(|task_runs| Arc::clone(&task_runs[r]))
                .collect::<Vec<_>>()
        });
        drop(sealed);
        let spill: SpillStore<M::OutKey, M::OutValue> = SpillStore::from_shared(columns);

        shuffle_span.record("records", shuffle_records);
        shuffle_span.record("bytes", shuffle_bytes);
        let shuffle_elapsed = shuffle_start.elapsed();
        drop(shuffle_span);

        // ---- Reduce phase ------------------------------------------------
        let reduce_phase_start = Instant::now();
        let mut reduce_span = span("mr.phase", "reduce");
        reduce_span.record("job", self.name.as_str());
        reduce_span.record("tasks", num_reduce);
        let reduce_policy = self.exec_policy(Phase::Reduce);
        let reduce_indices: Vec<usize> = (0..num_reduce).collect();
        let (reduce_results, reduce_exec) = run_tasks_ft(
            &reduce_policy,
            reduce_indices,
            |task_idx, _, ctx: AttemptCtx| {
                let queue = reduce_phase_start.elapsed();
                let mut task_span = span("mr.task", "reduce");
                task_span.record("job", self.name.as_str());
                task_span.record("index", task_idx);
                task_span.record("attempt", ctx.attempt);
                if ctx.speculative {
                    task_span.record("speculative", 1u64);
                }
                // Fetch the checkpointed map output for this partition — every
                // attempt re-fetches shared views of the same runs, none
                // re-runs the map phase (and none copies the data).
                let runs = spill.fetch(task_idx);
                let start = Instant::now();
                let mut r = reducer(task_idx);
                let mut out: Emitter<R::OutKey, R::OutValue> = Emitter::new();
                r.setup();

                // Byte-account the input up front (same totals the old
                // concat loop produced), then k-way merge the sorted runs —
                // O(n log k); the map side already paid the O(n log n).
                // Equal keys drain in run (map-task) order, reproducing the
                // old concat + stable sort element-for-element.
                let mut input_records = 0usize;
                let mut input_bytes = 0usize;
                for run in &runs {
                    input_records += run.len();
                    input_bytes += run
                        .iter()
                        .map(|(k, v)| k.byte_size() + v.byte_size())
                        .sum::<usize>();
                }
                let slices: Vec<&[(M::OutKey, M::OutValue)]> =
                    runs.iter().map(|run| run.as_slice()).collect();
                let mut input_keys = 0usize;
                GroupedRuns::new(slices).for_each_group(|key, values| {
                    input_keys += 1;
                    r.reduce_group(key, values, &mut out);
                });
                r.cleanup(&mut out);

                let output_records = out.len();
                let output_bytes = out.bytes();
                let (pairs, _) = out.into_parts();
                task_span.record("input_records", input_records);
                task_span.record("input_keys", input_keys);
                task_span.record("output_records", output_records);
                let stat = TaskStat {
                    kind: TaskKind::Reduce,
                    index: task_idx,
                    duration: start.elapsed(),
                    queue,
                    input_records,
                    input_bytes,
                    input_keys,
                    output_records,
                    output_bytes,
                };
                (pairs, stat)
            },
        )
        .unwrap_or_else(|failure| panic!("{failure}"));

        let mut reduce_stats = Vec::with_capacity(reduce_results.len());
        let mut output_partitions = Vec::with_capacity(reduce_results.len());
        for (pairs, stat) in reduce_results {
            reduce_stats.push(stat);
            output_partitions.push(pairs);
        }
        let reduce_elapsed = reduce_phase_start.elapsed();
        drop(reduce_span);

        let mut exec = ExecSummary::default();
        exec.add(&map_exec);
        exec.add(&reduce_exec);

        let metrics = JobMetrics {
            name: self.name.clone(),
            plan_stage: None,
            cogroup: false,
            map_tasks: map_stats,
            reduce_tasks: reduce_stats,
            shuffle_records,
            shuffle_bytes,
            pre_combine_records,
            pre_combine_bytes,
            elapsed: job_start.elapsed(),
            map_elapsed,
            shuffle_elapsed,
            reduce_elapsed,
            exec,
        };
        job_span.record("shuffle_records", shuffle_records);
        job_span.record("shuffle_bytes", shuffle_bytes);
        job_span.record("pre_combine_records", pre_combine_records);
        if exec.retries > 0 {
            job_span.record("retries", exec.retries);
        }
        if exec.speculative_launched > 0 {
            job_span.record("speculative", exec.speculative_launched);
        }
        if let Some(reg) = global_registry() {
            crate::telemetry::record_job_telemetry(&reg, &metrics);
        }
        (Dataset::from_partitions(output_partitions), metrics)
    }
}

/// One key run drained straight off a sorted bucket iterator: yields the
/// values of `key` and stops at the first pair with a different key,
/// leaving it in the underlying iterator.
struct RunValues<'a, K: Key, V: Value, I: Iterator<Item = (K, V)>> {
    first: Option<V>,
    key: &'a K,
    rest: &'a mut std::iter::Peekable<I>,
}

impl<K: Key, V: Value, I: Iterator<Item = (K, V)>> Iterator for RunValues<'_, K, V, I> {
    type Item = V;

    fn next(&mut self) -> Option<V> {
        if let Some(v) = self.first.take() {
            return Some(v);
        }
        if self.rest.peek().is_some_and(|(k, _)| k == self.key) {
            return self.rest.next().map(|(_, v)| v);
        }
        None
    }
}

/// Apply a combiner to every key run of a sorted bucket.
///
/// Key groups stream off the bucket through [`Combiner::combine_into`]:
/// fold-style combiners ([`crate::SumCombiner`], the verification-count
/// combiner) run with **no per-key allocation** — one reused scratch vector
/// amortizes over the whole bucket. Exposed (as an engine internal) so the
/// counting-allocator bench can pin that property.
pub fn combine_runs<K: Key, V: Value, C: Combiner<K, V>>(
    bucket: Vec<(K, V)>,
    combiner: &C,
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(bucket.len());
    let mut vals: Vec<V> = Vec::new(); // reused across key groups
    let mut it = bucket.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        {
            let mut run = RunValues {
                first: Some(first),
                key: &key,
                rest: &mut it,
            };
            combiner.combine_into(&key, &mut run, &mut vals);
            // The contract says the combiner exhausts the run; drain any
            // leftovers so a lazy combiner cannot leak values into the
            // next group.
            for _leftover in run {}
        }
        flush_combined(key, &mut vals, &mut out);
    }
    out
}

/// Move one combined key group out of the scratch buffer, cloning the key
/// only for the first `n - 1` pairs and moving it into the last (the
/// common single-value case clones nothing).
fn flush_combined<K: Key, V: Value>(key: K, vals: &mut Vec<V>, out: &mut Vec<(K, V)>) {
    let n = vals.len();
    if n == 0 {
        return;
    }
    let mut drained = vals.drain(..);
    for _ in 0..n - 1 {
        out.push((key.clone(), drained.next().expect("n values")));
    }
    let last = drained.next().expect("n values");
    drop(drained);
    out.push((key, last));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::DirectPartitioner;
    use crate::traits::{Reducer, SumCombiner};

    /// Emits (token, 1) for each whitespace token.
    struct Tokenize;
    impl Mapper for Tokenize {
        type InKey = u32;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&mut self, _k: u32, line: String, out: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    /// Sums counts per token.
    struct Sum;
    impl Reducer for Sum {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&mut self, k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.into_iter().sum());
        }
    }

    fn wc_input() -> Dataset<u32, String> {
        Dataset::from_records(
            vec![
                (0, "the quick brown fox".to_string()),
                (1, "the lazy dog".to_string()),
                (2, "the fox".to_string()),
            ],
            2,
        )
    }

    fn sorted_output(d: Dataset<String, u64>) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = d.into_records().collect();
        v.sort();
        v
    }

    #[test]
    fn word_count_end_to_end() {
        let (out, m) =
            JobBuilder::new("wc")
                .reduce_tasks(3)
                .run(&wc_input(), |_| Tokenize, |_| Sum);
        assert_eq!(
            sorted_output(out),
            vec![
                ("brown".to_string(), 1),
                ("dog".to_string(), 1),
                ("fox".to_string(), 2),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 1),
                ("the".to_string(), 3),
            ]
        );
        assert_eq!(m.map_input_records(), 3);
        assert_eq!(m.map_output_records(), 9);
        assert_eq!(m.shuffle_records, 9);
        assert_eq!(m.map_tasks.len(), 2);
        assert_eq!(m.reduce_tasks.len(), 3);
    }

    #[test]
    fn combiner_reduces_shuffle_but_not_results() {
        let (plain, m_plain) =
            JobBuilder::new("wc")
                .reduce_tasks(2)
                .run(&wc_input(), |_| Tokenize, |_| Sum);
        let (combined, m_comb) = JobBuilder::new("wc+c").reduce_tasks(2).run_full(
            &wc_input(),
            |_| Tokenize,
            |_| Sum,
            &HashPartitioner,
            Some(&SumCombiner),
        );
        assert_eq!(sorted_output(plain), sorted_output(combined));
        // "the" appears twice in map task 0's split -> combiner merges.
        assert!(m_comb.shuffle_records < m_plain.shuffle_records);
        assert_eq!(m_comb.pre_combine_records, m_plain.shuffle_records);
    }

    #[test]
    fn direct_partitioner_places_keys() {
        /// Emits (id % 4, id).
        struct ModMap;
        impl Mapper for ModMap {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u32;
            fn map(&mut self, k: u32, _v: u32, out: &mut Emitter<u32, u32>) {
                out.emit(k % 4, k);
            }
        }
        /// Emits group size keyed by group id.
        struct CountRed;
        impl Reducer for CountRed {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u64;
            fn reduce(&mut self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u64>) {
                out.emit(*k, vs.len() as u64);
            }
        }
        let input = Dataset::from_records((0u32..40).map(|i| (i, i)).collect(), 3);
        let (out, m) = JobBuilder::new("mod").reduce_tasks(4).run_partitioned(
            &input,
            |_| ModMap,
            |_| CountRed,
            &DirectPartitioner::new(|k: &u32| *k as usize),
        );
        // Partition r holds exactly key r.
        for (r, part) in out.partitions().iter().enumerate() {
            assert_eq!(part.len(), 1);
            assert_eq!(part[0], (r as u32, 10));
        }
        // All reduce inputs perfectly balanced.
        assert!((m.reduce_input_balance().skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reducer_sees_keys_in_order() {
        /// Identity map.
        struct Id;
        impl Mapper for Id {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u32;
            fn map(&mut self, k: u32, v: u32, out: &mut Emitter<u32, u32>) {
                out.emit(k, v);
            }
        }
        /// Asserts ascending key order within the task.
        struct OrderCheck {
            last: Option<u32>,
        }
        impl Reducer for OrderCheck {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u32;
            fn reduce(&mut self, k: &u32, _vs: Vec<u32>, out: &mut Emitter<u32, u32>) {
                if let Some(last) = self.last {
                    assert!(*k > last, "keys must ascend within a reduce task");
                }
                self.last = Some(*k);
                out.emit(*k, 0);
            }
        }
        let input = Dataset::from_records((0u32..100).rev().map(|i| (i, i)).collect(), 5);
        let (out, _) = JobBuilder::new("order").reduce_tasks(3).run(
            &input,
            |_| Id,
            |_| OrderCheck { last: None },
        );
        assert_eq!(out.total_records(), 100);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let input: Dataset<u32, String> = Dataset::empty();
        let (out, m) = JobBuilder::new("empty")
            .reduce_tasks(2)
            .run(&input, |_| Tokenize, |_| Sum);
        assert_eq!(out.total_records(), 0);
        assert_eq!(m.map_input_records(), 0);
        assert_eq!(m.shuffle_records, 0);
    }

    #[test]
    fn setup_and_cleanup_lifecycle() {
        /// Counts records, emits the total in cleanup.
        struct CountingMapper {
            seen: u64,
        }
        impl Mapper for CountingMapper {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u64;
            fn setup(&mut self) {
                assert_eq!(self.seen, 0);
            }
            fn map(&mut self, _k: u32, _v: u32, _out: &mut Emitter<u32, u64>) {
                self.seen += 1;
            }
            fn cleanup(&mut self, out: &mut Emitter<u32, u64>) {
                out.emit(0, self.seen);
            }
        }
        struct Sum64;
        impl Reducer for Sum64 {
            type InKey = u32;
            type InValue = u64;
            type OutKey = u32;
            type OutValue = u64;
            fn reduce(&mut self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
                out.emit(*k, vs.into_iter().sum());
            }
        }
        let input = Dataset::from_records((0u32..10).map(|i| (i, i)).collect(), 2);
        let (out, _) = JobBuilder::new("lifecycle").reduce_tasks(1).run(
            &input,
            |_| CountingMapper { seen: 0 },
            |_| Sum64,
        );
        assert_eq!(out.into_records().collect::<Vec<_>>(), vec![(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least one reduce task")]
    fn zero_reduce_tasks_rejected() {
        let _ = JobBuilder::new("bad").reduce_tasks(0);
    }
}
