//! Fault-tolerant thread-pool task execution.
//!
//! Tasks within a phase (all map tasks, then all reduce tasks) are
//! independent, so they are drained from a shared queue by a scoped worker
//! pool. Two entry points:
//!
//! * [`run_tasks`] — the plain path: lock-free result handoff (the atomic
//!   dispatch counter guarantees exclusive ownership of each index), with
//!   per-task panic capture so one panicking task cannot unwind through the
//!   pool and abort the sibling tasks. Used where failure is a bug, not an
//!   expected event.
//! * [`run_tasks_ft`] — the attempt-aware scheduler: bounded retry with
//!   exponential backoff ([`RetryPolicy`]), deterministic fault injection
//!   from a [`FaultPlan`], and speculative re-execution of stragglers with
//!   first-finisher-wins semantics ([`SpeculationPolicy`]). This is the
//!   engine analogue of Hadoop's TaskTracker attempt machinery, and the
//!   path every [`JobBuilder`](crate::JobBuilder) phase runs on.
//!
//! On a single-core host both degrade gracefully to sequential execution;
//! per-task wall-clock measurements remain valid inputs for the
//! [`ClusterModel`](crate::ClusterModel) because each attempt runs on one
//! thread from start to finish.

use crate::metrics::ExecSummary;
use ssj_faults::{Fault, FaultPlan, InjectedPanic, Phase, RetryPolicy, SpeculationPolicy};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of worker threads to use by default: the host's available
/// parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Lock-free slot vectors.
// ---------------------------------------------------------------------------

/// A vector of write-once cells, each owned by exactly one worker at a time.
///
/// Safety contract: callers must guarantee that a given index is accessed by
/// at most one thread at any moment (here: the dispatch counter hands out
/// each index once, and in the fault-tolerant path winner selection happens
/// under the scheduler lock). Reads back on the coordinating thread happen
/// after `thread::scope` joins every worker, which synchronizes-with all
/// their writes.
struct SlotVec<T> {
    cells: Box<[UnsafeCell<Option<T>>]>,
}

// SAFETY: see the struct-level contract; cells are never aliased mutably.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn filled(items: Vec<T>) -> Self {
        SlotVec {
            cells: items
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
        }
    }

    fn empty(n: usize) -> Self {
        SlotVec {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Take the value at `i`. Caller must hold exclusive logical ownership
    /// of index `i`.
    unsafe fn take(&self, i: usize) -> Option<T> {
        (*self.cells[i].get()).take()
    }

    /// Store a value at `i`. Caller must hold exclusive logical ownership
    /// of index `i`.
    unsafe fn put(&self, i: usize, value: T) {
        *self.cells[i].get() = Some(value);
    }

    fn into_values(self) -> impl Iterator<Item = Option<T>> {
        self.cells
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
    }
}

// ---------------------------------------------------------------------------
// Plain path: run_tasks.
// ---------------------------------------------------------------------------

/// Run `tasks` closures over a pool of `workers` threads, returning results
/// in task order. `f(i, task)` must be safe to call concurrently for
/// distinct tasks.
///
/// # Panics
/// If a task panics, the panic is caught on the worker (sibling tasks run
/// to completion; no shared state is poisoned) and re-raised here with the
/// task index prepended.
pub fn run_tasks<T, O, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, T) -> O + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        // Fast path: no synchronization overhead.
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let tasks = SlotVec::filled(tasks);
    let results: SlotVec<O> = SlotVec::empty(n);
    let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the counter hands out index i exactly once, so
                // this worker is its sole owner.
                let task = unsafe { tasks.take(i) }.expect("task taken twice");
                match catch_unwind(AssertUnwindSafe(|| f(i, task))) {
                    // SAFETY: same exclusive ownership of index i.
                    Ok(out) => unsafe { results.put(i, out) },
                    Err(payload) => {
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert_with(|| (i, panic_message(&payload)));
                    }
                }
            });
        }
    });

    if let Some((i, msg)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("task {i} panicked: {msg}");
    }
    results
        .into_values()
        .map(|slot| slot.expect("task produced no result"))
        .collect()
}

/// The pre-fault-tolerance implementation of [`run_tasks`], with per-task
/// `Mutex<Option<T>>` handoff slots. Kept (hidden) as the baseline for the
/// executor micro-benchmark and as a differential-testing oracle; do not
/// use in new code.
#[doc(hidden)]
pub fn run_tasks_locked<T, O, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, T) -> O + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = tasks[i].lock().unwrap().take().expect("task taken twice");
                let out = f(i, task);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("task produced no result")
        })
        .collect()
}

pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        format!(
            "ssj-faults: injected panic (job={}, {} task {}, attempt {})",
            p.job,
            p.phase.name(),
            p.task,
            p.attempt
        )
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant path: run_tasks_ft.
// ---------------------------------------------------------------------------

/// How one task attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task body panicked; message extracted from the payload.
    Panicked(String),
    /// The fault plan injected this failure.
    Injected(Fault),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(msg) => write!(f, "panicked: {msg}"),
            TaskError::Injected(fault) => write!(f, "injected {}", fault.name()),
        }
    }
}

/// A task that exhausted its retry budget.
#[derive(Debug, Clone)]
pub struct TaskFailure {
    /// Job the task belonged to.
    pub job: String,
    /// Map or reduce.
    pub phase: Phase,
    /// Task index within the phase.
    pub index: usize,
    /// Attempts launched before giving up.
    pub attempts: u32,
    /// The last attempt's error.
    pub error: TaskError,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {:?}: {} task {} failed after {} attempts: {}",
            self.job,
            self.phase.name(),
            self.index,
            self.attempts,
            self.error
        )
    }
}

impl std::error::Error for TaskFailure {}

/// Execution policy for one phase of one job.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Job name (fault-injection scope and error context).
    pub job: String,
    /// Phase (fault-injection scope).
    pub phase: Phase,
    /// Worker threads.
    pub workers: usize,
    /// Retry budget and backoff.
    pub retry: RetryPolicy,
    /// Speculative-execution policy.
    pub speculation: SpeculationPolicy,
    /// Fault plan; `None` runs clean.
    pub faults: Option<Arc<FaultPlan>>,
}

impl ExecPolicy {
    /// A clean policy (no faults, no speculation, default retry).
    pub fn new(job: impl Into<String>, phase: Phase, workers: usize) -> Self {
        ExecPolicy {
            job: job.into(),
            phase,
            workers,
            retry: RetryPolicy::default(),
            speculation: SpeculationPolicy::default(),
            faults: None,
        }
    }
}

/// Context handed to each attempt of the task body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptCtx {
    /// Attempt ordinal for this task (0 = first).
    pub attempt: u32,
    /// Whether this is a speculative backup copy.
    pub speculative: bool,
}

/// One schedulable unit in the attempt queue.
struct QueuedAttempt {
    task: usize,
    attempt: u32,
    not_before: Instant,
    speculative: bool,
}

/// Per-task scheduler bookkeeping (all behind the scheduler mutex).
struct TaskCtl {
    done: bool,
    failed_attempts: u32,
    launched: u32,
    running: u32,
    has_speculative: bool,
    current_start: Option<Instant>,
}

/// Shared scheduler state.
struct Sched {
    queue: VecDeque<QueuedAttempt>,
    tasks: Vec<TaskCtl>,
    completed: usize,
    completed_durations: Vec<f64>,
    fatal: Option<TaskFailure>,
    report: ExecSummary,
}

impl Sched {
    /// Median of completed-task durations (for the speculation threshold).
    fn median_completed_secs(&mut self) -> Option<f64> {
        if self.completed_durations.is_empty() {
            return None;
        }
        self.completed_durations.sort_by(|a, b| a.total_cmp(b));
        Some(self.completed_durations[self.completed_durations.len() / 2])
    }
}

/// Run `tasks` under the attempt-aware scheduler: each task is executed via
/// `f(index, &task, ctx)` (by shared reference, so failed attempts can be
/// re-launched from the original input — the in-process analogue of
/// re-fetching a materialized map output); panics in `f` are caught and
/// charged to the attempt; failed attempts are retried with backoff up to
/// `policy.retry.max_attempts`; and, when enabled, idle workers
/// speculatively re-execute slow tasks, first finisher wins.
///
/// Returns results in task order plus an [`ExecSummary`] of what the
/// scheduler had to do. `Err` means some task exhausted its retry budget;
/// sibling tasks are not abandoned mid-attempt (workers drain before
/// returning), matching Hadoop's job-failure semantics.
pub fn run_tasks_ft<T, O, F>(
    policy: &ExecPolicy,
    tasks: Vec<T>,
    f: F,
) -> Result<(Vec<O>, ExecSummary), TaskFailure>
where
    T: Send + Sync,
    O: Send,
    F: Fn(usize, &T, AttemptCtx) -> O + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Ok((Vec::new(), ExecSummary::default()));
    }
    let workers = policy.workers.clamp(1, n);
    let plan = policy.faults.as_deref().filter(|p| p.is_active());

    let results: SlotVec<O> = SlotVec::empty(n);
    let sched = Mutex::new(Sched {
        queue: (0..n)
            .map(|task| QueuedAttempt {
                task,
                attempt: 0,
                not_before: Instant::now(),
                speculative: false,
            })
            .collect(),
        tasks: (0..n)
            .map(|_| TaskCtl {
                done: false,
                failed_attempts: 0,
                launched: 0,
                running: 0,
                has_speculative: false,
                current_start: None,
            })
            .collect(),
        completed: 0,
        completed_durations: Vec::new(),
        fatal: None,
        report: ExecSummary::default(),
    });
    let wakeup = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(policy, plan, &tasks, &sched, &wakeup, &results, &f);
            });
        }
    });

    let sched = sched.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(failure) = sched.fatal {
        return Err(failure);
    }
    let out: Vec<O> = results
        .into_values()
        .map(|slot| slot.expect("completed task produced no result"))
        .collect();
    Ok((out, sched.report))
}

/// What a worker decided to do after inspecting the scheduler state.
enum Step {
    Run(QueuedAttempt),
    Wait(Option<Duration>),
    Exit,
}

fn next_step(policy: &ExecPolicy, sched: &mut Sched, n: usize) -> Step {
    if sched.fatal.is_some() {
        // Job is lost: start no new attempts; in-flight attempts finish
        // (the scope join waits for them).
        return Step::Exit;
    }
    if sched.completed == n {
        return Step::Exit;
    }
    let now = Instant::now();
    // Pick the first queue entry that is past its backoff and still needed.
    let mut earliest: Option<Instant> = None;
    let mut pick: Option<usize> = None;
    for (qi, item) in sched.queue.iter().enumerate() {
        if sched.tasks[item.task].done {
            continue; // stale retry of a task another attempt finished
        }
        if item.not_before <= now {
            pick = Some(qi);
            break;
        }
        earliest = Some(earliest.map_or(item.not_before, |e| e.min(item.not_before)));
    }
    if let Some(qi) = pick {
        let item = sched.queue.remove(qi).expect("index in range");
        let ctl = &mut sched.tasks[item.task];
        ctl.launched += 1;
        ctl.running += 1;
        if item.speculative {
            ctl.has_speculative = true;
        } else {
            ctl.current_start = Some(now);
        }
        sched.report.attempts += 1;
        return Step::Run(item);
    }
    // Nothing runnable: consider a speculative backup copy.
    if policy.speculation.enabled {
        if let Some(median) = sched.median_completed_secs() {
            let threshold = (median * policy.speculation.slowdown_threshold)
                .max(policy.speculation.min_runtime.as_secs_f64());
            let candidate = sched
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    !c.done && c.running > 0 && !c.has_speculative && c.failed_attempts == 0
                })
                .filter_map(|(i, c)| {
                    c.current_start
                        .map(|s| (i, now.duration_since(s).as_secs_f64()))
                })
                .filter(|&(_, elapsed)| elapsed >= threshold)
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((task, _)) = candidate {
                let ctl = &mut sched.tasks[task];
                let attempt = ctl.launched;
                ctl.launched += 1;
                ctl.running += 1;
                ctl.has_speculative = true;
                sched.report.attempts += 1;
                sched.report.speculative_launched += 1;
                return Step::Run(QueuedAttempt {
                    task,
                    attempt,
                    not_before: now,
                    speculative: true,
                });
            }
        }
    }
    // Idle: wait for a completion, a retry deadline, a speculation
    // candidate maturing, or shutdown. Every unfinished task is either
    // running (a completion will notify) or queued behind a backoff
    // deadline (`earliest`), so an untimed wait cannot strand the pool —
    // but with speculation on, a straggler only *becomes* a candidate as
    // time passes, so the wait must be bounded by when the nearest
    // candidate would mature.
    let mut deadline: Option<Duration> = earliest.map(|t| {
        t.saturating_duration_since(now)
            .max(Duration::from_micros(100))
    });
    if policy.speculation.enabled {
        if let Some(median) = sched.median_completed_secs() {
            let threshold = (median * policy.speculation.slowdown_threshold)
                .max(policy.speculation.min_runtime.as_secs_f64());
            let matures = sched
                .tasks
                .iter()
                .filter(|c| {
                    !c.done && c.running > 0 && !c.has_speculative && c.failed_attempts == 0
                })
                .filter_map(|c| c.current_start)
                .map(|s| (threshold - now.duration_since(s).as_secs_f64()).max(1e-3))
                .fold(f64::INFINITY, f64::min);
            if matures.is_finite() {
                let d = Duration::from_secs_f64(matures);
                deadline = Some(deadline.map_or(d, |e| e.min(d)));
            }
        }
    }
    Step::Wait(deadline)
}

fn worker_loop<T, O, F>(
    policy: &ExecPolicy,
    plan: Option<&FaultPlan>,
    tasks: &[T],
    sched: &Mutex<Sched>,
    wakeup: &Condvar,
    results: &SlotVec<O>,
    f: &F,
) where
    T: Send + Sync,
    O: Send,
    F: Fn(usize, &T, AttemptCtx) -> O + Sync,
{
    let n = tasks.len();
    loop {
        let item = {
            let guard = sched.lock().unwrap_or_else(|e| e.into_inner());
            let mut guard = guard;
            match next_step(policy, &mut guard, n) {
                Step::Run(item) => item,
                Step::Exit => {
                    drop(guard);
                    wakeup.notify_all();
                    return;
                }
                Step::Wait(timeout) => {
                    match timeout {
                        Some(t) => drop(wakeup.wait_timeout(guard, t)),
                        None => drop(wakeup.wait(guard)),
                    }
                    continue;
                }
            }
        };

        let ctx = AttemptCtx {
            attempt: item.attempt,
            speculative: item.speculative,
        };
        // Regular attempts consult the fault plan; speculative backups are
        // the mitigation mechanism and run clean (this also keeps the
        // injected fault pattern — and thus the retry counters —
        // independent of host timing).
        let decision = if item.speculative {
            None
        } else {
            plan.and_then(|p| p.decide(&policy.job, policy.phase, item.task, item.attempt))
        };

        let outcome: Result<O, TaskError> = match decision {
            Some(Fault::Error) => Err(TaskError::Injected(Fault::Error)),
            Some(Fault::Panic) => {
                // A real unwind, so the capture path is exercised for real.
                let payload = InjectedPanic {
                    job: policy.job.clone(),
                    phase: policy.phase,
                    task: item.task,
                    attempt: item.attempt,
                };
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    std::panic::panic_any(payload);
                }));
                debug_assert!(caught.is_err());
                Err(TaskError::Injected(Fault::Panic))
            }
            other => {
                if matches!(other, Some(Fault::Straggle)) {
                    if let Some(p) = plan {
                        std::thread::sleep(p.straggler_delay);
                    }
                }
                match catch_unwind(AssertUnwindSafe(|| f(item.task, &tasks[item.task], ctx))) {
                    Ok(out) => Ok(out),
                    Err(payload) => {
                        if payload.downcast_ref::<InjectedPanic>().is_some() {
                            Err(TaskError::Injected(Fault::Panic))
                        } else {
                            Err(TaskError::Panicked(panic_message(&payload)))
                        }
                    }
                }
            }
        };

        let mut guard = sched.lock().unwrap_or_else(|e| e.into_inner());
        let start = guard.tasks[item.task].current_start;
        guard.tasks[item.task].running -= 1;
        if let Some(fault) = &decision {
            match fault {
                Fault::Error => guard.report.injected_errors += 1,
                Fault::Panic => guard.report.injected_panics += 1,
                Fault::Straggle => guard.report.injected_stragglers += 1,
            }
        }
        match outcome {
            Ok(out) => {
                if !guard.tasks[item.task].done {
                    guard.tasks[item.task].done = true;
                    guard.completed += 1;
                    if item.speculative {
                        guard.report.speculative_wins += 1;
                    }
                    if let Some(s) = start {
                        let d = s.elapsed().as_secs_f64();
                        guard.completed_durations.push(d);
                    }
                    // Winner writes the slot while holding the scheduler
                    // lock, so the write is exclusive even if a losing
                    // attempt finishes concurrently (it finds done=true
                    // and never touches the slot).
                    // SAFETY: first finisher only, serialized by the lock.
                    unsafe { results.put(item.task, out) };
                }
            }
            Err(error) => {
                let max_attempts = policy.retry.max_attempts.max(1);
                let ctl = &mut guard.tasks[item.task];
                ctl.failed_attempts += 1;
                let failed = ctl.failed_attempts;
                let next_attempt = ctl.launched;
                if !ctl.done {
                    if failed >= max_attempts {
                        guard.fatal.get_or_insert(TaskFailure {
                            job: policy.job.clone(),
                            phase: policy.phase,
                            index: item.task,
                            attempts: failed,
                            error,
                        });
                    } else {
                        let backoff = policy.retry.backoff(failed - 1);
                        guard.queue.push_back(QueuedAttempt {
                            task: item.task,
                            attempt: next_attempt,
                            not_before: Instant::now() + backoff,
                            speculative: false,
                        });
                        guard.report.retries += 1;
                    }
                }
            }
        }
        drop(guard);
        wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_preserve_task_order() {
        let tasks: Vec<u32> = (0..100).collect();
        let out = run_tasks(4, tasks, |i, t| {
            assert_eq!(i as u32, t);
            t * 2
        });
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u32> = run_tasks(4, Vec::<u32>::new(), |_, t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_sequential_path() {
        let out = run_tasks(1, vec![1, 2, 3], |_, t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn workers_clamped_to_task_count() {
        // More workers than tasks must not deadlock or panic.
        let out = run_tasks(64, vec![5], |_, t| t);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn locked_baseline_agrees_with_lock_free() {
        let tasks: Vec<u32> = (0..500).collect();
        let a = run_tasks(8, tasks.clone(), |_, t| t.wrapping_mul(31));
        let b = run_tasks_locked(8, tasks, |_, t| t.wrapping_mul(31));
        assert_eq!(a, b);
    }

    #[test]
    fn panic_is_captured_and_siblings_complete() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(4, (0..32u32).collect(), |i, t| {
                if i == 7 {
                    panic!("boom in task {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                t
            })
        }));
        let err = result.expect_err("panic must propagate");
        let msg = panic_message(&err);
        assert!(msg.contains("task 7 panicked"), "{msg}");
        assert!(msg.contains("boom in task 7"), "{msg}");
        // All other tasks ran to completion despite the panic.
        assert_eq!(completed.load(Ordering::Relaxed), 31);
    }

    fn clean_policy(workers: usize) -> ExecPolicy {
        ExecPolicy::new("test-job", Phase::Map, workers)
    }

    #[test]
    fn ft_matches_plain_output() {
        let tasks: Vec<u32> = (0..64).collect();
        let (out, report) = run_tasks_ft(&clean_policy(4), tasks, |i, t, ctx| {
            assert_eq!(i as u32, *t);
            assert_eq!(ctx.attempt, 0);
            assert!(!ctx.speculative);
            t * 3
        })
        .expect("clean run");
        assert_eq!(out, (0..64).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(report.attempts, 64);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn ft_empty_tasks() {
        let (out, report) =
            run_tasks_ft(&clean_policy(4), Vec::<u32>::new(), |_, t, _| *t).expect("empty run");
        assert!(out.is_empty());
        assert_eq!(report.attempts, 0);
    }

    #[test]
    fn ft_retries_transient_panics_until_success() {
        let failures = AtomicU32::new(0);
        let tasks: Vec<u32> = (0..8).collect();
        let (out, report) = run_tasks_ft(&clean_policy(4), tasks, |i, t, ctx| {
            // Task 3 panics on its first two attempts, then succeeds.
            if i == 3 && ctx.attempt < 2 {
                failures.fetch_add(1, Ordering::Relaxed);
                panic!("transient failure");
            }
            *t + 100
        })
        .expect("recovers within retry budget");
        assert_eq!(out, (0..8).map(|t| t + 100).collect::<Vec<_>>());
        assert_eq!(failures.load(Ordering::Relaxed), 2);
        assert_eq!(report.retries, 2);
        assert_eq!(report.attempts, 8 + 2);
    }

    #[test]
    fn ft_exhausted_retries_fail_the_job() {
        let policy = ExecPolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            ..clean_policy(2)
        };
        let err = run_tasks_ft(&policy, vec![0u32, 1, 2], |i, t, _| {
            if i == 1 {
                panic!("permanent failure");
            }
            *t
        })
        .expect_err("task 1 can never succeed");
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, 3);
        assert!(matches!(err.error, TaskError::Panicked(ref m) if m.contains("permanent")));
        assert!(err
            .to_string()
            .contains("map task 1 failed after 3 attempts"));
    }

    #[test]
    fn ft_injected_faults_are_retried_deterministically() {
        let plan = Arc::new(FaultPlan::chaos(1234, 0.3));
        let policy = ExecPolicy {
            faults: Some(Arc::clone(&plan)),
            ..clean_policy(4)
        };
        let run = || {
            run_tasks_ft(&policy, (0..40u32).collect(), |_, t, _| t * 2)
                .expect("chaos within budget")
        };
        let (out1, r1) = run();
        let (out2, r2) = run();
        assert_eq!(out1, (0..40).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(out1, out2, "results identical under chaos");
        assert_eq!(r1.retries, r2.retries, "fault pattern is seed-pure");
        assert_eq!(r1.injected_errors, r2.injected_errors);
        assert_eq!(r1.injected_panics, r2.injected_panics);
        assert_eq!(r1.injected_stragglers, r2.injected_stragglers);
        assert!(r1.retries > 0, "0.3 failure rate over 40 tasks must retry");
    }

    #[test]
    fn ft_speculation_beats_straggler() {
        let policy = ExecPolicy {
            speculation: SpeculationPolicy::enabled(),
            ..clean_policy(4)
        };
        let ran = AtomicU32::new(0);
        let (out, report) = run_tasks_ft(&policy, (0..12u32).collect(), |i, t, ctx| {
            ran.fetch_add(1, Ordering::Relaxed);
            // Task 0's first attempt straggles hard; its speculative copy
            // (ctx.speculative) returns immediately.
            if i == 0 && !ctx.speculative && ctx.attempt == 0 {
                std::thread::sleep(Duration::from_millis(400));
            }
            *t
        })
        .expect("clean run");
        assert_eq!(out, (0..12).collect::<Vec<_>>());
        assert!(
            report.speculative_launched >= 1,
            "idle workers must speculate: {report:?}"
        );
        assert!(report.speculative_wins >= 1, "{report:?}");
        assert!(ran.load(Ordering::Relaxed) as usize >= 13);
    }

    #[test]
    fn ft_single_worker_never_deadlocks_on_retry() {
        let (out, report) = run_tasks_ft(&clean_policy(1), vec![7u32], |_, t, ctx| {
            if ctx.attempt == 0 {
                panic!("first attempt fails");
            }
            *t
        })
        .expect("second attempt succeeds");
        assert_eq!(out, vec![7]);
        assert_eq!(report.retries, 1);
    }
}
