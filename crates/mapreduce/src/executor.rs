//! Thread-pool task execution.
//!
//! Tasks within a phase (all map tasks, then all reduce tasks) are
//! independent, so they are drained from a shared atomic counter by a
//! scoped worker pool. On a single-core host this degrades gracefully to
//! sequential execution; per-task wall-clock measurements remain valid
//! inputs for the [`ClusterModel`](crate::ClusterModel) because each task
//! runs on one thread from start to finish.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the host's available
/// parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `tasks` closures over a pool of `workers` threads, returning results
/// in task order. `f(i, task)` must be safe to call concurrently for
/// distinct tasks.
pub fn run_tasks<T, O, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, T) -> O + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        // Fast path: no synchronization overhead.
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = tasks[i].lock().unwrap().take().expect("task taken twice");
                let out = f(i, task);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("task produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_task_order() {
        let tasks: Vec<u32> = (0..100).collect();
        let out = run_tasks(4, tasks, |i, t| {
            assert_eq!(i as u32, t);
            t * 2
        });
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u32> = run_tasks(4, Vec::<u32>::new(), |_, t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_sequential_path() {
        let out = run_tasks(1, vec![1, 2, 3], |_, t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn workers_clamped_to_task_count() {
        // More workers than tasks must not deadlock or panic.
        let out = run_tasks(64, vec![5], |_, t| t);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
