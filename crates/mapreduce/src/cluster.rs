//! Simulated cluster scheduling.
//!
//! The paper's Figure 9 varies worker-node count (5/10/15) on EC2. This
//! host has one machine, so we reproduce the experiment the way simulators
//! do: execute the job once to *measure* per-task durations and shuffle
//! volume, then schedule those measured tasks onto a modelled cluster of
//! `nodes × slots_per_node` task slots and charge the shuffle against a
//! network model. The resulting makespan exhibits the phenomena the paper
//! reports — sub-linear speedup (stragglers bound the makespan when reduce
//! input is skewed) and growing cross-node shuffle share (`1 − 1/N` of
//! shuffled bytes crosses the network).

use crate::metrics::{ChainMetrics, JobMetrics, TaskStat};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A cluster configuration for makespan simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent task slots per node (the paper uses 3).
    pub slots_per_node: usize,
    /// Per-node *effective* shuffle bandwidth in bytes/second. For a raw
    /// network model use link speed; for a Hadoop-era model use the
    /// end-to-end spill→sort→fetch→merge throughput, which was far lower.
    pub net_bytes_per_sec: f64,
    /// Per-node sequential-task speed relative to the measuring host
    /// (1.0 = identical hardware). Lets one model slower/faster fleets.
    pub node_speed: f64,
    /// CPU charge per shuffled record, in seconds, spread across the
    /// cluster's slots. 0 for a pure model; Hadoop 0.20's per-record
    /// serialization/object overhead was on the order of microseconds,
    /// which is precisely what makes record duplication expensive on that
    /// platform.
    pub per_record_secs: f64,
}

impl ClusterModel {
    /// The paper's default cluster shape: `nodes` workers × 3 slots,
    /// 1 Gbit/s network, same per-core speed as the measuring host, no
    /// per-record platform overhead (pure model).
    pub fn paper_default(nodes: usize) -> Self {
        ClusterModel {
            nodes,
            slots_per_node: 3,
            net_bytes_per_sec: 125.0e6, // 1 Gbit/s
            node_speed: 1.0,
            per_record_secs: 0.0,
        }
    }

    /// A Hadoop-0.20-era calibration of the same cluster: effective
    /// shuffle throughput ~25 MB/s/node (spill + sort + HTTP fetch +
    /// merge) and ~8 µs of JVM/serialization overhead per shuffled
    /// record. Used to show how the paper's platform amplifies the cost
    /// of record duplication; reported alongside the pure model, never
    /// instead of it.
    pub fn hadoop_2010(nodes: usize) -> Self {
        ClusterModel {
            nodes,
            slots_per_node: 3,
            net_bytes_per_sec: 25.0e6,
            node_speed: 1.0,
            per_record_secs: 8.0e-6,
        }
    }

    /// Panic with a clear message if the model cannot schedule anything.
    /// Every simulation entry point calls this, so a mis-built model fails
    /// fast instead of silently falling back to a 1-slot cluster.
    fn validate(&self) {
        assert!(self.nodes > 0, "ClusterModel: nodes must be >= 1");
        assert!(
            self.slots_per_node > 0,
            "ClusterModel: slots_per_node must be >= 1"
        );
        assert!(
            self.node_speed > 0.0,
            "ClusterModel: node_speed must be positive"
        );
    }

    /// Total task slots.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.slots_per_node
    }

    /// Simulated shuffle transfer time for `bytes` of map output: the
    /// fraction `1 − 1/nodes` crosses the network, and aggregate bandwidth
    /// scales with node count.
    pub fn shuffle_secs(&self, bytes: usize) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let cross = bytes as f64 * (1.0 - 1.0 / self.nodes as f64);
        cross / (self.net_bytes_per_sec * self.nodes as f64)
    }

    /// Greedy list-scheduling makespan of the given task durations (seconds)
    /// on this cluster: each task goes to the earliest-available slot.
    /// This is the classic `1/3`-competitive LPT-style bound Hadoop's
    /// FIFO slot scheduler approximates; we keep submission order (Hadoop
    /// launches tasks in order, not LPT-sorted).
    pub fn makespan_secs(&self, durations: impl IntoIterator<Item = f64>) -> f64 {
        self.validate();
        let slots = self.total_slots();
        let mut heap: BinaryHeap<Reverse<OrderedF64>> =
            (0..slots).map(|_| Reverse(OrderedF64(0.0))).collect();
        let mut makespan = 0.0f64;
        for d in durations {
            let Reverse(OrderedF64(free_at)) = heap.pop().expect("slots > 0");
            let end = free_at + d / self.node_speed;
            makespan = makespan.max(end);
            heap.push(Reverse(OrderedF64(end)));
        }
        makespan
    }

    /// Simulate one job on this cluster from its measured metrics.
    pub fn simulate_job(&self, m: &JobMetrics) -> PhaseTimes {
        self.validate();
        let map = self.makespan_secs(task_secs(&m.map_tasks));
        let record_overhead =
            m.shuffle_records as f64 * self.per_record_secs / self.total_slots() as f64;
        let shuffle = self.shuffle_secs(m.shuffle_bytes) + record_overhead;
        let reduce = self.makespan_secs(task_secs(&m.reduce_tasks));
        PhaseTimes {
            map_secs: map,
            shuffle_secs: shuffle,
            reduce_secs: reduce,
        }
    }

    /// Simulate a chain of jobs (jobs run back-to-back, as Hadoop drivers
    /// submit them sequentially).
    pub fn simulate_chain(&self, chain: &ChainMetrics) -> PhaseTimes {
        chain
            .jobs
            .iter()
            .map(|j| self.simulate_job(j))
            .fold(PhaseTimes::default(), std::ops::Add::add)
    }

    /// List-schedule `durations` (in submission order) and return each
    /// task's `(slot, start, end)` in seconds from `base`. Same greedy
    /// earliest-available-slot policy as [`Self::makespan_secs`] (with
    /// slot-index tie-breaking), so the resulting makespan is identical.
    fn schedule_slots(
        &self,
        base: f64,
        durations: impl IntoIterator<Item = f64>,
    ) -> Vec<(usize, f64, f64)> {
        self.validate();
        let slots = self.total_slots();
        let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> =
            (0..slots).map(|s| Reverse((OrderedF64(base), s))).collect();
        let mut out = Vec::new();
        for d in durations {
            let Reverse((OrderedF64(free_at), slot)) = heap.pop().expect("slots > 0");
            let end = free_at + d / self.node_speed;
            out.push((slot, free_at, end));
            heap.push(Reverse((OrderedF64(end), slot)));
        }
        out
    }

    /// Simulate one job with full slot identity: where every task runs and
    /// when, plus the shuffle interval between the phases. Phase totals
    /// agree exactly with [`Self::simulate_job`]; this variant exists so a
    /// timeline exporter can draw per-slot occupancy.
    ///
    /// `base_secs` offsets the whole schedule (for chaining jobs on one
    /// simulated timeline).
    pub fn simulate_job_schedule(&self, m: &JobMetrics, base_secs: f64) -> SimSchedule {
        self.validate();
        let mut tasks = Vec::with_capacity(m.map_tasks.len() + m.reduce_tasks.len());
        let map_assignments = self.schedule_slots(base_secs, task_secs(&m.map_tasks));
        let mut map_end = base_secs;
        for (t, (slot, start, end)) in m.map_tasks.iter().zip(map_assignments) {
            map_end = map_end.max(end);
            tasks.push(SimTask {
                kind: t.kind,
                index: t.index,
                node: slot / self.slots_per_node,
                slot,
                start_secs: start,
                end_secs: end,
            });
        }

        let record_overhead =
            m.shuffle_records as f64 * self.per_record_secs / self.total_slots() as f64;
        let shuffle_secs = self.shuffle_secs(m.shuffle_bytes) + record_overhead;
        let reduce_base = map_end + shuffle_secs;

        let reduce_assignments = self.schedule_slots(reduce_base, task_secs(&m.reduce_tasks));
        let mut reduce_end = reduce_base;
        for (t, (slot, start, end)) in m.reduce_tasks.iter().zip(reduce_assignments) {
            reduce_end = reduce_end.max(end);
            tasks.push(SimTask {
                kind: t.kind,
                index: t.index,
                node: slot / self.slots_per_node,
                slot,
                start_secs: start,
                end_secs: end,
            });
        }

        SimSchedule {
            job_name: m.name.clone(),
            start_secs: base_secs,
            shuffle_start_secs: map_end,
            shuffle_end_secs: reduce_base,
            end_secs: reduce_end,
            shuffle_bytes: m.shuffle_bytes,
            tasks,
        }
    }

    /// Simulate a chain of jobs on one continuous timeline: each job's
    /// schedule starts where the previous one ended.
    pub fn simulate_chain_schedule(&self, chain: &ChainMetrics) -> Vec<SimSchedule> {
        let mut out = Vec::with_capacity(chain.jobs.len());
        let mut t0 = 0.0f64;
        for job in &chain.jobs {
            let s = self.simulate_job_schedule(job, t0);
            t0 = s.end_secs;
            out.push(s);
        }
        out
    }

    /// Simulate a plan DAG with **partition-granular pipelining** (the
    /// model of [`PlanRunner`](crate::plan::PlanRunner)'s pipelined mode,
    /// and of Hadoop slow-start): `deps[j]` lists the upstream jobs
    /// feeding job `j` via shuffle edges (empty = external input; the
    /// list is a multiset — a job consuming the same upstream twice
    /// appears twice). Map split *i* of job `j` is *released* the moment
    /// reduce task *i* of its **last-finishing** upstream finishes — not
    /// when the whole upstream job ends — so downstream map work overlaps
    /// the upstream reduce tails whenever slots are free. (If any
    /// upstream's reduce count disagrees with the job's map-split count,
    /// the job falls back to a whole-stage barrier at the latest upstream
    /// end; the fallback bumps the `sim.plan.barrier_fallbacks` counter
    /// on the global metrics registry and logs a
    /// [`warn!`](ssj_observe::warn).) Reduce tasks of job `j` are
    /// released when its last map finishes plus the job's shuffle
    /// transfer time.
    ///
    /// Released tasks are placed FIFO by release time onto the same
    /// `nodes × slots` pool as [`Self::makespan_secs`]. A single-job plan
    /// reproduces [`Self::simulate_job_schedule`] exactly; a linear chain
    /// is the pipelined counterpart of [`Self::simulate_chain_schedule`]
    /// (whose makespan it can never exceed, since every release time is
    /// no later). Returns one [`SimSchedule`] per job; the plan makespan
    /// is the maximum `end_secs`.
    ///
    /// # Panics
    /// Panics if `deps.len() != chain.jobs.len()` or a dependency index is
    /// not an earlier job.
    pub fn simulate_plan(&self, chain: &ChainMetrics, deps: &[Vec<usize>]) -> Vec<SimSchedule> {
        self.validate();
        assert_eq!(deps.len(), chain.jobs.len(), "one dependency entry per job");
        let n = chain.jobs.len();
        for (j, d) in deps.iter().enumerate() {
            for u in d {
                assert!(*u < j, "job {j} must depend on an earlier job, got {u}");
            }
        }
        // One downstream entry per *edge*: a job consuming upstream `u`
        // through two edges must see two per-split decrements.
        let mut downstream: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, d) in deps.iter().enumerate() {
            for u in d {
                downstream[*u].push(j);
            }
        }
        // A co-group job has no map phase: its *tasks* consume upstream
        // reduce partition `i` directly, so the release unit is the task
        // itself and no shuffle transfer is modeled.
        let splits = |j: usize| {
            if chain.jobs[j].cogroup {
                chain.jobs[j].reduce_tasks.len()
            } else {
                chain.jobs[j].map_tasks.len()
            }
        };
        // Shape check up front: partition-granular release needs every
        // upstream's reduce-partition count to equal the job's map-split
        // count (co-group: its task count). Any mismatch demotes the job
        // to a whole-stage barrier.
        let barrier: Vec<bool> = (0..n)
            .map(|j| {
                let mismatch = deps[j]
                    .iter()
                    .any(|&u| chain.jobs[u].reduce_tasks.len() != splits(j));
                if mismatch {
                    if let Some(reg) = ssj_observe::global_registry() {
                        reg.counter_add("sim.plan.barrier_fallbacks", 1);
                    }
                    ssj_observe::warn!(
                        "simulate_plan: job {} ({:?}) falls back to a whole-stage barrier: \
                         upstream reduce counts {:?} != {} map splits",
                        j,
                        chain.jobs[j].name,
                        deps[j]
                            .iter()
                            .map(|&u| chain.jobs[u].reduce_tasks.len())
                            .collect::<Vec<_>>(),
                        splits(j)
                    );
                }
                mismatch
            })
            .collect();
        // Pipelined jobs: per-split countdown of unfinished upstream
        // reduce partitions plus the latest matching reduce end time.
        // Barrier jobs: per-edge countdown of unfinished upstream jobs
        // plus the latest upstream end time.
        let mut pending: Vec<Vec<usize>> = (0..n).map(|j| vec![deps[j].len(); splits(j)]).collect();
        let mut split_rel: Vec<Vec<f64>> = (0..n).map(|j| vec![0.0; splits(j)]).collect();
        let mut ups_left: Vec<usize> = (0..n).map(|j| deps[j].len()).collect();
        let mut barrier_rel: Vec<f64> = vec![0.0; n];

        /// Per-job progress while the event loop runs.
        struct JobState {
            maps_left: usize,
            reds_left: usize,
            map_end: f64,
            shuffle_start: f64,
            shuffle_end: f64,
            start: f64,
            end: f64,
            tasks: Vec<SimTask>,
        }
        let mut js: Vec<JobState> = chain
            .jobs
            .iter()
            .map(|m| JobState {
                maps_left: m.map_tasks.len(),
                reds_left: m.reduce_tasks.len(),
                map_end: 0.0,
                shuffle_start: 0.0,
                shuffle_end: 0.0,
                start: f64::INFINITY,
                end: 0.0,
                tasks: Vec::with_capacity(m.map_tasks.len() + m.reduce_tasks.len()),
            })
            .collect();

        // Ready heap: FIFO by (release, arrival ordinal). Kind 0 = map,
        // 1 = reduce, 2 = co-group (a reduce-side task released directly
        // by upstream reduce completions, with no shuffle in front).
        // Durations ride along so pops are self-contained.
        type Item = Reverse<(OrderedF64, u64, usize, u8, usize, OrderedF64)>;
        let mut ready: BinaryHeap<Item> = BinaryHeap::new();
        let mut ord = 0u64;
        let mut push = |heap: &mut BinaryHeap<Item>,
                        release: f64,
                        job: usize,
                        kind: u8,
                        idx: usize,
                        dur: f64| {
            heap.push(Reverse((
                OrderedF64(release),
                ord,
                job,
                kind,
                idx,
                OrderedF64(dur),
            )));
            ord += 1;
        };
        for (j, m) in chain.jobs.iter().enumerate() {
            if deps[j].is_empty() {
                for t in &m.map_tasks {
                    push(&mut ready, 0.0, j, 0, t.index, t.duration.as_secs_f64());
                }
            }
        }

        let mut slots: BinaryHeap<Reverse<(OrderedF64, usize)>> = (0..self.total_slots())
            .map(|s| Reverse((OrderedF64(0.0), s)))
            .collect();

        while let Some(Reverse((OrderedF64(release), _, j, kind, idx, OrderedF64(dur)))) =
            ready.pop()
        {
            let Reverse((OrderedF64(free_at), slot)) = slots.pop().expect("slots > 0");
            let start = release.max(free_at);
            let end = start + dur / self.node_speed;
            slots.push(Reverse((OrderedF64(end), slot)));
            let kind_enum = match kind {
                0 => crate::metrics::TaskKind::Map,
                1 => crate::metrics::TaskKind::Reduce,
                _ => crate::metrics::TaskKind::CoGroup,
            };
            js[j].tasks.push(SimTask {
                kind: kind_enum,
                index: idx,
                node: slot / self.slots_per_node,
                slot,
                start_secs: start,
                end_secs: end,
            });
            js[j].start = js[j].start.min(start);
            if kind == 0 {
                js[j].map_end = js[j].map_end.max(end);
                js[j].maps_left -= 1;
                if js[j].maps_left == 0 {
                    let m = &chain.jobs[j];
                    let record_overhead =
                        m.shuffle_records as f64 * self.per_record_secs / self.total_slots() as f64;
                    let shuffle = self.shuffle_secs(m.shuffle_bytes) + record_overhead;
                    js[j].shuffle_start = js[j].map_end;
                    js[j].shuffle_end = js[j].map_end + shuffle;
                    let base = js[j].shuffle_end;
                    for t in &m.reduce_tasks {
                        push(&mut ready, base, j, 1, t.index, t.duration.as_secs_f64());
                    }
                }
            } else {
                js[j].end = js[j].end.max(end);
                js[j].reds_left -= 1;
                for &k in &downstream[j] {
                    if !barrier[k] {
                        // Partition-granular release: split `idx` of job k
                        // consumes exactly reduce partition `idx` of every
                        // upstream; it runs once the last one lands. For a
                        // co-group job the released unit IS its task —
                        // there is no map in front of it and no shuffle.
                        pending[k][idx] -= 1;
                        split_rel[k][idx] = split_rel[k][idx].max(end);
                        if pending[k][idx] == 0 {
                            let (t, kind) = if chain.jobs[k].cogroup {
                                (&chain.jobs[k].reduce_tasks[idx], 2)
                            } else {
                                (&chain.jobs[k].map_tasks[idx], 0)
                            };
                            push(
                                &mut ready,
                                split_rel[k][idx],
                                k,
                                kind,
                                t.index,
                                t.duration.as_secs_f64(),
                            );
                        }
                    }
                }
                if js[j].reds_left == 0 {
                    // Job j is complete: unblock barrier-mode consumers.
                    for &k in &downstream[j] {
                        if barrier[k] {
                            ups_left[k] -= 1;
                            barrier_rel[k] = barrier_rel[k].max(js[j].end);
                            if ups_left[k] == 0 {
                                let (tasks, kind): (&[crate::metrics::TaskStat], u8) =
                                    if chain.jobs[k].cogroup {
                                        (&chain.jobs[k].reduce_tasks, 2)
                                    } else {
                                        (&chain.jobs[k].map_tasks, 0)
                                    };
                                for t in tasks {
                                    push(
                                        &mut ready,
                                        barrier_rel[k],
                                        k,
                                        kind,
                                        t.index,
                                        t.duration.as_secs_f64(),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        js.into_iter()
            .zip(&chain.jobs)
            .map(|(mut s, m)| {
                s.tasks.sort_by_key(|t| {
                    (
                        matches!(
                            t.kind,
                            crate::metrics::TaskKind::Reduce | crate::metrics::TaskKind::CoGroup
                        ),
                        t.index,
                    )
                });
                SimSchedule {
                    job_name: m.name.clone(),
                    start_secs: if s.start.is_finite() { s.start } else { 0.0 },
                    shuffle_start_secs: s.shuffle_start,
                    shuffle_end_secs: s.shuffle_end,
                    end_secs: s.end,
                    shuffle_bytes: m.shuffle_bytes,
                    tasks: s.tasks,
                }
            })
            .collect()
    }
}

/// One task placed on the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Map or reduce.
    pub kind: crate::metrics::TaskKind,
    /// Task index within its phase.
    pub index: usize,
    /// Node the slot belongs to.
    pub node: usize,
    /// Global slot index (`node * slots_per_node + local_slot`).
    pub slot: usize,
    /// Simulated start time (seconds on the chain timeline).
    pub start_secs: f64,
    /// Simulated end time.
    pub end_secs: f64,
}

/// A job's simulated schedule with slot identity (input to the timeline
/// exporter).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSchedule {
    /// Job name.
    pub job_name: String,
    /// When the job was submitted on the chain timeline.
    pub start_secs: f64,
    /// Shuffle interval start (= end of the map phase).
    pub shuffle_start_secs: f64,
    /// Shuffle interval end (= start of the reduce phase).
    pub shuffle_end_secs: f64,
    /// When the last reduce task finished.
    pub end_secs: f64,
    /// Bytes charged to the shuffle interval.
    pub shuffle_bytes: usize,
    /// Every placed task, maps first then reduces.
    pub tasks: Vec<SimTask>,
}

impl SimSchedule {
    /// Phase totals, equal to [`ClusterModel::simulate_job`]'s output for
    /// the same metrics (up to float rounding from the base offset).
    pub fn phases(&self) -> PhaseTimes {
        PhaseTimes {
            map_secs: self.shuffle_start_secs - self.start_secs,
            shuffle_secs: self.shuffle_end_secs - self.shuffle_start_secs,
            reduce_secs: self.end_secs - self.shuffle_end_secs,
        }
    }

    /// Total simulated job time.
    pub fn makespan_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// Wall-clock of a whole simulated plan or chain: earliest task start to
/// latest task end across every schedule (0.0 when empty). The quantity a
/// critical path extracted from the exported timeline must account for.
pub fn schedules_makespan_secs(schedules: &[SimSchedule]) -> f64 {
    let tasks = schedules.iter().flat_map(|s| s.tasks.iter());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for t in tasks {
        lo = lo.min(t.start_secs);
        hi = hi.max(t.end_secs);
    }
    if lo.is_finite() && hi.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

fn task_secs(tasks: &[TaskStat]) -> impl Iterator<Item = f64> + '_ {
    tasks.iter().map(|t| t.duration.as_secs_f64())
}

/// Simulated per-phase times for a job or job chain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Map-phase makespan.
    pub map_secs: f64,
    /// Shuffle transfer time.
    pub shuffle_secs: f64,
    /// Reduce-phase makespan.
    pub reduce_secs: f64,
}

impl PhaseTimes {
    /// Total simulated time.
    pub fn total_secs(&self) -> f64 {
        self.map_secs + self.shuffle_secs + self.reduce_secs
    }
}

/// Component-wise sum (sequential job chaining).
impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;

    fn add(self, other: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            map_secs: self.map_secs + other.map_secs,
            shuffle_secs: self.shuffle_secs + other.shuffle_secs,
            reduce_secs: self.reduce_secs + other.reduce_secs,
        }
    }
}

/// Total-order wrapper for non-NaN f64 (scheduling heap key).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("non-NaN durations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskKind;
    use std::time::Duration;

    #[test]
    fn makespan_perfectly_parallel() {
        let c = ClusterModel::paper_default(2); // 6 slots
        let ms = c.makespan_secs(vec![1.0; 6]);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_queues_excess_tasks() {
        let c = ClusterModel::paper_default(1); // 3 slots
        let ms = c.makespan_secs(vec![1.0; 4]);
        assert!((ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_straggler_bounds() {
        let c = ClusterModel::paper_default(5);
        let mut tasks = vec![0.01; 100];
        tasks.push(10.0);
        assert!(c.makespan_secs(tasks) >= 10.0);
    }

    #[test]
    fn more_nodes_never_slower() {
        let tasks: Vec<f64> = (0..100).map(|i| 0.1 + (i % 7) as f64 * 0.05).collect();
        let m5 = ClusterModel::paper_default(5).makespan_secs(tasks.clone());
        let m10 = ClusterModel::paper_default(10).makespan_secs(tasks.clone());
        let m15 = ClusterModel::paper_default(15).makespan_secs(tasks);
        assert!(m10 <= m5 + 1e-9);
        assert!(m15 <= m10 + 1e-9);
    }

    #[test]
    fn shuffle_single_node_is_free() {
        assert_eq!(ClusterModel::paper_default(1).shuffle_secs(1 << 30), 0.0);
    }

    #[test]
    fn shuffle_scales_with_nodes() {
        let bytes = 1 << 30;
        let s2 = ClusterModel::paper_default(2).shuffle_secs(bytes);
        let s10 = ClusterModel::paper_default(10).shuffle_secs(bytes);
        // At 10 nodes a larger fraction crosses the network but aggregate
        // bandwidth is 5x; net effect must be faster.
        assert!(s10 < s2);
    }

    #[test]
    fn node_speed_scales_task_time() {
        let slow = ClusterModel {
            node_speed: 0.5,
            ..ClusterModel::paper_default(1)
        };
        assert!((slow.makespan_secs(vec![1.0]) - 2.0).abs() < 1e-9);
    }

    fn one_task(kind: TaskKind, ms: u64, bytes: usize) -> TaskStat {
        TaskStat {
            kind,
            index: 0,
            duration: Duration::from_millis(ms),
            queue: Duration::ZERO,
            input_records: 1,
            input_bytes: bytes,
            input_keys: 0,
            output_records: 1,
            output_bytes: bytes,
        }
    }

    #[test]
    fn hadoop_calibration_charges_per_record() {
        let m = JobMetrics {
            name: "t".into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: vec![one_task(TaskKind::Map, 0, 0)],
            reduce_tasks: vec![one_task(TaskKind::Reduce, 0, 0)],
            shuffle_records: 3_000_000,
            shuffle_bytes: 0,
            pre_combine_records: 3_000_000,
            pre_combine_bytes: 0,
            elapsed: Duration::ZERO,
            map_elapsed: Duration::ZERO,
            shuffle_elapsed: Duration::ZERO,
            reduce_elapsed: Duration::ZERO,
            exec: Default::default(),
        };
        let pure = ClusterModel::paper_default(10).simulate_job(&m);
        let hadoop = ClusterModel::hadoop_2010(10).simulate_job(&m);
        assert_eq!(pure.shuffle_secs, 0.0);
        // 3M records x 8us / 30 slots = 0.8s
        assert!((hadoop.shuffle_secs - 0.8).abs() < 1e-9, "{hadoop:?}");
    }

    #[test]
    fn simulate_job_sums_phases() {
        let m = JobMetrics {
            name: "t".into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: vec![one_task(TaskKind::Map, 100, 10)],
            reduce_tasks: vec![one_task(TaskKind::Reduce, 200, 10)],
            shuffle_records: 1,
            shuffle_bytes: 250_000_000,
            pre_combine_records: 1,
            pre_combine_bytes: 10,
            elapsed: Duration::from_millis(300),
            map_elapsed: Duration::from_millis(100),
            shuffle_elapsed: Duration::ZERO,
            reduce_elapsed: Duration::from_millis(200),
            exec: Default::default(),
        };
        let c = ClusterModel::paper_default(2);
        let p = c.simulate_job(&m);
        assert!((p.map_secs - 0.1).abs() < 1e-9);
        assert!((p.reduce_secs - 0.2).abs() < 1e-9);
        // 250 MB, half crosses, 2 * 125 MB/s aggregate -> 0.5s
        assert!((p.shuffle_secs - 0.5).abs() < 1e-9);
        assert!((p.total_secs() - 0.8).abs() < 1e-9);
    }

    fn many_task_metrics() -> JobMetrics {
        JobMetrics {
            name: "sched".into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: (0..8)
                .map(|i| {
                    let mut t = one_task(TaskKind::Map, 100 + 30 * (i as u64 % 3), 10);
                    t.index = i;
                    t
                })
                .collect(),
            reduce_tasks: (0..5)
                .map(|i| {
                    let mut t = one_task(TaskKind::Reduce, 200, 10);
                    t.index = i;
                    t
                })
                .collect(),
            shuffle_records: 1000,
            shuffle_bytes: 250_000_000,
            pre_combine_records: 1000,
            pre_combine_bytes: 10,
            elapsed: Duration::from_secs(1),
            map_elapsed: Duration::from_millis(400),
            shuffle_elapsed: Duration::from_millis(100),
            reduce_elapsed: Duration::from_millis(500),
            exec: Default::default(),
        }
    }

    #[test]
    fn schedule_agrees_with_simulate_job() {
        let m = many_task_metrics();
        let c = ClusterModel::paper_default(2);
        let p = c.simulate_job(&m);
        let s = c.simulate_job_schedule(&m, 0.0);
        let q = s.phases();
        assert!((p.map_secs - q.map_secs).abs() < 1e-12, "{p:?} vs {q:?}");
        assert!(
            (p.shuffle_secs - q.shuffle_secs).abs() < 1e-12,
            "{p:?} vs {q:?}"
        );
        assert!(
            (p.reduce_secs - q.reduce_secs).abs() < 1e-12,
            "{p:?} vs {q:?}"
        );
        assert_eq!(s.tasks.len(), 13);
    }

    #[test]
    fn schedule_respects_slots_and_phases() {
        let m = many_task_metrics();
        let c = ClusterModel::paper_default(1); // 3 slots: tasks must queue
        let s = c.simulate_job_schedule(&m, 0.0);
        for t in &s.tasks {
            assert!(t.slot < c.total_slots());
            assert_eq!(t.node, t.slot / c.slots_per_node);
            assert!(t.end_secs >= t.start_secs);
            match t.kind {
                TaskKind::Map => assert!(t.end_secs <= s.shuffle_start_secs + 1e-12),
                TaskKind::Reduce => assert!(t.start_secs >= s.shuffle_end_secs - 1e-12),
                // Co-group jobs have no shuffle window to bound against.
                TaskKind::CoGroup => {}
            }
        }
        // No two tasks overlap on the same slot.
        for a in &s.tasks {
            for b in &s.tasks {
                if (a.index, a.kind) != (b.index, b.kind) && a.slot == b.slot {
                    assert!(
                        a.end_secs <= b.start_secs + 1e-12 || b.end_secs <= a.start_secs + 1e-12,
                        "slot {} double-booked: {a:?} vs {b:?}",
                        a.slot
                    );
                }
            }
        }
    }

    #[test]
    fn zero_duration_tasks_have_zero_makespan() {
        let c = ClusterModel::paper_default(3);
        assert_eq!(c.makespan_secs(vec![0.0; 50]), 0.0);
        // Mixed with real work, zero-duration tasks add nothing.
        let with_work = c.makespan_secs(vec![0.0, 1.0, 0.0, 0.0]);
        assert!((with_work - 1.0).abs() < 1e-9);
        // And the schedule variant places them without NaN/negative spans.
        let mut m = many_task_metrics();
        for t in &mut m.map_tasks {
            t.duration = Duration::ZERO;
        }
        let s = c.simulate_job_schedule(&m, 0.0);
        for t in &s.tasks {
            assert!(t.end_secs >= t.start_secs);
            assert!(t.start_secs.is_finite() && t.end_secs.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "slots_per_node must be >= 1")]
    fn zero_slots_per_node_is_rejected() {
        let c = ClusterModel {
            slots_per_node: 0,
            ..ClusterModel::paper_default(5)
        };
        c.makespan_secs(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "nodes must be >= 1")]
    fn zero_nodes_is_rejected() {
        let c = ClusterModel {
            nodes: 0,
            ..ClusterModel::paper_default(5)
        };
        c.simulate_job(&many_task_metrics());
    }

    #[test]
    fn far_more_tasks_than_slot_capacity() {
        // 1 node x 3 slots, 3000 unit tasks: the queue must drain in
        // ceil(3000/3) = 1000 rounds with no slot ever double-booked.
        let c = ClusterModel::paper_default(1);
        let ms = c.makespan_secs(vec![1.0; 3000]);
        assert!((ms - 1000.0).abs() < 1e-6, "{ms}");
        let mut m = many_task_metrics();
        m.map_tasks = (0..200)
            .map(|i| {
                let mut t = one_task(TaskKind::Map, 10, 1);
                t.index = i;
                t
            })
            .collect();
        let s = c.simulate_job_schedule(&m, 0.0);
        for a in &s.tasks {
            for b in &s.tasks {
                if (a.index, a.kind) != (b.index, b.kind) && a.slot == b.slot {
                    assert!(
                        a.end_secs <= b.start_secs + 1e-9 || b.end_secs <= a.start_secs + 1e-9,
                        "slot {} double-booked",
                        a.slot
                    );
                }
            }
        }
    }

    #[test]
    fn simulated_job_monotone_in_nodes() {
        // Full-job makespan (map + shuffle + reduce) must never increase
        // with node count under the paper model, for nodes >= 2. (A single
        // node is excluded: it pays no network cost at all, so going from
        // 1 to 2 nodes can legitimately be slower when shuffle dominates.)
        let m = many_task_metrics();
        let mut prev = f64::INFINITY;
        for nodes in [2, 3, 5, 10, 15] {
            let t = ClusterModel::paper_default(nodes)
                .simulate_job(&m)
                .total_secs();
            assert!(t <= prev + 1e-9, "{nodes} nodes: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn chain_schedule_is_sequential() {
        let mut chain = ChainMetrics::default();
        chain.push(many_task_metrics());
        chain.push(many_task_metrics());
        let c = ClusterModel::paper_default(2);
        let scheds = c.simulate_chain_schedule(&chain);
        assert_eq!(scheds.len(), 2);
        assert_eq!(scheds[0].start_secs, 0.0);
        assert_eq!(scheds[1].start_secs, scheds[0].end_secs);
        let total: f64 = scheds.iter().map(|s| s.makespan_secs()).sum();
        let phases = c.simulate_chain(&chain);
        assert!((total - phases.total_secs()).abs() < 1e-9);
    }

    fn plan_job(name: &str, maps_ms: &[u64], reds_ms: &[u64]) -> JobMetrics {
        let task = |kind, i: usize, ms: u64| {
            let mut t = one_task(kind, ms, 10);
            t.index = i;
            t
        };
        JobMetrics {
            name: name.into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: maps_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| task(TaskKind::Map, i, ms))
                .collect(),
            reduce_tasks: reds_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| task(TaskKind::Reduce, i, ms))
                .collect(),
            shuffle_records: 0,
            shuffle_bytes: 0,
            pre_combine_records: 0,
            pre_combine_bytes: 0,
            elapsed: Duration::ZERO,
            map_elapsed: Duration::ZERO,
            shuffle_elapsed: Duration::ZERO,
            reduce_elapsed: Duration::ZERO,
            exec: Default::default(),
        }
    }

    fn plan_makespan(scheds: &[SimSchedule]) -> f64 {
        scheds.iter().map(|s| s.end_secs).fold(0.0, f64::max)
    }

    #[test]
    fn plan_single_job_matches_job_schedule() {
        let m = many_task_metrics();
        let mut chain = ChainMetrics::default();
        chain.push(m.clone());
        let c = ClusterModel::paper_default(2);
        let plan = c.simulate_plan(&chain, &[vec![]]);
        let solo = c.simulate_job_schedule(&m, 0.0);
        assert_eq!(plan.len(), 1);
        assert!((plan[0].end_secs - solo.end_secs).abs() < 1e-12);
        assert!((plan[0].shuffle_start_secs - solo.shuffle_start_secs).abs() < 1e-12);
        assert!((plan[0].shuffle_end_secs - solo.shuffle_end_secs).abs() < 1e-12);
        assert_eq!(plan[0].tasks.len(), solo.tasks.len());
        for (a, b) in plan[0].tasks.iter().zip(&solo.tasks) {
            assert_eq!((a.kind, a.index), (b.kind, b.index));
            assert!(
                (a.start_secs - b.start_secs).abs() < 1e-12,
                "{a:?} vs {b:?}"
            );
            assert!((a.end_secs - b.end_secs).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn plan_pipelines_across_job_boundary() {
        // 1 node x 2 slots, no shuffle cost. Upstream: a zero-cost map,
        // then four reduce partitions with one straggler (1s,1s,1s,4s).
        // Downstream: one 2s map per upstream partition, one 1s reduce.
        //
        // Serialized: upstream reduces pack as [0-1, 0-1, 1-2, 1-5];
        // downstream maps start at 5 in pairs -> 9; reduce -> 10.
        //
        // Pipelined: splits 0/1 release at 1, split 2 at 2, split 3 at 5.
        // They interleave with the straggling reduce on the free slot:
        // maps run 2-4, 4-6, 5-7, 6-8; reduce 8-9. Makespan 9 < 10.
        let c = ClusterModel {
            nodes: 1,
            slots_per_node: 2,
            net_bytes_per_sec: 125_000_000.0,
            node_speed: 1.0,
            per_record_secs: 0.0,
        };
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("up", &[0], &[1000, 1000, 1000, 4000]));
        chain.push(plan_job("down", &[2000, 2000, 2000, 2000], &[1000]));
        let deps = [vec![], vec![0]];
        let piped = plan_makespan(&c.simulate_plan(&chain, &deps));
        let serial = c.simulate_chain_schedule(&chain).last().unwrap().end_secs;
        assert!((serial - 10.0).abs() < 1e-9, "serialized {serial}");
        assert!((piped - 9.0).abs() < 1e-9, "pipelined {piped}");
    }

    #[test]
    fn plan_never_slower_than_serialized_chain() {
        let mut chain = ChainMetrics::default();
        chain.push(many_task_metrics());
        chain.push(many_task_metrics());
        chain.push(many_task_metrics());
        let deps = [vec![], vec![0], vec![1]];
        for nodes in [1, 2, 5] {
            let c = ClusterModel::paper_default(nodes);
            let piped = plan_makespan(&c.simulate_plan(&chain, &deps));
            let serial = c.simulate_chain_schedule(&chain).last().unwrap().end_secs;
            assert!(piped <= serial + 1e-9, "{nodes} nodes: {piped} > {serial}");
        }
    }

    #[test]
    fn plan_shape_mismatch_barriers_like_chain() {
        // Downstream map count != upstream reduce count: the whole
        // upstream stage must finish first, so the plan degenerates to
        // the serialized chain.
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("up", &[500], &[1000, 2000]));
        chain.push(plan_job("down", &[700, 700, 700], &[900]));
        let c = ClusterModel::paper_default(1);
        let piped = plan_makespan(&c.simulate_plan(&chain, &[vec![], vec![0]]));
        let serial = c.simulate_chain_schedule(&chain).last().unwrap().end_secs;
        assert!((piped - serial).abs() < 1e-9, "{piped} vs {serial}");
    }

    #[test]
    fn plan_fan_in_releases_on_last_upstream() {
        // Two upstreams feed one join. Eight slots so nothing is ever
        // slot-bound: every start time is a pure release time. Upstream
        // reduces end at (1s, 3s) and (2s, 1s), so the release rule —
        // split i waits for reduce i of BOTH upstreams — pins join map 0
        // to 2s (s is later) and join map 1 to 3s (r is later).
        let c = ClusterModel {
            nodes: 4,
            slots_per_node: 2,
            net_bytes_per_sec: 125_000_000.0,
            node_speed: 1.0,
            per_record_secs: 0.0,
        };
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("r", &[0], &[1000, 3000]));
        chain.push(plan_job("s", &[0], &[2000, 1000]));
        chain.push(plan_job("join", &[500, 500], &[400]));
        let scheds = c.simulate_plan(&chain, &[vec![], vec![], vec![0, 1]]);
        let join = &scheds[2];
        let map_start = |i: usize| {
            join.tasks
                .iter()
                .find(|t| matches!(t.kind, TaskKind::Map) && t.index == i)
                .unwrap()
                .start_secs
        };
        assert!((map_start(0) - 2.0).abs() < 1e-9, "{}", map_start(0));
        assert!((map_start(1) - 3.0).abs() < 1e-9, "{}", map_start(1));
        // Join reduce follows its last map; plan makespan = 3.9s.
        assert!((plan_makespan(&scheds) - 3.9).abs() < 1e-9);
    }

    fn cogroup_job(name: &str, reds_ms: &[u64]) -> JobMetrics {
        let mut m = plan_job(name, &[], reds_ms);
        m.cogroup = true;
        for t in &mut m.reduce_tasks {
            t.kind = TaskKind::CoGroup;
        }
        m
    }

    #[test]
    fn plan_cogroup_releases_per_partition_with_no_shuffle() {
        // Two upstreams feed a co-group stage. Eight slots so every start
        // time is a pure release time. Upstream reduces end at (1s, 3s)
        // and (2s, 1s): co-group task i consumes reduce partition i of
        // BOTH upstreams directly, so task 0 starts at 2s and task 1 at
        // 3s — no map phase in front and no shuffle window in between.
        let c = ClusterModel {
            nodes: 4,
            slots_per_node: 2,
            net_bytes_per_sec: 125_000_000.0,
            node_speed: 1.0,
            per_record_secs: 0.0,
        };
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("r", &[0], &[1000, 3000]));
        chain.push(plan_job("s", &[0], &[2000, 1000]));
        chain.push(cogroup_job("join", &[500, 400]));
        let scheds = c.simulate_plan(&chain, &[vec![], vec![], vec![0, 1]]);
        let join = &scheds[2];
        assert!(join
            .tasks
            .iter()
            .all(|t| matches!(t.kind, TaskKind::CoGroup)));
        let start = |i: usize| join.tasks.iter().find(|t| t.index == i).unwrap().start_secs;
        assert!((start(0) - 2.0).abs() < 1e-9, "{}", start(0));
        assert!((start(1) - 3.0).abs() < 1e-9, "{}", start(1));
        // No shuffle is modeled for a co-group job.
        assert_eq!(join.shuffle_start_secs, 0.0);
        assert_eq!(join.shuffle_end_secs, 0.0);
        // vs the rekey fan-in shape of `plan_fan_in_releases_on_last_
        // upstream`: the same partitions finish at release + task time
        // with no interposed map, so makespan = 3 + 0.4 = 3.4s.
        assert!((plan_makespan(&scheds) - 3.4).abs() < 1e-9);
    }

    #[test]
    fn plan_cogroup_shape_mismatch_barriers() {
        // Co-group task count != upstream reduce count: falls back to a
        // whole-stage barrier, so the stage starts after the slowest
        // upstream reduce (3s) and both tasks release together.
        let c = ClusterModel {
            nodes: 4,
            slots_per_node: 2,
            net_bytes_per_sec: 125_000_000.0,
            node_speed: 1.0,
            per_record_secs: 0.0,
        };
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("up", &[0], &[1000, 3000, 1000]));
        chain.push(cogroup_job("co", &[500, 400]));
        let scheds = c.simulate_plan(&chain, &[vec![], vec![0]]);
        let co = &scheds[1];
        for t in &co.tasks {
            assert!(
                (t.start_secs - 3.0).abs() < 1e-9,
                "barrier release expected at 3s, got {t:?}"
            );
        }
    }

    #[test]
    fn plan_barrier_fallback_is_counted() {
        let mut chain = ChainMetrics::default();
        chain.push(plan_job("up", &[500], &[1000, 2000]));
        chain.push(plan_job("down", &[700, 700, 700], &[900]));
        let reg = ssj_observe::install_registry();
        ClusterModel::paper_default(1).simulate_plan(&chain, &[vec![], vec![0]]);
        ssj_observe::uninstall_registry();
        // >= rather than == : other tests of this binary may trip the
        // fallback concurrently while the registry is installed.
        assert!(reg.counter_get("sim.plan.barrier_fallbacks") >= 1);
    }

    #[test]
    fn plan_simulation_is_deterministic() {
        let mut chain = ChainMetrics::default();
        chain.push(many_task_metrics());
        chain.push(many_task_metrics());
        let c = ClusterModel::paper_default(3);
        let a = c.simulate_plan(&chain, &[vec![], vec![0]]);
        let b = c.simulate_plan(&chain, &[vec![], vec![0]]);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    #[should_panic(expected = "one dependency entry per job")]
    fn plan_deps_length_mismatch_is_rejected() {
        let mut chain = ChainMetrics::default();
        chain.push(many_task_metrics());
        ClusterModel::paper_default(1).simulate_plan(&chain, &[vec![], vec![0]]);
    }
}
