//! Simulated cluster scheduling.
//!
//! The paper's Figure 9 varies worker-node count (5/10/15) on EC2. This
//! host has one machine, so we reproduce the experiment the way simulators
//! do: execute the job once to *measure* per-task durations and shuffle
//! volume, then schedule those measured tasks onto a modelled cluster of
//! `nodes × slots_per_node` task slots and charge the shuffle against a
//! network model. The resulting makespan exhibits the phenomena the paper
//! reports — sub-linear speedup (stragglers bound the makespan when reduce
//! input is skewed) and growing cross-node shuffle share (`1 − 1/N` of
//! shuffled bytes crosses the network).

use crate::metrics::{ChainMetrics, JobMetrics, TaskStat};
use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// A cluster configuration for makespan simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent task slots per node (the paper uses 3).
    pub slots_per_node: usize,
    /// Per-node *effective* shuffle bandwidth in bytes/second. For a raw
    /// network model use link speed; for a Hadoop-era model use the
    /// end-to-end spill→sort→fetch→merge throughput, which was far lower.
    pub net_bytes_per_sec: f64,
    /// Per-node sequential-task speed relative to the measuring host
    /// (1.0 = identical hardware). Lets one model slower/faster fleets.
    pub node_speed: f64,
    /// CPU charge per shuffled record, in seconds, spread across the
    /// cluster's slots. 0 for a pure model; Hadoop 0.20's per-record
    /// serialization/object overhead was on the order of microseconds,
    /// which is precisely what makes record duplication expensive on that
    /// platform.
    pub per_record_secs: f64,
}

impl ClusterModel {
    /// The paper's default cluster shape: `nodes` workers × 3 slots,
    /// 1 Gbit/s network, same per-core speed as the measuring host, no
    /// per-record platform overhead (pure model).
    pub fn paper_default(nodes: usize) -> Self {
        ClusterModel {
            nodes,
            slots_per_node: 3,
            net_bytes_per_sec: 125.0e6, // 1 Gbit/s
            node_speed: 1.0,
            per_record_secs: 0.0,
        }
    }

    /// A Hadoop-0.20-era calibration of the same cluster: effective
    /// shuffle throughput ~25 MB/s/node (spill + sort + HTTP fetch +
    /// merge) and ~8 µs of JVM/serialization overhead per shuffled
    /// record. Used to show how the paper's platform amplifies the cost
    /// of record duplication; reported alongside the pure model, never
    /// instead of it.
    pub fn hadoop_2010(nodes: usize) -> Self {
        ClusterModel {
            nodes,
            slots_per_node: 3,
            net_bytes_per_sec: 25.0e6,
            node_speed: 1.0,
            per_record_secs: 8.0e-6,
        }
    }

    /// Total task slots.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.slots_per_node
    }

    /// Simulated shuffle transfer time for `bytes` of map output: the
    /// fraction `1 − 1/nodes` crosses the network, and aggregate bandwidth
    /// scales with node count.
    pub fn shuffle_secs(&self, bytes: usize) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let cross = bytes as f64 * (1.0 - 1.0 / self.nodes as f64);
        cross / (self.net_bytes_per_sec * self.nodes as f64)
    }

    /// Greedy list-scheduling makespan of the given task durations (seconds)
    /// on this cluster: each task goes to the earliest-available slot.
    /// This is the classic `1/3`-competitive LPT-style bound Hadoop's
    /// FIFO slot scheduler approximates; we keep submission order (Hadoop
    /// launches tasks in order, not LPT-sorted).
    pub fn makespan_secs(&self, durations: impl IntoIterator<Item = f64>) -> f64 {
        let slots = self.total_slots().max(1);
        let mut heap: BinaryHeap<Reverse<OrderedF64>> =
            (0..slots).map(|_| Reverse(OrderedF64(0.0))).collect();
        let mut makespan = 0.0f64;
        for d in durations {
            let Reverse(OrderedF64(free_at)) = heap.pop().expect("slots > 0");
            let end = free_at + d / self.node_speed;
            makespan = makespan.max(end);
            heap.push(Reverse(OrderedF64(end)));
        }
        makespan
    }

    /// Simulate one job on this cluster from its measured metrics.
    pub fn simulate_job(&self, m: &JobMetrics) -> PhaseTimes {
        let map = self.makespan_secs(task_secs(&m.map_tasks));
        let record_overhead =
            m.shuffle_records as f64 * self.per_record_secs / self.total_slots().max(1) as f64;
        let shuffle = self.shuffle_secs(m.shuffle_bytes) + record_overhead;
        let reduce = self.makespan_secs(task_secs(&m.reduce_tasks));
        PhaseTimes {
            map_secs: map,
            shuffle_secs: shuffle,
            reduce_secs: reduce,
        }
    }

    /// Simulate a chain of jobs (jobs run back-to-back, as Hadoop drivers
    /// submit them sequentially).
    pub fn simulate_chain(&self, chain: &ChainMetrics) -> PhaseTimes {
        chain
            .jobs
            .iter()
            .map(|j| self.simulate_job(j))
            .fold(PhaseTimes::default(), PhaseTimes::add)
    }
}

fn task_secs(tasks: &[TaskStat]) -> impl Iterator<Item = f64> + '_ {
    tasks.iter().map(|t| t.duration.as_secs_f64())
}

/// Simulated per-phase times for a job or job chain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Map-phase makespan.
    pub map_secs: f64,
    /// Shuffle transfer time.
    pub shuffle_secs: f64,
    /// Reduce-phase makespan.
    pub reduce_secs: f64,
}

impl PhaseTimes {
    /// Total simulated time.
    pub fn total_secs(&self) -> f64 {
        self.map_secs + self.shuffle_secs + self.reduce_secs
    }

    /// Component-wise sum (sequential job chaining).
    pub fn add(self, other: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            map_secs: self.map_secs + other.map_secs,
            shuffle_secs: self.shuffle_secs + other.shuffle_secs,
            reduce_secs: self.reduce_secs + other.reduce_secs,
        }
    }
}

/// Total-order wrapper for non-NaN f64 (scheduling heap key).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("non-NaN durations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskKind;
    use std::time::Duration;

    #[test]
    fn makespan_perfectly_parallel() {
        let c = ClusterModel::paper_default(2); // 6 slots
        let ms = c.makespan_secs(vec![1.0; 6]);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_queues_excess_tasks() {
        let c = ClusterModel::paper_default(1); // 3 slots
        let ms = c.makespan_secs(vec![1.0; 4]);
        assert!((ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_straggler_bounds() {
        let c = ClusterModel::paper_default(5);
        let mut tasks = vec![0.01; 100];
        tasks.push(10.0);
        assert!(c.makespan_secs(tasks) >= 10.0);
    }

    #[test]
    fn more_nodes_never_slower() {
        let tasks: Vec<f64> = (0..100).map(|i| 0.1 + (i % 7) as f64 * 0.05).collect();
        let m5 = ClusterModel::paper_default(5).makespan_secs(tasks.clone());
        let m10 = ClusterModel::paper_default(10).makespan_secs(tasks.clone());
        let m15 = ClusterModel::paper_default(15).makespan_secs(tasks);
        assert!(m10 <= m5 + 1e-9);
        assert!(m15 <= m10 + 1e-9);
    }

    #[test]
    fn shuffle_single_node_is_free() {
        assert_eq!(ClusterModel::paper_default(1).shuffle_secs(1 << 30), 0.0);
    }

    #[test]
    fn shuffle_scales_with_nodes() {
        let bytes = 1 << 30;
        let s2 = ClusterModel::paper_default(2).shuffle_secs(bytes);
        let s10 = ClusterModel::paper_default(10).shuffle_secs(bytes);
        // At 10 nodes a larger fraction crosses the network but aggregate
        // bandwidth is 5x; net effect must be faster.
        assert!(s10 < s2);
    }

    #[test]
    fn node_speed_scales_task_time() {
        let slow = ClusterModel {
            node_speed: 0.5,
            ..ClusterModel::paper_default(1)
        };
        assert!((slow.makespan_secs(vec![1.0]) - 2.0).abs() < 1e-9);
    }

    fn one_task(kind: TaskKind, ms: u64, bytes: usize) -> TaskStat {
        TaskStat {
            kind,
            index: 0,
            duration: Duration::from_millis(ms),
            input_records: 1,
            input_bytes: bytes,
            output_records: 1,
            output_bytes: bytes,
        }
    }

    #[test]
    fn hadoop_calibration_charges_per_record() {
        let m = JobMetrics {
            name: "t".into(),
            map_tasks: vec![one_task(TaskKind::Map, 0, 0)],
            reduce_tasks: vec![one_task(TaskKind::Reduce, 0, 0)],
            shuffle_records: 3_000_000,
            shuffle_bytes: 0,
            pre_combine_records: 3_000_000,
            pre_combine_bytes: 0,
            elapsed: Duration::ZERO,
        };
        let pure = ClusterModel::paper_default(10).simulate_job(&m);
        let hadoop = ClusterModel::hadoop_2010(10).simulate_job(&m);
        assert_eq!(pure.shuffle_secs, 0.0);
        // 3M records x 8us / 30 slots = 0.8s
        assert!((hadoop.shuffle_secs - 0.8).abs() < 1e-9, "{hadoop:?}");
    }

    #[test]
    fn simulate_job_sums_phases() {
        let m = JobMetrics {
            name: "t".into(),
            map_tasks: vec![one_task(TaskKind::Map, 100, 10)],
            reduce_tasks: vec![one_task(TaskKind::Reduce, 200, 10)],
            shuffle_records: 1,
            shuffle_bytes: 250_000_000,
            pre_combine_records: 1,
            pre_combine_bytes: 10,
            elapsed: Duration::from_millis(300),
        };
        let c = ClusterModel::paper_default(2);
        let p = c.simulate_job(&m);
        assert!((p.map_secs - 0.1).abs() < 1e-9);
        assert!((p.reduce_secs - 0.2).abs() < 1e-9);
        // 250 MB, half crosses, 2 * 125 MB/s aggregate -> 0.5s
        assert!((p.shuffle_secs - 0.5).abs() < 1e-9);
        assert!((p.total_secs() - 0.8).abs() < 1e-9);
    }
}
