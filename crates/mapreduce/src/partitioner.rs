//! Shuffle partitioners: route intermediate keys to reduce tasks.

use ssj_common::hash::fx_hash_one;
use std::hash::Hash;
use std::marker::PhantomData;

/// Routes an intermediate key to one of `num_partitions` reduce tasks.
pub trait Partitioner<K>: Send + Sync {
    /// Return the reduce-task index for `key`, in `0..num_partitions`.
    fn partition(&self, key: &K, num_partitions: usize) -> usize;
}

/// Default hash partitioner (Hadoop's `HashPartitioner` analogue), using the
/// workspace's deterministic FxHash so shuffle routing — and therefore every
/// byte counter — is reproducible across runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    #[inline]
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        (fx_hash_one(key) % num_partitions as u64) as usize
    }
}

/// Partitioner for keys that *are* partition indices (or carry one).
///
/// FS-Join's whole point is key-controlled placement: the map phase emits
/// the vertical (or `(horizontal, vertical)`) partition id as the key, and
/// the fragment must land on the reduce task of that id. `DirectPartitioner`
/// extracts the index with a projection function.
pub struct DirectPartitioner<K, F> {
    project: F,
    _marker: PhantomData<fn(&K)>,
}

impl<K, F: Fn(&K) -> usize> DirectPartitioner<K, F> {
    /// Build from a projection of the key onto a partition index. The index
    /// is taken modulo the reduce-task count at shuffle time.
    pub fn new(project: F) -> Self {
        DirectPartitioner {
            project,
            _marker: PhantomData,
        }
    }
}

impl<K, F> Partitioner<K> for DirectPartitioner<K, F>
where
    F: Fn(&K) -> usize + Send + Sync,
{
    #[inline]
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        (self.project)(key) % num_partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = HashPartitioner;
        for key in 0u64..1000 {
            let a = p.partition(&key, 7);
            assert!(a < 7);
            assert_eq!(a, p.partition(&key, 7));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner;
        let mut counts = [0usize; 8];
        for key in 0u64..8000 {
            counts[p.partition(&key, 8)] += 1;
        }
        // Each bucket should get a meaningful share (loose bound).
        for c in counts {
            assert!(c > 500, "bucket starved: {counts:?}");
        }
    }

    #[test]
    fn direct_partitioner_projects_and_wraps() {
        let p = DirectPartitioner::new(|k: &(usize, u32)| k.0);
        assert_eq!(p.partition(&(3, 9), 10), 3);
        assert_eq!(p.partition(&(13, 9), 10), 3);
    }
}
