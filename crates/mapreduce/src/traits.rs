//! Core MapReduce task traits: [`Mapper`], [`Reducer`], [`StreamingReducer`],
//! [`Combiner`] and the [`Key`]/[`Value`] marker traits their key/value
//! types must satisfy.

use crate::emitter::Emitter;
use crate::merge::{GroupValues, SideGroups};
use ssj_common::ByteSize;
use std::hash::Hash;

/// Requirements on intermediate and output keys.
///
/// Keys must be totally ordered (the shuffle is sort-based, matching
/// Hadoop's guarantee that a reducer sees its keys in ascending order),
/// hashable (for [`HashPartitioner`](crate::HashPartitioner)), cloneable
/// (group boundaries hand the reducer a borrowed key), and byte-accountable.
pub trait Key: Ord + Hash + Clone + Send + Sync + ByteSize + 'static {}
impl<T: Ord + Hash + Clone + Send + Sync + ByteSize + 'static> Key for T {}

/// Requirements on intermediate and output values.
///
/// `Clone` lets the engine checkpoint map outputs in a
/// [`SpillStore`](crate::SpillStore): a failed reduce attempt re-fetches its
/// input runs instead of re-running the whole map phase (Hadoop's
/// materialized-map-output recovery).
/// (`Sync` because checkpointed runs are *shared* with every concurrent
/// reduce attempt rather than moved into one.)
pub trait Value: Clone + Send + Sync + ByteSize + 'static {}
impl<T: Clone + Send + Sync + ByteSize + 'static> Value for T {}

/// A map task.
///
/// One instance is created per map task (via the factory closure passed to
/// [`JobBuilder::run`](crate::JobBuilder::run)), so implementations may keep
/// per-task state across `map` calls — e.g. FS-Join's mapper caches the
/// pivot array loaded in [`Mapper::setup`].
pub trait Mapper: Send {
    /// Input key type (e.g. record id).
    type InKey: Send + 'static;
    /// Input value type (e.g. record body).
    type InValue: Send + 'static;
    /// Intermediate key type routed by the shuffle.
    type OutKey: Key;
    /// Intermediate value type.
    type OutValue: Value;

    /// Called once before the first `map` call of the task.
    fn setup(&mut self) {}

    /// Process one input record, emitting any number of intermediate pairs.
    fn map(
        &mut self,
        key: Self::InKey,
        value: Self::InValue,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );

    /// Called once after the last `map` call; may emit trailing pairs
    /// (used by in-mapper-combining patterns).
    fn cleanup(&mut self, _out: &mut Emitter<Self::OutKey, Self::OutValue>) {}
}

/// A reduce task.
///
/// One instance is created per reduce task. `reduce` is invoked once per
/// distinct key, with all values for that key; keys arrive in ascending
/// order within the task (sort-based shuffle).
pub trait Reducer: Send {
    /// Intermediate key type (must match the mapper's `OutKey`).
    type InKey: Key;
    /// Intermediate value type (must match the mapper's `OutValue`).
    type InValue: Value;
    /// Output key type.
    type OutKey: Key;
    /// Output value type.
    type OutValue: Value;

    /// Called once before the first `reduce` call of the task.
    fn setup(&mut self) {}

    /// Process one key group.
    fn reduce(
        &mut self,
        key: &Self::InKey,
        values: Vec<Self::InValue>,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );

    /// Called once after the last group; may emit trailing pairs.
    fn cleanup(&mut self, _out: &mut Emitter<Self::OutKey, Self::OutValue>) {}
}

/// A streaming reduce task: sees each key group's values as a by-reference
/// iterator straight off the k-way merge of the sorted spill runs, with
/// **no per-key `Vec` materialization on the engine side**.
///
/// This is the engine's native reduce interface; every [`Reducer`] is also
/// a `StreamingReducer` through a blanket adapter that collects the group
/// into the `Vec` its signature requires. Hot reducers (FS-Join's fragment
/// join, count/fold-style aggregation) implement this trait directly and
/// either fold values as they stream or copy them into a reused scratch
/// buffer.
///
/// Contract (identical to [`Reducer`]): `reduce_group` is invoked once per
/// distinct key, keys ascend within the task, and a key's values arrive in
/// map-task order (within a map task, in emission order). Values left
/// unread when `reduce_group` returns are skipped, not redelivered.
pub trait StreamingReducer: Send {
    /// Intermediate key type (must match the mapper's `OutKey`).
    type InKey: Key;
    /// Intermediate value type (must match the mapper's `OutValue`).
    type InValue: Value;
    /// Output key type.
    type OutKey: Key;
    /// Output value type.
    type OutValue: Value;

    /// Called once before the first `reduce_group` call of the task.
    fn setup(&mut self) {}

    /// Process one key group, consuming its values as a stream.
    fn reduce_group(
        &mut self,
        key: &Self::InKey,
        values: &mut GroupValues<'_, '_, Self::InKey, Self::InValue>,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );

    /// Called once after the last group; may emit trailing pairs.
    fn cleanup(&mut self, _out: &mut Emitter<Self::OutKey, Self::OutValue>) {}
}

/// Every batch [`Reducer`] reduces streamed groups by materializing each
/// group into the `Vec` its signature requires — one clone per value (what
/// the old deep-cloning fetch paid for the *whole run* up front), one
/// `Vec` per key (inherent to the batch signature).
impl<R: Reducer> StreamingReducer for R {
    type InKey = R::InKey;
    type InValue = R::InValue;
    type OutKey = R::OutKey;
    type OutValue = R::OutValue;

    fn setup(&mut self) {
        Reducer::setup(self);
    }

    fn reduce_group(
        &mut self,
        key: &R::InKey,
        values: &mut GroupValues<'_, '_, R::InKey, R::InValue>,
        out: &mut Emitter<R::OutKey, R::OutValue>,
    ) {
        let materialized: Vec<R::InValue> = values.cloned().collect();
        Reducer::reduce(self, key, materialized, out);
    }

    fn cleanup(&mut self, out: &mut Emitter<R::OutKey, R::OutValue>) {
        Reducer::cleanup(self, out);
    }
}

/// A co-group reduce task: the reduce side of a
/// [`Plan::add_cogroup`](crate::Plan::add_cogroup) stage.
///
/// One instance is created per co-group task (= per reduce partition of
/// the co-partitioned upstreams). `cogroup` is invoked once per distinct
/// key across **all** upstream sides, keys ascending within the task;
/// the group's values stream by reference as `(side, &value)` with side
/// tags non-decreasing (side = position of the upstream in the stage's
/// edge list), and within one side in upstream reduce-partition emission
/// order — exactly what an identity-rekey fan-in map over the same
/// sealed partitions would have delivered, minus the second shuffle.
pub trait CoGroupReducer: Send {
    /// Key type of every upstream's reduce output.
    type InKey: Key;
    /// Value type of every upstream's reduce output.
    type InValue: Value;
    /// Output key type.
    type OutKey: Key;
    /// Output value type.
    type OutValue: Value;

    /// Called once before the first `cogroup` call of the task.
    fn setup(&mut self) {}

    /// Process one key group, consuming its side-tagged values as a
    /// stream. Values left unread are skipped, not redelivered.
    fn cogroup(
        &mut self,
        key: &Self::InKey,
        values: &mut SideGroups<'_, '_, Self::InKey, Self::InValue>,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );

    /// Called once after the last group; may emit trailing pairs.
    fn cleanup(&mut self, _out: &mut Emitter<Self::OutKey, Self::OutValue>) {}
}

/// A map-side combiner, applied to each map task's sorted output before the
/// shuffle (Hadoop semantics: an optimization that must be semantically
/// transparent — the reducer must produce the same result with or without
/// it).
pub trait Combiner<K: Key, V: Value>: Send + Sync {
    /// Fold one key group of a single map task's output into fewer values.
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V>;

    /// Fold one key group *streamed* off the sorted bucket into `out`,
    /// without requiring a `Vec` per distinct key. The default adapter
    /// collects and delegates to [`Combiner::combine`]; fold-style
    /// combiners (sums, counts) override it to consume the iterator
    /// directly, which lets the engine's map-side spill path run with no
    /// per-key allocation at all.
    ///
    /// Contract: must append exactly what `combine(key, values.collect())`
    /// would return, and must leave `values` exhausted.
    fn combine_into(&self, key: &K, values: &mut dyn Iterator<Item = V>, out: &mut Vec<V>) {
        let collected: Vec<V> = values.collect();
        out.extend(self.combine(key, collected));
    }

    /// Whether `combine`'s output is a function of the input **multiset**
    /// only — the values' order never affects the combined output (count
    /// and content), bit-for-bit.
    ///
    /// When true, the engine may sort map-side buckets with an *unstable*
    /// sort: an unstable sort only ever permutes equal-key pairs, and a
    /// commutative combiner erases that permutation before anything else
    /// observes it. Defaults to `false` (order preserved via stable sort).
    /// Floating-point folds must stay `false`: `f64` addition is not
    /// associative, so a reorder can flip result bits.
    fn is_commutative(&self) -> bool {
        false
    }
}

/// Combiner that sums numeric values — the common case for counting jobs
/// (token frequency, common-token aggregation).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumCombiner;

macro_rules! impl_sum_combiner {
    ($commutative:literal; $($t:ty),*) => {
        $(impl<K: Key> Combiner<K, $t> for SumCombiner {
            fn combine(&self, _key: &K, values: Vec<$t>) -> Vec<$t> {
                vec![values.into_iter().sum()]
            }
            fn combine_into(
                &self,
                _key: &K,
                values: &mut dyn Iterator<Item = $t>,
                out: &mut Vec<$t>,
            ) {
                out.push(values.sum());
            }
            fn is_commutative(&self) -> bool {
                $commutative
            }
        })*
    };
}

// Integer sums are order-independent; f64 addition is not associative, so
// its combiner must keep the stable map-side sort (see `is_commutative`).
impl_sum_combiner!(true; u32, u64, usize, i32, i64);
impl_sum_combiner!(false; f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_combiner_folds_to_single_value() {
        let c = SumCombiner;
        let out: Vec<u64> = Combiner::<u32, u64>::combine(&c, &7, vec![1, 2, 3]);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn sum_combiner_empty_group_is_zero() {
        let c = SumCombiner;
        let out: Vec<u64> = Combiner::<u32, u64>::combine(&c, &7, vec![]);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn combine_into_matches_combine() {
        let c = SumCombiner;
        let mut streamed: Vec<u64> = Vec::new();
        Combiner::<u32, u64>::combine_into(
            &c,
            &7,
            &mut vec![1u64, 2, 3].into_iter(),
            &mut streamed,
        );
        assert_eq!(
            streamed,
            Combiner::<u32, u64>::combine(&c, &7, vec![1, 2, 3])
        );
        // Empty groups fold to the additive identity on both paths.
        streamed.clear();
        Combiner::<u32, u64>::combine_into(&c, &7, &mut std::iter::empty(), &mut streamed);
        assert_eq!(streamed, vec![0]);
    }

    /// A combiner that relies on the default `combine_into` adapter must
    /// behave identically to its batch `combine`.
    #[test]
    fn default_combine_into_adapter_delegates() {
        struct KeepMax;
        impl Combiner<u32, u64> for KeepMax {
            fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
                values.into_iter().max().into_iter().collect()
            }
        }
        let mut out = Vec::new();
        KeepMax.combine_into(&1, &mut vec![4u64, 9, 2].into_iter(), &mut out);
        assert_eq!(out, vec![9]);
    }
}
