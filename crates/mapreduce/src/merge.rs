//! Streaming k-way merge over sorted spill runs.
//!
//! The map phase already sorts every spill run (per reduce bucket, by
//! key); the reduce side therefore never needs to re-sort. [`KWayMerge`]
//! merges `k` sorted runs in `O(n log k)` with a loser tree (tournament
//! tree) of run cursors, and [`GroupedRuns`] layers the sort-based
//! grouping contract on top: one callback per distinct key, values
//! streamed by reference with no per-key buffer on the engine side.
//!
//! # Determinism
//!
//! Hadoop's contract (and this engine's, pinned by the golden digests in
//! `crates/core/tests/columnar_equivalence.rs`) is that a reducer sees a
//! key's values in *map-task order*, and within one map task in emission
//! order. The previous implementation got this from a stable sort over the
//! concatenated runs; the merge reproduces it exactly by tie-breaking
//! equal keys on the **run index** (runs are registered in map-task
//! order): for a key present in runs 0 and 2, all of run 0's values drain
//! before run 2's, each in within-run order — element-for-element what
//! concat + stable sort produced.
//!
//! # The packed fast path
//!
//! Nearly every key this engine actually shuffles is a small integer:
//! `u32` cell ids in the filter job, `(u32, u32)` record pairs in the
//! verification job and the baselines, `u64` token ranks in the ordering
//! job. For those, the merge dispatches (by `TypeId`, the same trick the
//! standard library uses to specialise sorts for primitives) to a
//! tournament whose nodes hold the key and the run index embedded in one
//! wide integer, ordered exactly like `(key, run)` — so a tournament
//! match is a single integer compare with no pointer chasing, no `Option`
//! tag, and no separate tie-break, and the winner/loser exchange lowers
//! to conditional moves. Exhausted runs are encoded as sentinels above
//! every real packed value (still ordered by run index among themselves).
//! Any other key type takes the generic by-reference tree below, which
//! preserves identical semantics.

use std::any::TypeId;

// ---- Generic by-reference loser tree ---------------------------------------

/// One tournament contender: a run's index plus a reference to its
/// current head key (`None` = exhausted, loses to everything). Caching
/// the key reference in the node keeps every comparison a single deref
/// into run data instead of a `runs[j][pos[j]]` double indirection.
struct Contender<'r, K> {
    key: Option<&'r K>,
    run: u32,
}

// Derived `Clone`/`Copy` would bound `K: Clone`; the node only holds a
// reference, so implement them unconditionally.
impl<K> Clone for Contender<'_, K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for Contender<'_, K> {}

/// Does contender `a` beat contender `b`? Total order over `(key, run)`
/// with exhausted runs greatest — the merge's determinism tie-break.
#[inline]
fn beats<K: Ord>(a: &Contender<'_, K>, b: &Contender<'_, K>) -> bool {
    match (a.key, b.key) {
        // `.then` (eager — the run compare is two registers) lets the
        // whole expression lower to a branch-free compare chain; the
        // tournament's winner branch is data-dependent and unpredictable,
        // so keeping comparisons select-based matters.
        (Some(ka), Some(kb)) => ka.cmp(kb).then(a.run.cmp(&b.run)).is_lt(),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a.run < b.run,
    }
}

/// Loser tree over by-reference contenders: works for any `Ord` key.
struct RefTree<'r, K, V> {
    /// `heads[j]` = run `j`'s unconsumed suffix.
    heads: Vec<&'r [(K, V)]>,
    /// `tree[0]` = overall winner; `tree[1..k]` = loser of each internal
    /// match (leaf `j` sits implicitly at `k + j`, its parent at
    /// `(k + j) / 2`).
    tree: Vec<Contender<'r, K>>,
}

impl<'r, K: Ord, V> RefTree<'r, K, V> {
    fn new(runs: Vec<&'r [(K, V)]>) -> Self {
        let k = runs.len();
        let mut tree = vec![Contender { key: None, run: 0 }; k.max(1)];
        if k > 0 {
            // Bottom-up tournament: leaf `j` sits at implicit index
            // `k + j`; each internal node plays its children's winners,
            // records the loser, and sends the winner up. `winners` is
            // scaffolding, dropped after the build.
            let mut winners = vec![Contender { key: None, run: 0 }; 2 * k];
            for (j, slot) in winners[k..].iter_mut().enumerate() {
                *slot = Contender {
                    key: runs[j].first().map(|pair| &pair.0),
                    run: j as u32,
                };
            }
            for node in (1..k).rev() {
                let (a, b) = (winners[2 * node], winners[2 * node + 1]);
                if beats(&a, &b) {
                    winners[node] = a;
                    tree[node] = b;
                } else {
                    winners[node] = b;
                    tree[node] = a;
                }
            }
            tree[0] = winners[1];
        }
        RefTree { heads: runs, tree }
    }

    /// Replay the winner's leaf-to-root path after its head advanced
    /// (`tree[0]` holds the advanced cursor on entry).
    #[inline]
    fn replay(&mut self) {
        let k = self.heads.len();
        let mut cur = self.tree[0];
        let mut node = (k + cur.run as usize) / 2;
        while node > 0 {
            // SAFETY: `cur.run < k` by construction, so `node` starts at
            // `(k + cur.run) / 2 < k` and halves each step — always in
            // bounds of `tree` (length `k`).
            let slot = unsafe { self.tree.get_unchecked_mut(node) };
            // Whether the stored loser beats the climber is a coin flip on
            // random data; express the winner/loser exchange as value
            // selects (conditional moves) rather than a branched swap so
            // the loop carries no unpredictable branch.
            let other = *slot;
            let other_wins = beats(&other, &cur);
            *slot = if other_wins { cur } else { other };
            cur = if other_wins { other } else { cur };
            node /= 2;
        }
        self.tree[0] = cur;
    }

    #[inline]
    fn next(&mut self) -> Option<(u32, &'r (K, V))> {
        // Winner key `None` ⇒ every run is exhausted (or there are none).
        self.tree[0].key?;
        let w = self.tree[0].run as usize;
        // SAFETY: every contender's `run` is < `heads.len()` by
        // construction (leaves are built from `0..k`).
        let head = unsafe { self.heads.get_unchecked_mut(w) };
        let (item, rest) = head.split_first()?;
        *head = rest;
        prefetch_run(rest);
        match rest.first() {
            // Winner stays when the next key equals the yielded key: the
            // new head compares identically (same key value, same run
            // index) against every opponent, so the tournament's outcome
            // cannot change — no tree walk. (`tree[0].key` still points
            // at the consumed pair's key; its *value* is what comparisons
            // read, and that is unchanged.)
            Some(next) if next.0 == item.0 => {}
            next => {
                self.tree[0].key = next.map(|pair| &pair.0);
                self.replay();
            }
        }
        Some((w as u32, item))
    }
}

/// Hint the next line of a run's stream into cache: its elements are
/// consumed again only after ~k other pops, so the hardware prefetcher
/// (which tracks few streams) misses this pattern at large k. Prefetch is
/// advisory — an address past the run's end is harmless.
#[inline]
fn prefetch_run<T>(rest: &[T]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch((rest.as_ptr() as usize + 64) as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = rest;
}

// ---- Packed integer-key fast path ------------------------------------------

/// Keys with an order-preserving embedding into a wide integer alongside
/// the run index: `pack(a, i) < pack(b, j)` iff `(a, i) < (b, j)`
/// lexicographically, and [`Pack::exhausted`] sentinels sort above every
/// packed value (increasing in run index, preserving the exhausted-run
/// tie-break of the generic tree).
trait Pack: Copy + Ord + 'static {
    type P: Copy + Ord;
    fn pack(self, run: u32) -> Self::P;
    fn exhausted(run: u32, k: u32) -> Self::P;
    /// The run index of a (non-exhausted) packed value.
    fn run_of(p: Self::P) -> u32;
}

impl Pack for u32 {
    type P = u64;
    #[inline]
    fn pack(self, run: u32) -> u64 {
        (u64::from(self) << 32) | u64::from(run)
    }
    #[inline]
    fn exhausted(run: u32, k: u32) -> u64 {
        // Top of the u64 range, ordered by run. Distinct from every real
        // pack as long as 2k fits in the run field — guaranteed by the
        // `k < 2^31` assert at build.
        u64::MAX - u64::from(k - 1 - run)
    }
    #[inline]
    fn run_of(p: u64) -> u32 {
        p as u32
    }
}

impl Pack for u64 {
    type P = u128;
    #[inline]
    fn pack(self, run: u32) -> u128 {
        (u128::from(self) << 64) | u128::from(run)
    }
    #[inline]
    fn exhausted(run: u32, k: u32) -> u128 {
        u128::MAX - u128::from(k - 1 - run)
    }
    #[inline]
    fn run_of(p: u128) -> u32 {
        p as u32
    }
}

impl Pack for (u32, u32) {
    type P = u128;
    #[inline]
    fn pack(self, run: u32) -> u128 {
        let key = (u64::from(self.0) << 32) | u64::from(self.1);
        (u128::from(key) << 64) | u128::from(run)
    }
    #[inline]
    fn exhausted(run: u32, k: u32) -> u128 {
        u128::MAX - u128::from(k - 1 - run)
    }
    #[inline]
    fn run_of(p: u128) -> u32 {
        p as u32
    }
}

/// Loser tree whose nodes are packed `(key, run)` integers: one compare
/// per tournament match, conditional-move exchanges, keys re-read from
/// run data only on advance.
struct PackedTree<'r, KC: Pack, V> {
    heads: Vec<&'r [(KC, V)]>,
    /// `tree[0]` = winner; `tree[1..k]` = losers, as packed integers.
    tree: Vec<KC::P>,
    /// Smallest exhausted sentinel: a winner at or above it means done.
    exhaust_min: KC::P,
}

impl<'r, KC: Pack, V> PackedTree<'r, KC, V> {
    fn new(runs: Vec<&'r [(KC, V)]>) -> Self {
        let k = runs.len();
        assert!(k < (1 << 31), "too many runs for the packed tie-break");
        let kk = k.max(1) as u32;
        let exhaust_min = KC::exhausted(0, kk);
        let mut tree = vec![exhaust_min; k.max(1)];
        if k > 0 {
            let mut winners = vec![exhaust_min; 2 * k];
            for (j, slot) in winners[k..].iter_mut().enumerate() {
                *slot = match runs[j].first() {
                    Some(pair) => pair.0.pack(j as u32),
                    None => KC::exhausted(j as u32, kk),
                };
            }
            for node in (1..k).rev() {
                let (a, b) = (winners[2 * node], winners[2 * node + 1]);
                // Packed values are distinct (the run field differs), so
                // `<` is the full (key, run) order.
                if a < b {
                    winners[node] = a;
                    tree[node] = b;
                } else {
                    winners[node] = b;
                    tree[node] = a;
                }
            }
            tree[0] = winners[1];
        }
        PackedTree {
            heads: runs,
            tree,
            exhaust_min,
        }
    }

    #[inline]
    fn next(&mut self) -> Option<(u32, &'r (KC, V))> {
        let top = self.tree[0];
        if top >= self.exhaust_min {
            return None;
        }
        let w = KC::run_of(top);
        // SAFETY: packed run indices are < `heads.len()` by construction.
        let head = unsafe { self.heads.get_unchecked_mut(w as usize) };
        let (item, rest) = head.split_first()?;
        *head = rest;
        prefetch_run(rest);
        let k = self.heads.len();
        let cur = match rest.first() {
            Some(pair) => pair.0.pack(w),
            None => KC::exhausted(w, k as u32),
        };
        if cur == top {
            // Winner stays: same key, same run — the tournament cannot
            // change, and `tree[0]` already holds this packed value.
            return Some((w, item));
        }
        let mut cur = cur;
        let mut node = (k + w as usize) / 2;
        while node > 0 {
            // SAFETY: `w < k`, so `node < k` and halves each step.
            let slot = unsafe { self.tree.get_unchecked_mut(node) };
            let other = *slot;
            let other_wins = other < cur;
            *slot = if other_wins { cur } else { other };
            cur = if other_wins { other } else { cur };
            node /= 2;
        }
        self.tree[0] = cur;
        Some((w, item))
    }
}

// ---- Dispatch --------------------------------------------------------------

enum Inner<'r, K, V> {
    /// Generic by-reference tree: any `Ord` key.
    ByRef(RefTree<'r, K, V>),
    /// Packed trees, constructed only when `K` *is* the concrete type.
    U32(PackedTree<'r, u32, V>),
    U64(PackedTree<'r, u64, V>),
    PairU32(PackedTree<'r, (u32, u32), V>),
}

/// Reinterpret the run vector's key type. The cast is an identity:
///
/// # Safety
/// The caller must have proven `K` and `KC` are the same type (via
/// `TypeId` equality), making `(K, V)` and `(KC, V)` the same type.
unsafe fn cast_runs<'r, K: 'static, KC: 'static, V>(runs: Vec<&'r [(K, V)]>) -> Vec<&'r [(KC, V)]> {
    debug_assert_eq!(TypeId::of::<K>(), TypeId::of::<KC>());
    let mut runs = std::mem::ManuallyDrop::new(runs);
    let (ptr, len, cap) = (runs.as_mut_ptr(), runs.len(), runs.capacity());
    Vec::from_raw_parts(ptr as *mut &'r [(KC, V)], len, cap)
}

/// Reinterpret a yielded pair back to the caller's key type.
///
/// # Safety
/// Same precondition as [`cast_runs`]: `K` and `KC` are the same type.
#[inline]
unsafe fn cast_pair<KC, K, V>(pair: &(KC, V)) -> &(K, V) {
    &*(pair as *const (KC, V) as *const (K, V))
}

/// Streaming k-way merge of sorted `(key, value)` runs.
///
/// Yields references into the runs in ascending key order, equal keys in
/// run order (see the module docs for why that reproduces the stable
/// sort). Implemented as a **loser tree** (tournament tree of run
/// cursors): exactly `⌈log₂ k⌉` comparisons per element — half of what a
/// binary heap's pop + push costs — with a packed-integer fast path for
/// the engine's primitive key types (module docs) and a winner-stays
/// shortcut that skips the tree walk entirely when a run's next key
/// equals the key it just yielded (the new head beats exactly the
/// opponents the old head beat, tie-break included), which makes
/// duplicate-heavy groups — the common shape of combined shuffle runs —
/// nearly comparison-free.
pub struct KWayMerge<'r, K, V> {
    inner: Inner<'r, K, V>,
    /// Element count at build time (the run suffixes shrink as the merge
    /// drains).
    total: usize,
}

impl<'r, K: Ord + 'static, V> KWayMerge<'r, K, V> {
    /// Build a merge over `runs`. Each run must be sorted by key (as every
    /// spill run is); empty runs are permitted and ignored.
    pub fn new(runs: Vec<&'r [(K, V)]>) -> Self {
        debug_assert!(runs
            .iter()
            .all(|run| run.windows(2).all(|w| w[0].0 <= w[1].0)));
        let total = runs.iter().map(|r| r.len()).sum();
        let key = TypeId::of::<K>();
        // SAFETY (all three arms): the packed variant is chosen only when
        // `TypeId` proves `K` is that exact type, so the cast is identity.
        let inner = if key == TypeId::of::<u32>() {
            Inner::U32(PackedTree::new(unsafe { cast_runs(runs) }))
        } else if key == TypeId::of::<u64>() {
            Inner::U64(PackedTree::new(unsafe { cast_runs(runs) }))
        } else if key == TypeId::of::<(u32, u32)>() {
            Inner::PairU32(PackedTree::new(unsafe { cast_runs(runs) }))
        } else {
            Inner::ByRef(RefTree::new(runs))
        };
        KWayMerge { inner, total }
    }

    /// Total number of elements across all runs (consumed or not).
    pub fn total_len(&self) -> usize {
        self.total
    }
}

impl<'r, K: Ord, V> KWayMerge<'r, K, V> {
    /// Like `Iterator::next`, but also reports **which run** (by
    /// registration index) supplied the yielded pair — the hook the
    /// multi-source co-group plane uses to recover a value's side tag
    /// without widening the stored pairs.
    #[inline]
    pub fn next_with_run(&mut self) -> Option<(u32, &'r (K, V))> {
        match &mut self.inner {
            Inner::ByRef(tree) => tree.next(),
            // SAFETY: these variants exist only when `K` is the matching
            // concrete type (see `new`).
            Inner::U32(tree) => tree.next().map(|(w, p)| (w, unsafe { cast_pair(p) })),
            Inner::U64(tree) => tree.next().map(|(w, p)| (w, unsafe { cast_pair(p) })),
            Inner::PairU32(tree) => tree.next().map(|(w, p)| (w, unsafe { cast_pair(p) })),
        }
    }
}

impl<'r, K: Ord, V> Iterator for KWayMerge<'r, K, V> {
    type Item = &'r (K, V);

    #[inline]
    fn next(&mut self) -> Option<&'r (K, V)> {
        match &mut self.inner {
            Inner::ByRef(tree) => tree.next().map(|(_, p)| p),
            // SAFETY: these variants exist only when `K` is the matching
            // concrete type (see `new`).
            Inner::U32(tree) => tree.next().map(|(_, p)| unsafe { cast_pair(p) }),
            Inner::U64(tree) => tree.next().map(|(_, p)| unsafe { cast_pair(p) }),
            Inner::PairU32(tree) => tree.next().map(|(_, p)| unsafe { cast_pair(p) }),
        }
    }
}

/// The values of one key group, streamed by reference out of a
/// [`KWayMerge`] — the engine-side replacement for the per-key `Vec` the
/// old group-walk allocated.
///
/// Consumers may stop early; [`GroupedRuns::for_each_group`] drains any
/// unread remainder so the next group starts at the right boundary.
pub struct GroupValues<'m, 'r, K, V> {
    key: &'r K,
    first: Option<&'r V>,
    merge: &'m mut KWayMerge<'r, K, V>,
    /// First pair of the *next* group, discovered while iterating this one.
    boundary: Option<&'r (K, V)>,
    done: bool,
}

impl<'m, 'r, K: Ord, V> GroupValues<'m, 'r, K, V> {
    /// The group's key.
    pub fn key(&self) -> &'r K {
        self.key
    }
}

impl<'m, 'r, K: Ord, V> Iterator for GroupValues<'m, 'r, K, V> {
    type Item = &'r V;

    fn next(&mut self) -> Option<&'r V> {
        if let Some(v) = self.first.take() {
            return Some(v);
        }
        if self.done {
            return None;
        }
        match self.merge.next() {
            Some(pair) if pair.0 == *self.key => Some(&pair.1),
            other => {
                self.boundary = other;
                self.done = true;
                None
            }
        }
    }
}

/// Sort-based grouping over merged spill runs: one callback per distinct
/// key, in ascending key order, values in deterministic run order.
pub struct GroupedRuns<'r, K, V> {
    merge: KWayMerge<'r, K, V>,
}

impl<'r, K: Ord + 'static, V> GroupedRuns<'r, K, V> {
    /// Group the merge of `runs` (each sorted by key).
    pub fn new(runs: Vec<&'r [(K, V)]>) -> Self {
        GroupedRuns {
            merge: KWayMerge::new(runs),
        }
    }

    /// Drive `f` once per key group. Internal iteration sidesteps the
    /// lending-iterator problem: `GroupValues` mutably borrows the merge,
    /// so groups cannot coexist — exactly the reduce contract (groups are
    /// consumed one at a time, in order).
    pub fn for_each_group<F>(mut self, mut f: F)
    where
        F: FnMut(&'r K, &mut GroupValues<'_, 'r, K, V>),
    {
        let mut pending = self.merge.next();
        while let Some(pair) = pending {
            let mut values = GroupValues {
                key: &pair.0,
                first: Some(&pair.1),
                merge: &mut self.merge,
                boundary: None,
                done: false,
            };
            f(&pair.0, &mut values);
            // Drain whatever the consumer left unread, so `boundary` is
            // populated (or the merge is exhausted).
            while values.next().is_some() {}
            pending = values.boundary;
        }
    }
}

// ---- Multi-source co-grouping ----------------------------------------------

/// The values of one key group merged from **several sides** (logical
/// inputs), streamed by reference with the side tag of every value — the
/// co-group analogue of [`GroupValues`].
///
/// Yields `(side, &value)` pairs. Within a group the side tags are
/// non-decreasing and, inside one side, values arrive in run order
/// (runs register side-major, so the merge's `(key, run)` tie-break *is*
/// `(key, side, run-within-side)`): a consumer can split the group into
/// per-side sub-groups with a single pass and zero allocations.
pub struct SideGroups<'m, 'r, K, V> {
    key: &'r K,
    first: Option<(u32, &'r V)>,
    merge: &'m mut KWayMerge<'r, K, V>,
    /// Run registration index → side index.
    side_of: &'m [u32],
    /// First `(run, pair)` of the *next* group, discovered while
    /// iterating this one.
    boundary: Option<(u32, &'r (K, V))>,
    done: bool,
}

impl<'m, 'r, K: Ord, V> SideGroups<'m, 'r, K, V> {
    /// The group's key.
    pub fn key(&self) -> &'r K {
        self.key
    }
}

impl<'m, 'r, K: Ord, V> Iterator for SideGroups<'m, 'r, K, V> {
    type Item = (u32, &'r V);

    fn next(&mut self) -> Option<(u32, &'r V)> {
        if let Some(v) = self.first.take() {
            return Some(v);
        }
        if self.done {
            return None;
        }
        match self.merge.next_with_run() {
            Some((run, pair)) if pair.0 == *self.key => Some((self.side_of[run as usize], &pair.1)),
            other => {
                self.boundary = other;
                self.done = true;
                None
            }
        }
    }
}

/// Sort-based co-grouping over the sorted reduce outputs of N co-partitioned
/// upstreams: one callback per distinct key across **all** sides, values
/// streamed as `(side, &value)` in `(side, run)` order — the merge plane
/// under co-group plan stages.
///
/// Each side contributes its runs in order; all runs must be sorted by key
/// (sealed reduce partitions are — reducers see keys ascending and emit
/// group-ordered output). Ties on `key` break first by side, then by the
/// run's position within its side, mirroring what an identity-rekey fan-in
/// map (side-major concat + stable sort) would have produced.
pub struct CoGroupedRuns<'r, K, V> {
    merge: KWayMerge<'r, K, V>,
    side_of: Vec<u32>,
}

impl<'r, K: Ord + 'static, V> CoGroupedRuns<'r, K, V> {
    /// Co-group the merge of `sides` (outer: side, inner: that side's
    /// sorted runs in deterministic order).
    pub fn new(sides: Vec<Vec<&'r [(K, V)]>>) -> Self {
        let mut side_of = Vec::with_capacity(sides.iter().map(Vec::len).sum());
        let mut runs = Vec::with_capacity(side_of.capacity());
        for (side, side_runs) in sides.into_iter().enumerate() {
            for run in side_runs {
                side_of.push(side as u32);
                runs.push(run);
            }
        }
        CoGroupedRuns {
            merge: KWayMerge::new(runs),
            side_of,
        }
    }

    /// Total number of elements across all sides and runs.
    pub fn total_len(&self) -> usize {
        self.merge.total_len()
    }

    /// Drive `f` once per distinct key (ascending across all sides).
    /// Same internal-iteration shape as [`GroupedRuns::for_each_group`];
    /// values left unread are drained, not redelivered.
    pub fn for_each_group<F>(mut self, mut f: F)
    where
        F: FnMut(&'r K, &mut SideGroups<'_, 'r, K, V>),
    {
        let mut pending = self.merge.next_with_run();
        while let Some((run, pair)) = pending {
            let mut values = SideGroups {
                key: &pair.0,
                first: Some((self.side_of[run as usize], &pair.1)),
                merge: &mut self.merge,
                side_of: &self.side_of,
                boundary: None,
                done: false,
            };
            f(&pair.0, &mut values);
            while values.next().is_some() {}
            pending = values.boundary;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<'r>(m: KWayMerge<'r, u32, u32>) -> Vec<(u32, u32)> {
        m.map(|&(k, v)| (k, v)).collect()
    }

    #[test]
    fn merges_disjoint_runs() {
        let a = [(1u32, 10u32), (4, 40)];
        let b = [(2, 20), (3, 30)];
        let m = KWayMerge::new(vec![&a[..], &b[..]]);
        assert_eq!(m.total_len(), 4);
        assert_eq!(drain(m), vec![(1, 10), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn equal_keys_drain_in_run_order() {
        // Key 5 appears in runs 0, 1 and 2; values must come out in run
        // order, within-run order preserved — the stable-sort contract.
        let r0 = [(5u32, 1u32), (5, 2)];
        let r1 = [(3, 0), (5, 3)];
        let r2 = [(5, 4), (7, 9)];
        let m = KWayMerge::new(vec![&r0[..], &r1[..], &r2[..]]);
        assert_eq!(
            drain(m),
            vec![(3, 0), (5, 1), (5, 2), (5, 3), (5, 4), (7, 9)]
        );
    }

    #[test]
    fn empty_and_singleton_runs() {
        let empty: [(u32, u32); 0] = [];
        let single = [(9u32, 90u32)];
        let m = KWayMerge::new(vec![&empty[..], &single[..], &empty[..]]);
        assert_eq!(drain(m), vec![(9, 90)]);
        let none = KWayMerge::new(Vec::<&[(u32, u32)]>::new());
        assert_eq!(drain(none), vec![]);
    }

    #[test]
    fn generic_path_matches_packed_path() {
        // String keys exercise the by-reference tree; the same data as
        // u32 keys exercises the packed tree. Orders must agree.
        let s0 = [("b".to_string(), 1u32), ("d".to_string(), 2)];
        let s1 = [("a".to_string(), 3), ("b".to_string(), 4)];
        let merged: Vec<(String, u32)> = KWayMerge::new(vec![&s0[..], &s1[..]])
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(
            merged,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 1),
                ("b".to_string(), 4),
                ("d".to_string(), 2)
            ]
        );
    }

    #[test]
    fn packed_pair_keys_drain_in_run_order() {
        // (u32, u32) keys take the u128-packed path; the equal-key
        // run-order contract must hold there too.
        let r0 = [((1u32, 2u32), 10u32), ((3, 0), 11)];
        let r1 = [((1, 2), 20), ((2, 9), 21)];
        let merged: Vec<((u32, u32), u32)> = KWayMerge::new(vec![&r0[..], &r1[..]])
            .map(|&(k, v)| (k, v))
            .collect();
        assert_eq!(
            merged,
            vec![((1, 2), 10), ((1, 2), 20), ((2, 9), 21), ((3, 0), 11)]
        );
    }

    #[test]
    fn packed_u64_keys_merge_and_exhaust() {
        let r0 = [(u64::MAX, 1u32)];
        let r1 = [(0u64, 2), (u64::MAX, 3)];
        let merged: Vec<(u64, u32)> = KWayMerge::new(vec![&r0[..], &r1[..]])
            .map(|&(k, v)| (k, v))
            .collect();
        assert_eq!(merged, vec![(0, 2), (u64::MAX, 1), (u64::MAX, 3)]);
    }

    #[test]
    fn packed_extreme_key_values_stay_below_sentinels() {
        // u32::MAX keys must still sort below exhausted-run sentinels.
        let r0 = [(u32::MAX, 1u32), (u32::MAX, 2)];
        let r1 = [(0u32, 0)];
        let r2 = [(u32::MAX, 3)];
        let m = KWayMerge::new(vec![&r0[..], &r1[..], &r2[..]]);
        assert_eq!(
            drain(m),
            vec![(0, 0), (u32::MAX, 1), (u32::MAX, 2), (u32::MAX, 3)]
        );
    }

    #[test]
    fn grouped_walk_matches_group_boundaries() {
        let r0 = [(1u32, 1u32), (2, 2), (2, 3)];
        let r1 = [(2, 4), (3, 5)];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        GroupedRuns::new(vec![&r0[..], &r1[..]]).for_each_group(|k, vs| {
            groups.push((*k, vs.copied().collect()));
        });
        assert_eq!(groups, vec![(1, vec![1]), (2, vec![2, 3, 4]), (3, vec![5])]);
    }

    #[test]
    fn unread_groups_are_drained() {
        // A consumer that reads nothing must still see every group once.
        let r0 = [(1u32, 1u32), (1, 2), (2, 3)];
        let r1 = [(2, 4), (9, 5)];
        let mut keys = Vec::new();
        GroupedRuns::new(vec![&r0[..], &r1[..]]).for_each_group(|k, vs| {
            assert_eq!(vs.key(), k);
            keys.push(*k);
        });
        assert_eq!(keys, vec![1, 2, 9]);
    }

    #[test]
    fn partial_reads_do_not_bleed_between_groups() {
        let r0 = [(1u32, 1u32), (1, 2), (1, 3), (2, 4)];
        let mut firsts = Vec::new();
        GroupedRuns::new(vec![&r0[..]]).for_each_group(|k, vs| {
            firsts.push((*k, *vs.next().unwrap()));
        });
        assert_eq!(firsts, vec![(1, 1), (2, 4)]);
    }

    #[test]
    fn cogroup_ties_break_by_side_then_run() {
        // Key 5 lives on both sides and in two runs of side 0: values
        // must drain side 0 run 0, side 0 run 1, then side 1, each in
        // within-run order.
        let a0 = [(5u32, 1u32), (7, 9)];
        let a1 = [(5, 2)];
        let b0 = [(3, 0), (5, 3), (5, 4)];
        let mut groups: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
        CoGroupedRuns::new(vec![vec![&a0[..], &a1[..]], vec![&b0[..]]]).for_each_group(|k, vs| {
            groups.push((*k, vs.map(|(s, &v)| (s, v)).collect()));
        });
        assert_eq!(
            groups,
            vec![
                (3, vec![(1, 0)]),
                (5, vec![(0, 1), (0, 2), (1, 3), (1, 4)]),
                (7, vec![(0, 9)]),
            ]
        );
    }

    #[test]
    fn cogroup_partial_reads_and_empty_sides() {
        let a0 = [(1u32, 10u32), (1, 11), (2, 20)];
        let b0: [(u32, u32); 0] = [];
        let c0 = [(1, 12)];
        let mut firsts = Vec::new();
        let cg = CoGroupedRuns::new(vec![vec![&a0[..]], vec![&b0[..]], vec![&c0[..]]]);
        assert_eq!(cg.total_len(), 4);
        cg.for_each_group(|k, vs| {
            assert_eq!(vs.key(), k);
            let (side, &v) = vs.next().unwrap();
            firsts.push((*k, side, v));
        });
        assert_eq!(firsts, vec![(1, 0, 10), (2, 0, 20)]);
    }

    #[test]
    fn cogroup_single_side_matches_grouped_runs() {
        let r0 = [(1u32, 1u32), (2, 2), (2, 3)];
        let r1 = [(2, 4), (3, 5)];
        let mut plain: Vec<(u32, Vec<u32>)> = Vec::new();
        GroupedRuns::new(vec![&r0[..], &r1[..]]).for_each_group(|k, vs| {
            plain.push((*k, vs.copied().collect()));
        });
        let mut co: Vec<(u32, Vec<u32>)> = Vec::new();
        CoGroupedRuns::new(vec![vec![&r0[..], &r1[..]]]).for_each_group(|k, vs| {
            for (side, _) in vs.by_ref() {
                assert_eq!(side, 0);
            }
            co.push((*k, Vec::new()));
        });
        // Key walk agrees; re-walk collecting values.
        let mut co_vals: Vec<(u32, Vec<u32>)> = Vec::new();
        CoGroupedRuns::new(vec![vec![&r0[..], &r1[..]]]).for_each_group(|k, vs| {
            co_vals.push((*k, vs.map(|(_, &v)| v).collect()));
        });
        assert_eq!(plain, co_vals);
        assert_eq!(
            plain.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            co.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        );
    }
}
