//! Checkpointed map outputs.
//!
//! Hadoop materializes every map task's partitioned, sorted output on the
//! mapper's local disk; reducers *fetch* those spill files over HTTP. The
//! consequence that matters for fault tolerance: a failed reduce attempt
//! only re-fetches — the map phase never re-runs. This module gives the
//! in-process engine the same recovery boundary. [`JobBuilder`]
//! (crate::JobBuilder) parks each map task's reduce-bucket output in a
//! [`SpillStore`] at shuffle time, and every reduce *attempt* (first try,
//! retry, or speculative copy) fetches its input runs from the store. A
//! [`SpillStore`] can also be registered with a [`Dfs`] (crate::Dfs) via
//! [`Dfs::put_blob`](crate::Dfs::put_blob) when a driver wants the
//! checkpoint to outlive the job (multi-job pipelines re-reading
//! intermediate output).
//!
//! Runs are immutable once registered, so a fetch hands out `Arc`-shared
//! **views**, not deep copies: a retried or speculative reduce attempt
//! re-fetches pointers to the same allocations the first attempt read.
//! The replay-identical-input contract is preserved by immutability (the
//! store exposes no `&mut` access to a registered run), and the zero-copy
//! fetch is asserted by test below (`Arc::ptr_eq` across fetches).

use crate::traits::{Key, Value};
use std::sync::Arc;

/// An immutable, `Arc`-shared sorted spill run (one map task's output for
/// one reduce partition).
pub type SharedRun<K, V> = Arc<Vec<(K, V)>>;

/// Checkpointed, partitioned map output: for each reduce task, the sorted
/// runs produced by every map task that emitted into its partition, in
/// map-task order (the k-way merge's determinism tie-break relies on that
/// order).
#[derive(Debug, Clone)]
pub struct SpillStore<K, V> {
    /// `runs[r]` = the sorted runs destined for reduce task `r`.
    runs: Vec<Vec<SharedRun<K, V>>>,
}

impl<K: Key, V: Value> SpillStore<K, V> {
    /// An empty store with `reduce_tasks` partitions.
    pub fn new(reduce_tasks: usize) -> Self {
        SpillStore {
            runs: (0..reduce_tasks).map(|_| Vec::new()).collect(),
        }
    }

    /// Build a store directly from transposed shuffle output
    /// (`inputs[r]` = runs for reduce task `r`).
    pub fn from_runs(inputs: Vec<Vec<Vec<(K, V)>>>) -> Self {
        SpillStore {
            runs: inputs
                .into_iter()
                .map(|part| part.into_iter().map(Arc::new).collect())
                .collect(),
        }
    }

    /// Build a store from already-shared runs (the parallel shuffle
    /// transpose produces these). Empty runs are dropped.
    pub fn from_shared(inputs: Vec<Vec<SharedRun<K, V>>>) -> Self {
        SpillStore {
            runs: inputs
                .into_iter()
                .map(|part| part.into_iter().filter(|run| !run.is_empty()).collect())
                .collect(),
        }
    }

    /// Register one map task's output run for reduce task `r`. Empty runs
    /// are dropped (nothing to fetch).
    pub fn register(&mut self, r: usize, run: Vec<(K, V)>) {
        if !run.is_empty() {
            self.runs[r].push(Arc::new(run));
        }
    }

    /// Number of reduce partitions.
    pub fn reduce_tasks(&self) -> usize {
        self.runs.len()
    }

    /// Number of checkpointed runs for reduce task `r`.
    pub fn run_count(&self, r: usize) -> usize {
        self.runs[r].len()
    }

    /// Fetch the input runs for reduce task `r`: `Arc`-shared views of the
    /// checkpointed runs (no copy), so a retried or speculative attempt
    /// sees *the same bytes* the first attempt saw.
    pub fn fetch(&self, r: usize) -> Vec<SharedRun<K, V>> {
        self.runs[r].iter().map(Arc::clone).collect()
    }

    /// Total records checkpointed across all partitions.
    pub fn total_records(&self) -> usize {
        self.runs.iter().flatten().map(|run| run.len()).sum()
    }

    /// Total logical bytes checkpointed across all partitions.
    pub fn total_bytes(&self) -> usize {
        self.runs
            .iter()
            .flatten()
            .flat_map(|run| run.iter())
            .map(|(k, v)| k.byte_size() + v.byte_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpillStore<u32, u64> {
        let mut s = SpillStore::new(2);
        s.register(0, vec![(1, 10), (3, 30)]);
        s.register(1, vec![(2, 20)]);
        s.register(0, vec![(5, 50)]);
        s.register(1, Vec::new()); // dropped
        s
    }

    fn materialize(runs: &[SharedRun<u32, u64>]) -> Vec<Vec<(u32, u64)>> {
        runs.iter().map(|run| run.to_vec()).collect()
    }

    #[test]
    fn fetch_is_replayable() {
        let s = store();
        let first = s.fetch(0);
        let second = s.fetch(0);
        assert_eq!(first, second, "every attempt sees identical input");
        assert_eq!(
            materialize(&first),
            vec![vec![(1, 10), (3, 30)], vec![(5, 50)]]
        );
    }

    #[test]
    fn fetch_shares_allocations_instead_of_deep_cloning() {
        let s = store();
        let first = s.fetch(0);
        // A reduce attempt reads its runs; nothing it can do mutates the
        // store (runs are behind Arc with no &mut access).
        let consumed: usize = first.iter().map(|run| run.len()).sum();
        assert_eq!(consumed, 3);
        // A second (retried / speculative) attempt re-fetches *views of
        // the same allocations* — zero-copy, byte-identical by identity.
        let second = s.fetch(0);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert!(
                Arc::ptr_eq(a, b),
                "fetch must hand out shared runs, not deep clones"
            );
        }
        assert_eq!(materialize(&first), materialize(&second));
    }

    #[test]
    fn empty_runs_are_dropped() {
        let s = store();
        assert_eq!(s.run_count(1), 1);
        assert_eq!(materialize(&s.fetch(1)), vec![vec![(2, 20)]]);
    }

    #[test]
    fn accounting() {
        let s = store();
        assert_eq!(s.reduce_tasks(), 2);
        assert_eq!(s.total_records(), 4);
        assert_eq!(s.total_bytes(), 4 * (4 + 8)); // u32 key + u64 value
    }

    #[test]
    fn from_runs_round_trip() {
        let s = SpillStore::from_runs(vec![vec![vec![(7u32, 70u64)]], vec![]]);
        assert_eq!(materialize(&s.fetch(0)), vec![vec![(7, 70)]]);
        assert!(s.fetch(1).is_empty());
    }

    #[test]
    fn from_shared_drops_empty_runs() {
        let shared = vec![
            vec![Arc::new(vec![(1u32, 1u64)]), Arc::new(Vec::new())],
            vec![Arc::new(Vec::new())],
        ];
        let s = SpillStore::from_shared(shared);
        assert_eq!(s.run_count(0), 1);
        assert_eq!(s.run_count(1), 0);
    }
}
