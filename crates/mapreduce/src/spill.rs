//! Checkpointed map outputs.
//!
//! Hadoop materializes every map task's partitioned, sorted output on the
//! mapper's local disk; reducers *fetch* those spill files over HTTP. The
//! consequence that matters for fault tolerance: a failed reduce attempt
//! only re-fetches — the map phase never re-runs. This module gives the
//! in-process engine the same recovery boundary. [`JobBuilder`]
//! (crate::JobBuilder) parks each map task's reduce-bucket output in a
//! [`SpillStore`] at shuffle time, and every reduce *attempt* (first try,
//! retry, or speculative copy) fetches a fresh clone of its input runs from
//! the store. A [`SpillStore`] can also be registered with a [`Dfs`]
//! (crate::Dfs) via [`Dfs::put_blob`](crate::Dfs::put_blob) when a driver
//! wants the checkpoint to outlive the job (multi-job pipelines re-reading
//! intermediate output).

use crate::traits::{Key, Value};

/// Checkpointed, partitioned map output: for each reduce task, the sorted
/// runs produced by every map task that emitted into its partition.
///
/// Runs are write-once (the shuffle builds the store, then only reads
/// happen), so fetches hand out clones and attempts can be replayed freely.
#[derive(Debug, Clone)]
pub struct SpillStore<K, V> {
    /// `runs[r]` = the sorted runs destined for reduce task `r`.
    runs: Vec<Vec<Vec<(K, V)>>>,
}

impl<K: Key, V: Value> SpillStore<K, V> {
    /// An empty store with `reduce_tasks` partitions.
    pub fn new(reduce_tasks: usize) -> Self {
        SpillStore {
            runs: (0..reduce_tasks).map(|_| Vec::new()).collect(),
        }
    }

    /// Build a store directly from transposed shuffle output
    /// (`inputs[r]` = runs for reduce task `r`).
    pub fn from_runs(inputs: Vec<Vec<Vec<(K, V)>>>) -> Self {
        SpillStore { runs: inputs }
    }

    /// Register one map task's output run for reduce task `r`. Empty runs
    /// are dropped (nothing to fetch).
    pub fn register(&mut self, r: usize, run: Vec<(K, V)>) {
        if !run.is_empty() {
            self.runs[r].push(run);
        }
    }

    /// Number of reduce partitions.
    pub fn reduce_tasks(&self) -> usize {
        self.runs.len()
    }

    /// Number of checkpointed runs for reduce task `r`.
    pub fn run_count(&self, r: usize) -> usize {
        self.runs[r].len()
    }

    /// Fetch the input runs for reduce task `r`. Clones, so a retried or
    /// speculative attempt sees exactly what the first attempt saw.
    pub fn fetch(&self, r: usize) -> Vec<Vec<(K, V)>> {
        self.runs[r].clone()
    }

    /// Total records checkpointed across all partitions.
    pub fn total_records(&self) -> usize {
        self.runs.iter().flatten().map(Vec::len).sum()
    }

    /// Total logical bytes checkpointed across all partitions.
    pub fn total_bytes(&self) -> usize {
        self.runs
            .iter()
            .flatten()
            .flatten()
            .map(|(k, v)| k.byte_size() + v.byte_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpillStore<u32, u64> {
        let mut s = SpillStore::new(2);
        s.register(0, vec![(1, 10), (3, 30)]);
        s.register(1, vec![(2, 20)]);
        s.register(0, vec![(5, 50)]);
        s.register(1, Vec::new()); // dropped
        s
    }

    #[test]
    fn fetch_is_replayable() {
        let s = store();
        let first = s.fetch(0);
        let second = s.fetch(0);
        assert_eq!(first, second, "every attempt sees identical input");
        assert_eq!(first, vec![vec![(1, 10), (3, 30)], vec![(5, 50)]]);
    }

    #[test]
    fn empty_runs_are_dropped() {
        let s = store();
        assert_eq!(s.run_count(1), 1);
        assert_eq!(s.fetch(1), vec![vec![(2, 20)]]);
    }

    #[test]
    fn accounting() {
        let s = store();
        assert_eq!(s.reduce_tasks(), 2);
        assert_eq!(s.total_records(), 4);
        assert_eq!(s.total_bytes(), 4 * (4 + 8)); // u32 key + u64 value
    }

    #[test]
    fn from_runs_round_trip() {
        let s = SpillStore::from_runs(vec![vec![vec![(7u32, 70u64)]], vec![]]);
        assert_eq!(s.fetch(0), vec![vec![(7, 70)]]);
        assert!(s.fetch(1).is_empty());
    }
}
