//! Declarative execution plans: job DAGs with partition-granular
//! pipelining across job boundaries.
//!
//! A [`Plan`] is a DAG of [`Stage`]s — each stage is one MapReduce job
//! (mapper/reducer factories, partitioner, optional combiner) whose input
//! is either an external [`Dataset`] or the output of an earlier stage.
//! The [`PlanRunner`] executes the whole DAG on one worker pool with
//! **partition-granular pipelining** ([`PlanMode::Pipelined`]): the moment
//! reduce partition *i* of an upstream stage completes, it is sealed
//! behind an `Arc` (the same [`SharedRun`]-style immutable-view machinery
//! the shuffle uses) and scheduled as map split *i* of every downstream
//! stage — the in-process analogue of Hadoop's slow-start, where the next
//! job's maps begin while the previous job's reduces are still draining.
//! Consumed intermediate partitions are dropped eagerly (the runner
//! prefers downstream-most runnable tasks), cutting peak live intermediate
//! memory; [`PlanOutcome::peak_live_bytes`] reports the high-water mark.
//!
//! **The hard invariant:** pipelining changes *when* tasks run, never
//! *what* they compute. Per-stage task bodies are byte-for-byte the ones
//! [`JobBuilder`](crate::JobBuilder) runs (same split → map → combine →
//! partition → sort → transpose → k-way-merge → reduce pipeline, same
//! spans, same byte accounting), stage inputs are the upstream reduce
//! partitions in reduce-task order (exactly what
//! `Dataset::from_partitions` would hand the next job), and retries
//! re-fetch sealed partitions instead of re-running upstream work. So all
//! *logical* metrics — shuffle records/bytes, duplication, per-key
//! grouping, result digests — are bit-identical between
//! [`PlanMode::Pipelined`], [`PlanMode::Sequential`], and the legacy
//! imperative `JobBuilder` chain. Only wall-clock durations (and the
//! memory high-water mark) differ.

use crate::dataset::Dataset;
use crate::dfs::Dfs;
use crate::emitter::Emitter;
use crate::executor::{default_workers, panic_message};
use crate::job::{combine_runs, IdentityCombiner};
use crate::merge::{CoGroupedRuns, GroupedRuns};
use crate::metrics::{ChainMetrics, ExecSummary, JobMetrics, TaskKind, TaskStat};
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::spill::{SharedRun, SpillStore};
use crate::traits::{CoGroupReducer, Combiner, Key, Mapper, StreamingReducer, Value};
use ssj_common::ByteSize;
use ssj_faults::{Fault, FaultPlan, InjectedPanic, Phase, RetryPolicy};
use ssj_observe::{global_registry, span, Span};
use std::any::Any;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::executor::{TaskError, TaskFailure};

// ---------------------------------------------------------------------------
// Type-erased stage data.
// ---------------------------------------------------------------------------

/// One sealed partition: an `Arc<Vec<(K, V)>>` behind `dyn Any`. Upstream
/// reduce outputs are published in this form; downstream map attempts
/// re-fetch shared views (an `Arc` clone), never copies — which is what
/// makes a downstream retry free for the upstream stage.
type AnyPart = Arc<dyn Any + Send + Sync>;

/// Type-erased task factory: `(task_index, broadcast values)` → a mapper
/// or reducer instance. The broadcast slice carries the stage's resolved
/// [`StageEdge::Broadcast`] values in declaration order.
type ErasedFactory<T> = Box<dyn Fn(usize, &[AnyPart]) -> T + Send + Sync>;

/// One map task's sealed output: `Vec<SharedRun<K, V>>`, one sorted
/// (combined) run per reduce partition of its own stage.
type AnySealed = Box<dyn Any + Send>;

/// One stage's transposed map output: `SpillStore<K, V>` behind `dyn Any`.
type AnySpill = Arc<dyn Any + Send + Sync>;

/// Result of one map attempt: sealed runs, task stat, pre-combine records
/// and bytes.
type MapOut = (AnySealed, TaskStat, usize, usize);

/// Plan-identity attributes stamped on every task span so a trace can be
/// profiled: which plan execution (`plan`, `run`) and which stage of its
/// DAG the task belongs to. The task index doubles as the partition.
pub(crate) struct TaskTags<'a> {
    pub plan: &'a str,
    pub run: u64,
    pub stage: usize,
}

/// Map body: `(task, split parts, broadcast values, attempt, phase start,
/// tags)`. The split slice holds partition `task` of every split edge in
/// edge order (one entry for a single-input stage; one per shuffle
/// upstream for a fan-in stage — the map iterates their concatenation).
type MapFn =
    Box<dyn Fn(usize, &[AnyPart], &[AnyPart], u32, Instant, &TaskTags<'_>) -> MapOut + Send + Sync>;
type TransposeFn = Box<dyn Fn(Vec<AnySealed>) -> AnySpill + Send + Sync>;
/// Reduce body: `(task, spill, broadcast values, attempt, phase start,
/// tags)` — reducers built by [`Plan::add_full_broadcast`] receive the
/// stage's broadcast side inputs at attempt time.
type ReduceFn = Box<
    dyn Fn(usize, &AnySpill, &[AnyPart], u32, Instant, &TaskTags<'_>) -> (AnyPart, TaskStat)
        + Send
        + Sync,
>;
/// Co-group body: `(task, sealed upstream partitions, broadcast values,
/// attempt, phase start, tags)`. The partition slice holds partition
/// `task` of every shuffle upstream in edge order — a co-group task has
/// no map/shuffle phase of its own; it merges the already co-partitioned
/// sealed reduce outputs directly.
type CoGroupFn = Box<
    dyn Fn(usize, &[AnyPart], &[AnyPart], u32, Instant, &TaskTags<'_>) -> (AnyPart, TaskStat)
        + Send
        + Sync,
>;

/// Process-unique id for one plan execution (also used for simulated
/// timelines). Distinguishes repeated runs of the same plan within one
/// trace — e.g. an experiment running `fsjoin` once per algorithm variant.
pub fn next_plan_run_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// One input edge of a stage (internal form; [`StageEdge`] is the public
/// descriptor). A stage's input is a *list* of edges: either exactly one
/// `External` edge or one-or-more co-partitioned `Shuffle` edges provide
/// the map splits, and any number of `Broadcast` edges ship whole side
/// values to every task.
enum InputEdge {
    /// External partitions, sealed at plan-build time.
    External(Vec<AnyPart>),
    /// Output partitions of an earlier stage (by index), consumed
    /// co-partitioned: map split `i` reads reduce partition `i`.
    Shuffle(usize),
    /// Broadcast slot (see [`Plan::broadcast`]): the whole value is handed
    /// to every map and reduce attempt of the stage as `Arc` side data.
    Broadcast(usize),
}

/// Public descriptor of one stage input edge — the shape
/// [`Stage::edges`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageEdge {
    /// External input sealed at build time, with this many map splits.
    External { splits: usize },
    /// Co-partitioned shuffle edge from stage `from`'s reduce output.
    Shuffle { from: usize },
    /// Broadcast side input from plan slot `slot`.
    Broadcast { slot: usize },
}

/// What kind of work a stage's tasks perform.
enum StageKind {
    /// A full MapReduce job: map splits → map-side sort/combine →
    /// transpose (shuffle) → reduce.
    MapReduce {
        run_map: MapFn,
        transpose: TransposeFn,
        run_reduce: ReduceFn,
    },
    /// A co-group stage: **no map or shuffle phase**. Task `i` merges the
    /// sealed reduce partition `i` of every co-partitioned shuffle
    /// upstream directly (side-tagged, via the multi-source
    /// [`CoGroupedRuns`] loser-tree plane) and reduces the merged groups.
    CoGroup { run_cogroup: CoGroupFn },
}

/// One type-erased stage of a [`Plan`]. Built by the `add*` methods; the
/// closures replicate [`JobBuilder::run_full`]'s task bodies exactly.
pub struct Stage {
    name: String,
    edges: Vec<InputEdge>,
    /// Number of map tasks (= splits): the external partition count, or
    /// the shared reduce-task count of the shuffle upstreams. Always 0
    /// for co-group stages (they have no map phase).
    n_splits: usize,
    reduce_tasks: usize,
    kind: StageKind,
}

impl Stage {
    /// Stage (job) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of reduce tasks (= output partitions).
    pub fn reduce_tasks(&self) -> usize {
        self.reduce_tasks
    }

    /// Whether this is a co-group stage (no map/shuffle phase; tasks
    /// consume the sealed upstream reduce partitions directly).
    pub fn is_cogroup(&self) -> bool {
        matches!(self.kind, StageKind::CoGroup { .. })
    }

    /// The stage's input edges, in declaration order.
    pub fn edges(&self) -> Vec<StageEdge> {
        self.edges
            .iter()
            .map(|e| match e {
                InputEdge::External(parts) => StageEdge::External {
                    splits: parts.len(),
                },
                InputEdge::Shuffle(u) => StageEdge::Shuffle { from: *u },
                InputEdge::Broadcast(s) => StageEdge::Broadcast { slot: *s },
            })
            .collect()
    }

    /// Shuffle-upstream stage indices in edge order (empty = external
    /// input). A stage listing the same upstream twice reports it twice —
    /// the list is the edge multiset, not a set.
    pub fn upstreams(&self) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|e| match e {
                InputEdge::Shuffle(u) => Some(*u),
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Typed handles.
// ---------------------------------------------------------------------------

/// Typed reference to a stage's output dataset — returned by the `add`
/// methods, consumed as a later stage's input or passed to
/// [`PlanOutcome::take_output`].
pub struct StageHandle<K, V> {
    idx: usize,
    _t: PhantomData<fn() -> (K, V)>,
}

impl<K, V> Clone for StageHandle<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for StageHandle<K, V> {}

impl<K, V> StageHandle<K, V> {
    /// Index of the stage within its plan.
    pub fn index(&self) -> usize {
        self.idx
    }
}

/// A stage's input: a materialized dataset, an earlier stage's output, or
/// several co-partitioned earlier stages' outputs (fan-in).
pub enum StageInput<K, V> {
    /// External input partitions.
    Dataset(Dataset<K, V>),
    /// Output of an earlier stage in the same plan.
    Stage(StageHandle<K, V>),
    /// Outputs of several earlier stages, consumed co-partitioned: every
    /// listed stage must have the same `reduce_tasks`, and map split `i`
    /// reads partition `i` of *each* upstream (concatenated in handle
    /// order). Split `i` schedules only once every upstream has sealed
    /// its partition `i`.
    Stages(Vec<StageHandle<K, V>>),
}

impl<K, V> From<Dataset<K, V>> for StageInput<K, V> {
    fn from(d: Dataset<K, V>) -> Self {
        StageInput::Dataset(d)
    }
}

impl<K, V> From<StageHandle<K, V>> for StageInput<K, V> {
    fn from(h: StageHandle<K, V>) -> Self {
        StageInput::Stage(h)
    }
}

impl<K, V> From<Vec<StageHandle<K, V>>> for StageInput<K, V> {
    fn from(hs: Vec<StageHandle<K, V>>) -> Self {
        StageInput::Stages(hs)
    }
}

impl<K, V, const N: usize> From<[StageHandle<K, V>; N]> for StageInput<K, V> {
    fn from(hs: [StageHandle<K, V>; N]) -> Self {
        StageInput::Stages(hs.to_vec())
    }
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> StageInput<K, V> {
    /// Take a named dataset out of the [`Dfs`] as an external stage input.
    pub fn from_dfs(dfs: &mut Dfs, name: &str) -> Self {
        StageInput::Dataset(dfs.take(name))
    }
}

/// Typed reference to a broadcast value registered with
/// [`Plan::broadcast`]; pass to [`Plan::add_full_broadcast`] to give a
/// stage the value as a tracked side-input edge.
pub struct BroadcastHandle<T> {
    slot: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for BroadcastHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for BroadcastHandle<T> {}

impl<T> BroadcastHandle<T> {
    /// Broadcast slot index within its plan.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

// ---------------------------------------------------------------------------
// Plan.
// ---------------------------------------------------------------------------

/// How the [`PlanRunner`] sequences stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Partition-granular pipelining: downstream map split *i* is released
    /// the moment upstream reduce partition *i* completes; consumed
    /// partitions are dropped as soon as their last consumer map succeeds.
    #[default]
    Pipelined,
    /// Stage-barriered execution (a faithful stand-in for the legacy
    /// `JobBuilder` chain): a stage's maps are released only when its
    /// upstream stage has fully completed, and an upstream stage's output
    /// partitions are dropped only when the consuming stage completes.
    Sequential,
}

/// A declarative DAG of MapReduce stages. Build with the `add*` methods
/// (each returns a typed [`StageHandle`] usable as a later stage's input),
/// then execute with a [`PlanRunner`].
pub struct Plan {
    name: String,
    workers: usize,
    retry: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
    stages: Vec<Stage>,
    broadcasts: Vec<AnyPart>,
}

impl Plan {
    /// Start an empty plan.
    pub fn new(name: impl Into<String>) -> Self {
        Plan {
            name: name.into(),
            workers: default_workers(),
            retry: RetryPolicy::default(),
            faults: None,
            stages: Vec::new(),
            broadcasts: Vec::new(),
        }
    }

    /// Set the number of host worker threads shared by *all* stages
    /// (default: available parallelism). Affects only wall-clock, never
    /// results or logical counters.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a plan needs at least one worker thread");
        self.workers = n;
        self
    }

    /// Set the per-task retry budget and backoff (default:
    /// [`RetryPolicy::default`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject faults from a deterministic [`FaultPlan`] into every stage's
    /// task attempts (decisions are keyed by stage name, phase, task and
    /// attempt — exactly like [`JobBuilder::faults`](crate::JobBuilder)).
    /// When unset, a process-global plan installed via
    /// [`ssj_faults::install_plan`] still applies.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Plan name (spans, `JobMetrics::plan_stage`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages added so far, in declaration order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Shuffle-upstream dependencies of each stage (empty = external
    /// input), in stage order — the dependency vector
    /// [`ClusterModel::simulate_plan`](crate::ClusterModel::simulate_plan)
    /// consumes. Broadcast edges are excluded: their values exist before
    /// the plan starts, so they never gate scheduling.
    pub fn deps(&self) -> Vec<Vec<usize>> {
        self.stages.iter().map(Stage::upstreams).collect()
    }

    /// Register a broadcast side value. The value ships to consumer
    /// stages (see [`Plan::add_full_broadcast`]) as `Arc` side data: it is
    /// materialized once, handed to every task attempt, and the runner
    /// holds its reference until the last consumer stage finishes — the
    /// tracked-edge replacement for stashing shared state in a
    /// [`Dfs`] blob side channel.
    pub fn broadcast<T: Send + Sync + 'static>(&mut self, value: Arc<T>) -> BroadcastHandle<T> {
        let slot = self.broadcasts.len();
        self.broadcasts.push(value as AnyPart);
        BroadcastHandle {
            slot,
            _t: PhantomData,
        }
    }

    /// Add a stage with the default [`HashPartitioner`] and no combiner.
    pub fn add<M, R, FM, FR>(
        &mut self,
        name: impl Into<String>,
        input: impl Into<StageInput<M::InKey, M::InValue>>,
        reduce_tasks: usize,
        mapper: FM,
        reducer: FR,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        M: Mapper + 'static,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        FM: Fn(usize) -> M + Send + Sync + 'static,
        FR: Fn(usize) -> R + Send + Sync + 'static,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        self.add_full(
            name,
            input,
            reduce_tasks,
            mapper,
            reducer,
            HashPartitioner,
            None::<IdentityCombiner>,
        )
    }

    /// Add a stage with a custom partitioner and no combiner.
    pub fn add_partitioned<M, R, P, FM, FR>(
        &mut self,
        name: impl Into<String>,
        input: impl Into<StageInput<M::InKey, M::InValue>>,
        reduce_tasks: usize,
        mapper: FM,
        reducer: FR,
        partitioner: P,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        M: Mapper + 'static,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        P: Partitioner<M::OutKey> + Send + Sync + 'static,
        FM: Fn(usize) -> M + Send + Sync + 'static,
        FR: Fn(usize) -> R + Send + Sync + 'static,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        self.add_full(
            name,
            input,
            reduce_tasks,
            mapper,
            reducer,
            partitioner,
            None::<IdentityCombiner>,
        )
    }

    /// Add a stage with a custom partitioner and an optional map-side
    /// combiner. Returns a typed handle to the stage's output.
    ///
    /// The factories are owned (`'static`) because stages outlive the call
    /// site: capture shared state (token pools, pivot arrays) behind `Arc`s
    /// and `move` it in.
    ///
    /// # Panics
    /// Panics if `reduce_tasks == 0` or the input handle does not refer to
    /// an earlier stage of this plan.
    #[allow(clippy::too_many_arguments)]
    pub fn add_full<M, R, P, C, FM, FR>(
        &mut self,
        name: impl Into<String>,
        input: impl Into<StageInput<M::InKey, M::InValue>>,
        reduce_tasks: usize,
        mapper: FM,
        reducer: FR,
        partitioner: P,
        combiner: Option<C>,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        M: Mapper + 'static,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        P: Partitioner<M::OutKey> + Send + Sync + 'static,
        C: Combiner<M::OutKey, M::OutValue> + 'static,
        FM: Fn(usize) -> M + Send + Sync + 'static,
        FR: Fn(usize) -> R + Send + Sync + 'static,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        self.add_inner(
            name.into(),
            input.into(),
            Vec::new(),
            reduce_tasks,
            Box::new(move |i, _b: &[AnyPart]| mapper(i)),
            Box::new(move |i, _b: &[AnyPart]| reducer(i)),
            partitioner,
            combiner,
        )
    }

    /// Like [`Plan::add_full`], but the stage additionally consumes a
    /// [`Broadcast`](StageEdge::Broadcast) edge: the mapper/reducer
    /// factories receive the broadcast value (an `Arc` clone of the value
    /// registered with [`Plan::broadcast`]) at every task attempt. The
    /// runner keeps the value alive until all consumer stages finish and
    /// drops it then — factories must not capture it themselves, or the
    /// eager release is defeated.
    ///
    /// # Panics
    /// Panics if the broadcast handle does not belong to this plan, plus
    /// everything [`Plan::add_full`] panics on.
    #[allow(clippy::too_many_arguments)]
    pub fn add_full_broadcast<B, M, R, P, C, FM, FR>(
        &mut self,
        name: impl Into<String>,
        input: impl Into<StageInput<M::InKey, M::InValue>>,
        broadcast: BroadcastHandle<B>,
        reduce_tasks: usize,
        mapper: FM,
        reducer: FR,
        partitioner: P,
        combiner: Option<C>,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        B: Send + Sync + 'static,
        M: Mapper + 'static,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        P: Partitioner<M::OutKey> + Send + Sync + 'static,
        C: Combiner<M::OutKey, M::OutValue> + 'static,
        FM: Fn(usize, &Arc<B>) -> M + Send + Sync + 'static,
        FR: Fn(usize, &Arc<B>) -> R + Send + Sync + 'static,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        assert!(
            broadcast.slot < self.broadcasts.len(),
            "broadcast handle does not belong to this plan"
        );
        fn value<B: Send + Sync + 'static>(b: &[AnyPart]) -> Arc<B> {
            Arc::clone(&b[0])
                .downcast::<B>()
                .unwrap_or_else(|_| panic!("broadcast value has the handle's declared type"))
        }
        self.add_inner(
            name.into(),
            input.into(),
            vec![broadcast.slot],
            reduce_tasks,
            Box::new(move |i, b: &[AnyPart]| mapper(i, &value::<B>(b))),
            Box::new(move |i, b: &[AnyPart]| reducer(i, &value::<B>(b))),
            partitioner,
            combiner,
        )
    }

    /// Shared type-erased stage builder: resolves the input edges, then
    /// builds the map/transpose/reduce closures (byte-for-byte the
    /// [`JobBuilder::run_full`] task bodies).
    #[allow(clippy::too_many_arguments)]
    fn add_inner<M, R, P, C>(
        &mut self,
        name: String,
        input: StageInput<M::InKey, M::InValue>,
        bcast_slots: Vec<usize>,
        reduce_tasks: usize,
        mapper: ErasedFactory<M>,
        reducer: ErasedFactory<R>,
        partitioner: P,
        combiner: Option<C>,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        M: Mapper + 'static,
        R: StreamingReducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        P: Partitioner<M::OutKey> + Send + Sync + 'static,
        C: Combiner<M::OutKey, M::OutValue> + 'static,
        M::InKey: Clone + Sync + ByteSize,
        M::InValue: Clone + Sync + ByteSize,
    {
        assert!(reduce_tasks > 0, "a stage needs at least one reduce task");
        let num_reduce = reduce_tasks;

        let (mut edges, n_splits) = match input {
            StageInput::Dataset(d) => {
                let mut parts: Vec<AnyPart> = d
                    .into_partitions()
                    .into_iter()
                    .map(|p| Arc::new(p) as AnyPart)
                    .collect();
                if parts.is_empty() {
                    // A stage must have at least one map task or its
                    // shuffle would never trigger.
                    parts.push(Arc::new(Vec::<(M::InKey, M::InValue)>::new()));
                }
                let n = parts.len();
                (vec![InputEdge::External(parts)], n)
            }
            StageInput::Stage(h) => {
                assert!(
                    h.idx < self.stages.len(),
                    "input handle does not refer to an earlier stage of this plan"
                );
                let n = self.stages[h.idx].reduce_tasks;
                (vec![InputEdge::Shuffle(h.idx)], n)
            }
            StageInput::Stages(hs) => {
                assert!(
                    !hs.is_empty(),
                    "a multi-input stage needs at least one upstream"
                );
                for h in &hs {
                    assert!(
                        h.idx < self.stages.len(),
                        "input handle does not refer to an earlier stage of this plan"
                    );
                    assert_eq!(
                        self.stages[h.idx].reduce_tasks, self.stages[hs[0].idx].reduce_tasks,
                        "multi-input stages need co-partitioned upstreams \
                         (equal reduce_tasks)"
                    );
                }
                let n = self.stages[hs[0].idx].reduce_tasks;
                (hs.iter().map(|h| InputEdge::Shuffle(h.idx)).collect(), n)
            }
        };
        for slot in bcast_slots {
            assert!(
                slot < self.broadcasts.len(),
                "broadcast handle does not belong to this plan"
            );
            edges.push(InputEdge::Broadcast(slot));
        }

        // A commutative combiner licenses the unstable map-side bucket
        // sort — the same rule JobBuilder::run_full applies.
        let unstable_bucket_sort = combiner.as_ref().is_some_and(|c| c.is_commutative());

        let map_name = name.clone();
        let run_map: MapFn = Box::new(move |task_idx, parts, bvals, attempt, phase_start, tags| {
            let queue = phase_start.elapsed();
            let mut task_span = span("mr.task", "map");
            task_span.record("job", map_name.as_str());
            task_span.record("index", task_idx);
            task_span.record("attempt", attempt);
            task_span.record("plan", tags.plan);
            task_span.record("run", tags.run);
            task_span.record("stage", tags.stage);
            task_span.record("partition", task_idx);
            let start = Instant::now();
            let mut m = mapper(task_idx, bvals);
            let mut out: Emitter<M::OutKey, M::OutValue> = Emitter::new();
            m.setup();
            let mut input_records = 0usize;
            let mut input_bytes = 0usize;
            // A fan-in split maps the concatenation of partition
            // `task_idx` of every shuffle upstream, in edge order.
            for part in parts {
                let split: &Vec<(M::InKey, M::InValue)> = part
                    .downcast_ref()
                    .expect("plan stage map input has the stage's declared type");
                input_records += split.len();
                for (k, v) in split.iter() {
                    input_bytes += k.byte_size() + v.byte_size();
                    m.map(k.clone(), v.clone(), &mut out);
                }
            }
            m.cleanup(&mut out);

            let pre_records = out.len();
            let pre_bytes = out.bytes();
            let (pairs, _) = out.into_parts();

            let mut buckets: Vec<Vec<(M::OutKey, M::OutValue)>> =
                (0..num_reduce).map(|_| Vec::new()).collect();
            for (k, v) in pairs {
                let p = partitioner.partition(&k, num_reduce);
                debug_assert!(p < num_reduce);
                buckets[p].push((k, v));
            }
            let mut post_bytes = 0usize;
            let mut post_records = 0usize;
            for bucket in &mut buckets {
                if unstable_bucket_sort {
                    bucket.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                } else {
                    bucket.sort_by(|a, b| a.0.cmp(&b.0));
                }
                if let Some(c) = combiner.as_ref() {
                    *bucket = combine_runs(std::mem::take(bucket), c);
                }
                post_records += bucket.len();
                post_bytes += bucket
                    .iter()
                    .map(|(k, v)| k.byte_size() + v.byte_size())
                    .sum::<usize>();
            }

            task_span.record("input_records", input_records);
            task_span.record("output_records", post_records);
            let stat = TaskStat {
                kind: TaskKind::Map,
                index: task_idx,
                duration: start.elapsed(),
                queue,
                input_records,
                input_bytes,
                input_keys: 0,
                output_records: post_records,
                output_bytes: post_bytes,
            };
            let sealed: Vec<SharedRun<M::OutKey, M::OutValue>> =
                buckets.into_iter().map(Arc::new).collect();
            (Box::new(sealed) as AnySealed, stat, pre_records, pre_bytes)
        });

        let transpose: TransposeFn = Box::new(move |sealed| {
            let sealed: Vec<Vec<SharedRun<M::OutKey, M::OutValue>>> = sealed
                .into_iter()
                .map(|b| {
                    *b.downcast::<Vec<SharedRun<M::OutKey, M::OutValue>>>()
                        .expect("sealed map output has the stage's declared type")
                })
                .collect();
            let columns: Vec<Vec<SharedRun<M::OutKey, M::OutValue>>> = (0..num_reduce)
                .map(|r| {
                    sealed
                        .iter()
                        .map(|task_runs| Arc::clone(&task_runs[r]))
                        .collect()
                })
                .collect();
            Arc::new(SpillStore::from_shared(columns)) as AnySpill
        });

        let reduce_name = name.clone();
        let run_reduce: ReduceFn =
            Box::new(move |task_idx, spill, bvals, attempt, phase_start, tags| {
                let spill: &SpillStore<M::OutKey, M::OutValue> = spill
                    .downcast_ref()
                    .expect("spill store has the stage's declared type");
                let queue = phase_start.elapsed();
                let mut task_span = span("mr.task", "reduce");
                task_span.record("job", reduce_name.as_str());
                task_span.record("index", task_idx);
                task_span.record("attempt", attempt);
                task_span.record("plan", tags.plan);
                task_span.record("run", tags.run);
                task_span.record("stage", tags.stage);
                task_span.record("partition", task_idx);
                // Every attempt re-fetches shared views of the checkpointed
                // runs — a retry never re-runs the map phase.
                let runs = spill.fetch(task_idx);
                let start = Instant::now();
                let mut r = reducer(task_idx, bvals);
                let mut out: Emitter<R::OutKey, R::OutValue> = Emitter::new();
                r.setup();

                let mut input_records = 0usize;
                let mut input_bytes = 0usize;
                for run in &runs {
                    input_records += run.len();
                    input_bytes += run
                        .iter()
                        .map(|(k, v)| k.byte_size() + v.byte_size())
                        .sum::<usize>();
                }
                let slices: Vec<&[(M::OutKey, M::OutValue)]> =
                    runs.iter().map(|run| run.as_slice()).collect();
                let mut input_keys = 0usize;
                GroupedRuns::new(slices).for_each_group(|key, values| {
                    input_keys += 1;
                    r.reduce_group(key, values, &mut out);
                });
                r.cleanup(&mut out);

                let output_records = out.len();
                let output_bytes = out.bytes();
                let (pairs, _) = out.into_parts();
                task_span.record("input_records", input_records);
                task_span.record("input_keys", input_keys);
                task_span.record("output_records", output_records);
                let stat = TaskStat {
                    kind: TaskKind::Reduce,
                    index: task_idx,
                    duration: start.elapsed(),
                    queue,
                    input_records,
                    input_bytes,
                    input_keys,
                    output_records,
                    output_bytes,
                };
                (Arc::new(pairs) as AnyPart, stat)
            });

        let idx = self.stages.len();
        self.stages.push(Stage {
            name,
            edges,
            n_splits,
            reduce_tasks,
            kind: StageKind::MapReduce {
                run_map,
                transpose,
                run_reduce,
            },
        });
        StageHandle {
            idx,
            _t: PhantomData,
        }
    }

    /// Add a **co-group stage**: no map or shuffle phase. The stage's
    /// tasks consume the sealed, co-partitioned reduce partitions of the
    /// listed upstream stages directly — task `i` merges partition `i` of
    /// every upstream (side = upstream's position in `upstreams`) through
    /// the multi-source loser-tree plane and hands the reducer one
    /// side-tagged group per distinct key.
    ///
    /// This is the fan-in shape MapReduce-native joins want: where an
    /// identity-rekey fan-in stage would re-shuffle exactly the records
    /// its co-partitioned upstreams already routed, a co-group stage
    /// ships zero shuffle bytes. Scheduling is partition-granular in
    /// [`PlanMode::Pipelined`] (task `i` queues the moment partition `i`
    /// of *every* upstream seals) and barriered in
    /// [`PlanMode::Sequential`]; retries re-fetch the sealed upstream
    /// partitions without re-running any upstream work.
    ///
    /// # Panics
    /// Panics if `upstreams` is empty, a handle does not refer to an
    /// earlier stage of this plan, or the upstreams are not
    /// co-partitioned (unequal `reduce_tasks`).
    pub fn add_cogroup<R, FR>(
        &mut self,
        name: impl Into<String>,
        upstreams: Vec<StageHandle<R::InKey, R::InValue>>,
        reducer: FR,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        R: CoGroupReducer + 'static,
        FR: Fn(usize) -> R + Send + Sync + 'static,
    {
        self.add_cogroup_inner(
            name.into(),
            upstreams,
            Vec::new(),
            Box::new(move |i, _b: &[AnyPart]| reducer(i)),
        )
    }

    /// Like [`Plan::add_cogroup`], but the stage additionally consumes a
    /// [`Broadcast`](StageEdge::Broadcast) edge (same contract as
    /// [`Plan::add_full_broadcast`]: the factory receives the broadcast
    /// value at every task attempt and must not capture it).
    pub fn add_cogroup_broadcast<B, R, FR>(
        &mut self,
        name: impl Into<String>,
        upstreams: Vec<StageHandle<R::InKey, R::InValue>>,
        broadcast: BroadcastHandle<B>,
        reducer: FR,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        B: Send + Sync + 'static,
        R: CoGroupReducer + 'static,
        FR: Fn(usize, &Arc<B>) -> R + Send + Sync + 'static,
    {
        assert!(
            broadcast.slot < self.broadcasts.len(),
            "broadcast handle does not belong to this plan"
        );
        fn value<B: Send + Sync + 'static>(b: &[AnyPart]) -> Arc<B> {
            Arc::clone(&b[0])
                .downcast::<B>()
                .unwrap_or_else(|_| panic!("broadcast value has the handle's declared type"))
        }
        self.add_cogroup_inner(
            name.into(),
            upstreams,
            vec![broadcast.slot],
            Box::new(move |i, b: &[AnyPart]| reducer(i, &value::<B>(b))),
        )
    }

    /// Shared type-erased co-group stage builder.
    fn add_cogroup_inner<R>(
        &mut self,
        name: String,
        upstreams: Vec<StageHandle<R::InKey, R::InValue>>,
        bcast_slots: Vec<usize>,
        reducer: ErasedFactory<R>,
    ) -> StageHandle<R::OutKey, R::OutValue>
    where
        R: CoGroupReducer + 'static,
    {
        assert!(
            !upstreams.is_empty(),
            "a co-group stage needs at least one upstream"
        );
        for h in &upstreams {
            assert!(
                h.idx < self.stages.len(),
                "input handle does not refer to an earlier stage of this plan"
            );
            assert_eq!(
                self.stages[h.idx].reduce_tasks, self.stages[upstreams[0].idx].reduce_tasks,
                "co-group stages need co-partitioned upstreams (equal reduce_tasks)"
            );
        }
        let reduce_tasks = self.stages[upstreams[0].idx].reduce_tasks;
        let mut edges: Vec<InputEdge> = upstreams
            .iter()
            .map(|h| InputEdge::Shuffle(h.idx))
            .collect();
        for slot in bcast_slots {
            assert!(
                slot < self.broadcasts.len(),
                "broadcast handle does not belong to this plan"
            );
            edges.push(InputEdge::Broadcast(slot));
        }

        let cg_name = name.clone();
        let run_cogroup: CoGroupFn =
            Box::new(move |task_idx, parts, bvals, attempt, phase_start, tags| {
                let queue = phase_start.elapsed();
                let mut task_span = span("mr.task", "cogroup");
                task_span.record("job", cg_name.as_str());
                task_span.record("index", task_idx);
                task_span.record("attempt", attempt);
                task_span.record("plan", tags.plan);
                task_span.record("run", tags.run);
                task_span.record("stage", tags.stage);
                task_span.record("partition", task_idx);
                let start = Instant::now();
                let mut r = reducer(task_idx, bvals);
                let mut out: Emitter<R::OutKey, R::OutValue> = Emitter::new();
                r.setup();

                // One sealed partition per side (edge order). Sealed
                // reduce outputs are group-ordered (reducers see keys
                // ascending), so each is one sorted run; a reducer that
                // emitted out of key order is tolerated by stable-sorting
                // a copy — bit-for-bit what the identity-rekey fan-in
                // map's stable bucket sort would have produced.
                let side_parts: Vec<&Vec<(R::InKey, R::InValue)>> = parts
                    .iter()
                    .map(|part| {
                        part.downcast_ref()
                            .expect("co-group input has the stage's declared type")
                    })
                    .collect();
                let runs: Vec<_> = side_parts
                    .iter()
                    .map(|side| {
                        if side.windows(2).all(|w| w[0].0 <= w[1].0) {
                            Cow::Borrowed(side.as_slice())
                        } else {
                            let mut copy = (*side).clone();
                            copy.sort_by(|a, b| a.0.cmp(&b.0));
                            Cow::Owned(copy)
                        }
                    })
                    .collect();

                let mut input_records = 0usize;
                let mut input_bytes = 0usize;
                for side in &side_parts {
                    input_records += side.len();
                    input_bytes += side
                        .iter()
                        .map(|(k, v)| k.byte_size() + v.byte_size())
                        .sum::<usize>();
                }
                let mut input_keys = 0usize;
                CoGroupedRuns::new(runs.iter().map(|run| vec![&run[..]]).collect()).for_each_group(
                    |key, values| {
                        input_keys += 1;
                        r.cogroup(key, values, &mut out);
                    },
                );
                r.cleanup(&mut out);

                let output_records = out.len();
                let output_bytes = out.bytes();
                let (pairs, _) = out.into_parts();
                task_span.record("input_records", input_records);
                task_span.record("input_keys", input_keys);
                task_span.record("output_records", output_records);
                let stat = TaskStat {
                    kind: TaskKind::CoGroup,
                    index: task_idx,
                    duration: start.elapsed(),
                    queue,
                    input_records,
                    input_bytes,
                    input_keys,
                    output_records,
                    output_bytes,
                };
                (Arc::new(pairs) as AnyPart, stat)
            });

        let idx = self.stages.len();
        self.stages.push(Stage {
            name,
            edges,
            n_splits: 0,
            reduce_tasks,
            kind: StageKind::CoGroup { run_cogroup },
        });
        StageHandle {
            idx,
            _t: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Executes a [`Plan`] on one shared worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanRunner {
    mode: PlanMode,
}

impl PlanRunner {
    /// A runner with the given sequencing mode.
    pub fn new(mode: PlanMode) -> Self {
        PlanRunner { mode }
    }

    /// A pipelined runner (the default).
    pub fn pipelined() -> Self {
        PlanRunner::new(PlanMode::Pipelined)
    }

    /// A stage-barriered runner (the sequential baseline).
    pub fn sequential() -> Self {
        PlanRunner::new(PlanMode::Sequential)
    }

    /// Execute every stage of the plan.
    ///
    /// # Panics
    /// Panics with the [`TaskFailure`] message if any task exhausts its
    /// retry budget — the same failure surface as
    /// [`JobBuilder`](crate::JobBuilder).
    pub fn run(&self, plan: Plan) -> PlanOutcome {
        run_plan(plan, self.mode)
    }
}

/// The result of executing a [`Plan`].
pub struct PlanOutcome {
    /// Per-stage [`JobMetrics`] in stage-declaration order, each with
    /// [`JobMetrics::plan_stage`] set to `(plan name, stage index)`.
    pub metrics: ChainMetrics,
    /// High-water mark of live intermediate bytes: the summed logical size
    /// of reduce-output partitions that had been produced but not yet
    /// dropped (only stages with downstream consumers count — terminal
    /// outputs are results, not intermediates).
    pub peak_live_bytes: usize,
    deps: Vec<Vec<usize>>,
    outputs: Vec<Vec<Option<AnyPart>>>,
}

impl PlanOutcome {
    /// Shuffle-upstream dependencies of each stage (empty = external
    /// input) — the shape
    /// [`ClusterModel::simulate_plan`](crate::ClusterModel::simulate_plan)
    /// takes alongside [`Self::metrics`].
    pub fn deps(&self) -> &[Vec<usize>] {
        &self.deps
    }

    /// Take a stage's output dataset (partitions in reduce-task order —
    /// identical to what `JobBuilder` returns for the same job).
    ///
    /// # Panics
    /// Panics if the output was consumed by a downstream stage (consumed
    /// intermediates are dropped eagerly) or already taken.
    pub fn take_output<K: Key, V: Value>(&mut self, h: StageHandle<K, V>) -> Dataset<K, V> {
        let parts = &mut self.outputs[h.idx];
        let partitions: Vec<Vec<(K, V)>> = parts
            .iter_mut()
            .map(|slot| {
                let part = slot
                    .take()
                    .expect("stage output was consumed by a downstream stage or already taken");
                let part = part
                    .downcast::<Vec<(K, V)>>()
                    .expect("stage output has the handle's declared type");
                Arc::try_unwrap(part).unwrap_or_else(|shared| (*shared).clone())
            })
            .collect();
        Dataset::from_partitions(partitions)
    }

    /// Take a stage's output as its **sealed** partitions — the `Arc`s the
    /// reduce tasks published, in reduce-task order — without materializing
    /// a [`Dataset`].
    ///
    /// [`Self::take_output`] unwraps each partition `Arc` and falls back to
    /// a deep clone when the partition is still shared; long-lived
    /// consumers that keep the partitions as-is (the serving plane's
    /// `ServeIndex::from_plan` builds its posting directory *over* the
    /// sealed partitions) use this accessor instead: handing out the `Arc`s
    /// is O(partitions) pointer clones and never copies a single record,
    /// which the serve crate's counting-allocator test pins down.
    ///
    /// # Panics
    /// Panics if the output was consumed by a downstream stage (consumed
    /// intermediates are dropped eagerly) or already taken.
    pub fn take_sealed<K: Key, V: Value>(&mut self, h: StageHandle<K, V>) -> Vec<Arc<Vec<(K, V)>>> {
        self.outputs[h.idx]
            .iter_mut()
            .map(|slot| {
                let part = slot
                    .take()
                    .expect("stage output was consumed by a downstream stage or already taken");
                part.downcast::<Vec<(K, V)>>()
                    .expect("stage output has the handle's declared type")
            })
            .collect()
    }

    /// Take a stage's output and store it into the [`Dfs`] under `name`.
    pub fn store_output<K: Key + std::fmt::Debug, V: Value + std::fmt::Debug>(
        &mut self,
        h: StageHandle<K, V>,
        dfs: &mut Dfs,
        name: impl Into<String>,
    ) {
        let out = self.take_output(h);
        dfs.put(name, out);
    }
}

/// One schedulable attempt.
struct Queued {
    stage: usize,
    phase: Phase,
    task: usize,
    attempt: u32,
    not_before: Instant,
}

/// Per-stage mutable scheduler state.
struct StageRt {
    maps_total: usize,
    consumers: usize,
    /// Pipelined release: per map split, how many shuffle-upstream
    /// partitions are still unsealed. Split `i` queues when this reaches 0
    /// (external stages start at 0 and queue up front).
    pending_split: Vec<usize>,
    /// Pipelined release for co-group stages (which have no map splits):
    /// per reduce partition, how many shuffle-upstream partitions are
    /// still unsealed. Co-group task `i` queues when this reaches 0.
    pending_part: Vec<usize>,
    /// Sequential barrier: how many shuffle edges' upstream stages are
    /// still incomplete. All maps (co-group: all tasks) queue when this
    /// reaches 0.
    pending_up: usize,
    map_done: usize,
    reduce_done: usize,
    map_launched: Vec<u32>,
    map_failed: Vec<u32>,
    red_launched: Vec<u32>,
    red_failed: Vec<u32>,
    sealed: Vec<Option<AnySealed>>,
    spill: Option<AnySpill>,
    outputs: Vec<Option<AnyPart>>,
    out_bytes: Vec<usize>,
    part_consumers: Vec<usize>,
    map_stats: Vec<Option<TaskStat>>,
    red_stats: Vec<Option<TaskStat>>,
    pre_records: usize,
    pre_bytes: usize,
    shuffle_records: usize,
    shuffle_bytes: usize,
    exec: ExecSummary,
    started: Option<Instant>,
    map_started: Option<Instant>,
    map_elapsed: Duration,
    shuffle_elapsed: Duration,
    reduce_started: Option<Instant>,
    reduce_elapsed: Duration,
    job_span: Option<Span>,
    map_span: Option<Span>,
    reduce_span: Option<Span>,
    metrics: Option<JobMetrics>,
}

impl StageRt {
    fn new(
        maps_total: usize,
        reduce_tasks: usize,
        consumers: usize,
        fan_in: usize,
        cogroup: bool,
    ) -> Self {
        StageRt {
            maps_total,
            consumers,
            pending_split: vec![fan_in; maps_total],
            pending_part: if cogroup {
                vec![fan_in; reduce_tasks]
            } else {
                Vec::new()
            },
            pending_up: fan_in,
            map_done: 0,
            reduce_done: 0,
            map_launched: vec![0; maps_total],
            map_failed: vec![0; maps_total],
            red_launched: vec![0; reduce_tasks],
            red_failed: vec![0; reduce_tasks],
            sealed: (0..maps_total).map(|_| None).collect(),
            spill: None,
            outputs: (0..reduce_tasks).map(|_| None).collect(),
            out_bytes: vec![0; reduce_tasks],
            part_consumers: vec![0; reduce_tasks],
            map_stats: (0..maps_total).map(|_| None).collect(),
            red_stats: (0..reduce_tasks).map(|_| None).collect(),
            pre_records: 0,
            pre_bytes: 0,
            shuffle_records: 0,
            shuffle_bytes: 0,
            exec: ExecSummary::default(),
            started: None,
            map_started: None,
            map_elapsed: Duration::ZERO,
            shuffle_elapsed: Duration::ZERO,
            reduce_started: None,
            reduce_elapsed: Duration::ZERO,
            job_span: None,
            map_span: None,
            reduce_span: None,
            metrics: None,
        }
    }
}

/// Shared scheduler state.
struct RunState {
    stages: Vec<StageRt>,
    queue: VecDeque<Queued>,
    completed_stages: usize,
    fatal: Option<TaskFailure>,
    live_bytes: usize,
    peak_live_bytes: usize,
    /// Broadcast values by slot; a slot is dropped (freeing the value,
    /// barring caller-held `Arc`s) when its refcount hits zero.
    bcasts: Vec<Option<AnyPart>>,
    /// Remaining consumer *edges* per broadcast slot, decremented as each
    /// consumer stage finalizes.
    bcast_refs: Vec<usize>,
}

enum Step {
    Run(Queued),
    Wait(Option<Duration>),
    Exit,
}

/// Pick the next runnable attempt. Among runnable entries the runner
/// prefers the *downstream-most* stage (then lowest task index): draining
/// downstream maps first is what drops consumed upstream partitions
/// eagerly and keeps the live-intermediate high-water mark low. Any pick
/// order yields identical results and logical metrics — this one just
/// minimizes memory.
fn next_step(state: &mut RunState, n_stages: usize) -> Step {
    if state.fatal.is_some() {
        // Plan is lost: start no new attempts; in-flight attempts finish
        // (the scope join waits for them).
        return Step::Exit;
    }
    if state.completed_stages == n_stages {
        return Step::Exit;
    }
    let now = Instant::now();
    let mut earliest: Option<Instant> = None;
    let mut pick: Option<(usize, usize, usize)> = None; // (stage, task, queue idx)
    for (qi, item) in state.queue.iter().enumerate() {
        if item.not_before > now {
            earliest = Some(earliest.map_or(item.not_before, |e| e.min(item.not_before)));
            continue;
        }
        let better = match pick {
            None => true,
            Some((s, t, _)) => item.stage > s || (item.stage == s && item.task < t),
        };
        if better {
            pick = Some((item.stage, item.task, qi));
        }
    }
    if let Some((_, _, qi)) = pick {
        let item = state.queue.remove(qi).expect("index in range");
        return Step::Run(item);
    }
    Step::Wait(earliest.map(|t| {
        t.saturating_duration_since(now)
            .max(Duration::from_micros(100))
    }))
}

fn run_plan(mut plan: Plan, mode: PlanMode) -> PlanOutcome {
    let n_stages = plan.stages.len();
    let deps = plan.deps();
    // The runner owns the broadcast values for the duration of the run so
    // it can drop each one the moment its last consumer stage finishes.
    let bcast_init: Vec<AnyPart> = std::mem::take(&mut plan.broadcasts);
    let run = next_plan_run_id();
    let mut plan_span = span("mr.plan", &plan.name);
    plan_span.record("plan", plan.name.as_str());
    plan_span.record("run", run);
    plan_span.record("stages", n_stages);
    plan_span.record(
        "mode",
        match mode {
            PlanMode::Pipelined => "pipelined",
            PlanMode::Sequential => "sequential",
        },
    );

    // Consumer lists: which stages read stage u's output, one entry per
    // shuffle edge (a stage consuming u twice appears twice — refcounts
    // and release decrements then stay consistent).
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n_stages];
    for (j, ups) in deps.iter().enumerate() {
        for &u in ups {
            consumers[u].push(j);
        }
    }

    // Broadcast refcounts: one per consumer edge; unreferenced values are
    // dropped before the run even starts.
    let mut bcast_refs = vec![0usize; bcast_init.len()];
    for stage in &plan.stages {
        for edge in &stage.edges {
            if let InputEdge::Broadcast(s) = edge {
                bcast_refs[*s] += 1;
            }
        }
    }
    let bcasts: Vec<Option<AnyPart>> = bcast_init
        .into_iter()
        .zip(&bcast_refs)
        .map(|(v, &refs)| (refs > 0).then_some(v))
        .collect();

    let effective_faults = plan.faults.clone().or_else(ssj_faults::active_plan);
    let fault_plan = effective_faults.as_deref().filter(|p| p.is_active());
    let retry = plan.retry;
    let workers = plan.workers.max(1);

    let mut stage_rts = Vec::with_capacity(n_stages);
    let mut initial = VecDeque::new();
    for (j, stage) in plan.stages.iter().enumerate() {
        let maps_total = stage.n_splits;
        let fan_in = deps[j].len();
        stage_rts.push(StageRt::new(
            maps_total,
            stage.reduce_tasks,
            consumers[j].len(),
            fan_in,
            stage.is_cogroup(),
        ));
        if fan_in == 0 {
            // External-input stages (broadcast edges don't gate
            // scheduling) queue all their maps up front.
            for t in 0..maps_total {
                initial.push_back(Queued {
                    stage: j,
                    phase: Phase::Map,
                    task: t,
                    attempt: 0,
                    not_before: Instant::now(),
                });
            }
        }
    }

    let state = Mutex::new(RunState {
        stages: stage_rts,
        queue: initial,
        completed_stages: 0,
        fatal: None,
        live_bytes: 0,
        peak_live_bytes: 0,
        bcasts,
        bcast_refs,
    });
    let wakeup = Condvar::new();
    let plan_ref = &plan;
    let consumers_ref = &consumers;
    let deps_ref = &deps;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                plan_worker_loop(
                    plan_ref,
                    mode,
                    run,
                    fault_plan,
                    &retry,
                    consumers_ref,
                    deps_ref,
                    &state,
                    &wakeup,
                );
            });
        }
    });

    let state = state.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(failure) = state.fatal {
        panic!("{failure}");
    }
    let mut metrics = ChainMetrics::default();
    let mut outputs = Vec::with_capacity(n_stages);
    for rt in state.stages {
        metrics.push(rt.metrics.expect("completed stage has metrics"));
        outputs.push(rt.outputs);
    }
    plan_span.record("peak_live_bytes", state.peak_live_bytes);
    drop(plan_span);

    PlanOutcome {
        metrics,
        peak_live_bytes: state.peak_live_bytes,
        deps,
        outputs,
    }
}

/// Ensure the stage's job/map spans and start instants exist; returns the
/// map-phase start used for queue-time accounting.
fn ensure_stage_started(
    rt: &mut StageRt,
    stage: &Stage,
    plan_name: &str,
    run: u64,
    stage_idx: usize,
    now: Instant,
) -> Instant {
    if rt.started.is_none() {
        rt.started = Some(now);
        let mut job_span = span("mr.job", &stage.name);
        job_span.record("reduce_tasks", stage.reduce_tasks);
        // DAG-identity args: a profiler reconstructs the plan shape from
        // the job spans alone. `upstream` is the encoded shuffle-upstream
        // list ("-" = external input, else e.g. "0" or "0,1").
        job_span.record("plan", plan_name);
        job_span.record("run", run);
        job_span.record("stage", stage_idx);
        let upstreams = ssj_observe::encode_upstreams(&stage.upstreams());
        job_span.record("upstream", upstreams.as_str());
        rt.job_span = Some(job_span);
        let mut map_span = span("mr.phase", "map");
        map_span.record("job", stage.name.as_str());
        map_span.record("tasks", rt.maps_total);
        rt.map_span = Some(map_span);
        rt.map_started = Some(now);
    }
    rt.map_started.expect("map phase started")
}

/// Co-group counterpart of [`ensure_stage_started`]: a co-group stage has
/// no map or shuffle phase, so its first claimed task opens the job span
/// (tagged `kind = "cogroup"`) and the reduce phase directly.
fn ensure_cogroup_started(
    rt: &mut StageRt,
    stage: &Stage,
    plan_name: &str,
    run: u64,
    stage_idx: usize,
    now: Instant,
) -> Instant {
    if rt.started.is_none() {
        rt.started = Some(now);
        let mut job_span = span("mr.job", &stage.name);
        job_span.record("reduce_tasks", stage.reduce_tasks);
        job_span.record("plan", plan_name);
        job_span.record("run", run);
        job_span.record("stage", stage_idx);
        job_span.record("kind", "cogroup");
        let upstreams = ssj_observe::encode_upstreams(&stage.upstreams());
        job_span.record("upstream", upstreams.as_str());
        rt.job_span = Some(job_span);
        rt.reduce_started = Some(now);
        let mut reduce_span = span("mr.phase", "cogroup");
        reduce_span.record("job", stage.name.as_str());
        reduce_span.record("tasks", stage.reduce_tasks);
        rt.reduce_span = Some(reduce_span);
    }
    rt.reduce_started.expect("co-group phase started")
}

#[allow(clippy::too_many_arguments)]
/// One claimed attempt's input snapshot (all `Arc` clones taken under the
/// scheduler lock).
enum Claimed {
    Map {
        parts: Vec<AnyPart>,
        bvals: Vec<AnyPart>,
    },
    Reduce {
        spill: AnySpill,
        bvals: Vec<AnyPart>,
    },
    /// A co-group task's input: partition `task` of every shuffle
    /// upstream, in edge order (re-fetching is an `Arc` clone, so a
    /// retry never re-runs upstream work).
    CoGroup {
        parts: Vec<AnyPart>,
        bvals: Vec<AnyPart>,
    },
}

/// Clone the broadcast values a stage's edges reference, in edge order.
fn claim_broadcasts(guard: &RunState, stage: &Stage) -> Vec<AnyPart> {
    stage
        .edges
        .iter()
        .filter_map(|edge| match edge {
            InputEdge::Broadcast(s) => {
                Some(Arc::clone(guard.bcasts[*s].as_ref().expect(
                    "broadcast value is alive until all consumer stages finish",
                )))
            }
            _ => None,
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn plan_worker_loop(
    plan: &Plan,
    mode: PlanMode,
    run: u64,
    fault_plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    consumers: &[Vec<usize>],
    deps: &[Vec<usize>],
    state: &Mutex<RunState>,
    wakeup: &Condvar,
) {
    let n_stages = plan.stages.len();
    loop {
        // ---- Claim an attempt and snapshot its input under the lock. ----
        let (item, input, phase_start) = {
            let guard = state.lock().unwrap_or_else(|e| e.into_inner());
            let mut guard = guard;
            let item = match next_step(&mut guard, n_stages) {
                Step::Run(item) => item,
                Step::Exit => {
                    drop(guard);
                    wakeup.notify_all();
                    return;
                }
                Step::Wait(timeout) => {
                    match timeout {
                        Some(t) => drop(wakeup.wait_timeout(guard, t)),
                        None => drop(wakeup.wait(guard)),
                    }
                    continue;
                }
            };
            let now = Instant::now();
            let stage = &plan.stages[item.stage];
            let (input, phase_start) = match item.phase {
                Phase::Map => {
                    // Snapshot partition `task` of every split edge plus
                    // the broadcast values, in edge order. Re-fetching a
                    // sealed upstream partition is an Arc clone, alive
                    // until this map succeeds — so a retry is free for
                    // every upstream.
                    let mut parts = Vec::new();
                    for edge in &stage.edges {
                        match edge {
                            InputEdge::External(ps) => parts.push(Arc::clone(&ps[item.task])),
                            InputEdge::Shuffle(u) => parts.push(Arc::clone(
                                guard.stages[*u].outputs[item.task]
                                    .as_ref()
                                    .expect("sealed upstream partition is alive until consumed"),
                            )),
                            InputEdge::Broadcast(_) => {}
                        }
                    }
                    let bvals = claim_broadcasts(&guard, stage);
                    let rt = &mut guard.stages[item.stage];
                    let phase_start =
                        ensure_stage_started(rt, stage, &plan.name, run, item.stage, now);
                    rt.map_launched[item.task] += 1;
                    rt.exec.attempts += 1;
                    (Claimed::Map { parts, bvals }, phase_start)
                }
                Phase::Reduce if stage.is_cogroup() => {
                    // Snapshot partition `task` of every shuffle upstream
                    // plus the broadcast values, in edge order — the same
                    // sealed-partition re-fetch a fan-in map performs,
                    // minus the map/shuffle it would have paid.
                    let mut parts = Vec::new();
                    for edge in &stage.edges {
                        match edge {
                            InputEdge::Shuffle(u) => parts.push(Arc::clone(
                                guard.stages[*u].outputs[item.task]
                                    .as_ref()
                                    .expect("sealed upstream partition is alive until consumed"),
                            )),
                            InputEdge::External(_) | InputEdge::Broadcast(_) => {}
                        }
                    }
                    let bvals = claim_broadcasts(&guard, stage);
                    let rt = &mut guard.stages[item.stage];
                    let phase_start =
                        ensure_cogroup_started(rt, stage, &plan.name, run, item.stage, now);
                    rt.red_launched[item.task] += 1;
                    rt.exec.attempts += 1;
                    (Claimed::CoGroup { parts, bvals }, phase_start)
                }
                Phase::Reduce => {
                    let bvals = claim_broadcasts(&guard, stage);
                    let rt = &mut guard.stages[item.stage];
                    let spill =
                        Arc::clone(rt.spill.as_ref().expect("spill exists once reduces queue"));
                    let phase_start = rt.reduce_started.expect("reduce phase started");
                    rt.red_launched[item.task] += 1;
                    rt.exec.attempts += 1;
                    (Claimed::Reduce { spill, bvals }, phase_start)
                }
            };
            (item, input, phase_start)
        };

        // ---- Run the attempt outside the lock (executor semantics). ----
        let stage = &plan.stages[item.stage];
        let decision =
            fault_plan.and_then(|p| p.decide(&stage.name, item.phase, item.task, item.attempt));

        enum Body {
            Map(MapOut),
            Reduce((AnyPart, TaskStat)),
        }
        let outcome: Result<Body, TaskError> = match decision {
            Some(Fault::Error) => Err(TaskError::Injected(Fault::Error)),
            Some(Fault::Panic) => {
                // A real unwind, so the capture path is exercised for real.
                let payload = InjectedPanic {
                    job: stage.name.clone(),
                    phase: item.phase,
                    task: item.task,
                    attempt: item.attempt,
                };
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    std::panic::panic_any(payload);
                }));
                debug_assert!(caught.is_err());
                Err(TaskError::Injected(Fault::Panic))
            }
            other => {
                if matches!(other, Some(Fault::Straggle)) {
                    if let Some(p) = fault_plan {
                        std::thread::sleep(p.straggler_delay);
                    }
                }
                let tags = TaskTags {
                    plan: &plan.name,
                    run,
                    stage: item.stage,
                };
                let run_body = || match &input {
                    Claimed::Map { parts, bvals } => {
                        let StageKind::MapReduce { run_map, .. } = &stage.kind else {
                            unreachable!("map attempts only queue for MapReduce stages")
                        };
                        Body::Map(run_map(
                            item.task,
                            parts,
                            bvals,
                            item.attempt,
                            phase_start,
                            &tags,
                        ))
                    }
                    Claimed::Reduce { spill, bvals } => {
                        let StageKind::MapReduce { run_reduce, .. } = &stage.kind else {
                            unreachable!("spill reduces only queue for MapReduce stages")
                        };
                        Body::Reduce(run_reduce(
                            item.task,
                            spill,
                            bvals,
                            item.attempt,
                            phase_start,
                            &tags,
                        ))
                    }
                    Claimed::CoGroup { parts, bvals } => {
                        let StageKind::CoGroup { run_cogroup } = &stage.kind else {
                            unreachable!("co-group attempts only queue for CoGroup stages")
                        };
                        Body::Reduce(run_cogroup(
                            item.task,
                            parts,
                            bvals,
                            item.attempt,
                            phase_start,
                            &tags,
                        ))
                    }
                };
                match catch_unwind(AssertUnwindSafe(run_body)) {
                    Ok(out) => Ok(out),
                    Err(payload) => {
                        if payload.downcast_ref::<InjectedPanic>().is_some() {
                            Err(TaskError::Injected(Fault::Panic))
                        } else {
                            Err(TaskError::Panicked(panic_message(&payload)))
                        }
                    }
                }
            }
        };
        drop(input);

        // ---- Record the outcome under the lock. ----
        let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(fault) = &decision {
            let rt = &mut guard.stages[item.stage];
            match fault {
                Fault::Error => rt.exec.injected_errors += 1,
                Fault::Panic => rt.exec.injected_panics += 1,
                Fault::Straggle => rt.exec.injected_stragglers += 1,
            }
        }
        match outcome {
            Ok(Body::Map((sealed, stat, pre_r, pre_b))) => {
                on_map_done(
                    &mut guard, plan, mode, consumers, deps, item.stage, item.task, sealed, stat,
                    pre_r, pre_b,
                );
            }
            Ok(Body::Reduce((part, stat))) => {
                on_reduce_done(
                    &mut guard, plan, mode, consumers, deps, item.stage, item.task, part, stat,
                );
            }
            Err(error) => {
                let max_attempts = retry.max_attempts.max(1);
                let rt = &mut guard.stages[item.stage];
                let (failed, next_attempt) = match item.phase {
                    Phase::Map => {
                        rt.map_failed[item.task] += 1;
                        (rt.map_failed[item.task], rt.map_launched[item.task])
                    }
                    Phase::Reduce => {
                        rt.red_failed[item.task] += 1;
                        (rt.red_failed[item.task], rt.red_launched[item.task])
                    }
                };
                if failed >= max_attempts {
                    guard.fatal.get_or_insert(TaskFailure {
                        job: stage.name.clone(),
                        phase: item.phase,
                        index: item.task,
                        attempts: failed,
                        error,
                    });
                } else {
                    let backoff = retry.backoff(failed - 1);
                    rt.exec.retries += 1;
                    guard.queue.push_back(Queued {
                        stage: item.stage,
                        phase: item.phase,
                        task: item.task,
                        attempt: next_attempt,
                        not_before: Instant::now() + backoff,
                    });
                }
            }
        }
        drop(guard);
        wakeup.notify_all();
    }
}

/// Record a successful map attempt; trigger the stage's shuffle when it was
/// the last one.
#[allow(clippy::too_many_arguments)]
fn on_map_done(
    state: &mut RunState,
    plan: &Plan,
    mode: PlanMode,
    consumers: &[Vec<usize>],
    deps: &[Vec<usize>],
    stage_idx: usize,
    task: usize,
    sealed: AnySealed,
    stat: TaskStat,
    pre_records: usize,
    pre_bytes: usize,
) {
    {
        let rt = &mut state.stages[stage_idx];
        if rt.map_stats[task].is_some() {
            return; // stale duplicate (cannot happen without speculation)
        }
        rt.pre_records += pre_records;
        rt.pre_bytes += pre_bytes;
        rt.shuffle_records += stat.output_records;
        rt.shuffle_bytes += stat.output_bytes;
        rt.sealed[task] = Some(sealed);
        rt.map_stats[task] = Some(stat);
        rt.map_done += 1;
    }

    // Pipelined mode: this map has durably consumed partition `task` of
    // every shuffle upstream — release each edge's hold on it.
    if mode == PlanMode::Pipelined {
        for &u in &deps[stage_idx] {
            release_partition(state, u, task);
        }
    }

    let rt = &mut state.stages[stage_idx];
    if rt.map_done < rt.maps_total {
        return;
    }

    // ---- Last map done: close the map phase and shuffle inline. --------
    rt.map_elapsed = rt.map_started.map(|s| s.elapsed()).unwrap_or_default();
    rt.map_span = None;

    let shuffle_start = Instant::now();
    let mut shuffle_span = span("mr.phase", "shuffle");
    shuffle_span.record("job", plan.stages[stage_idx].name.as_str());
    let sealed: Vec<AnySealed> = rt
        .sealed
        .iter_mut()
        .map(|s| s.take().expect("every map task sealed its output"))
        .collect();
    let StageKind::MapReduce { transpose, .. } = &plan.stages[stage_idx].kind else {
        unreachable!("maps only run for MapReduce stages")
    };
    let spill = transpose(sealed);
    shuffle_span.record("records", rt.shuffle_records);
    shuffle_span.record("bytes", rt.shuffle_bytes);
    drop(shuffle_span);
    rt.shuffle_elapsed = shuffle_start.elapsed();
    rt.spill = Some(spill);

    let now = Instant::now();
    rt.reduce_started = Some(now);
    let mut reduce_span = span("mr.phase", "reduce");
    reduce_span.record("job", plan.stages[stage_idx].name.as_str());
    reduce_span.record("tasks", plan.stages[stage_idx].reduce_tasks);
    rt.reduce_span = Some(reduce_span);

    let _ = consumers;
    for t in 0..plan.stages[stage_idx].reduce_tasks {
        state.queue.push_back(Queued {
            stage: stage_idx,
            phase: Phase::Reduce,
            task: t,
            attempt: 0,
            not_before: now,
        });
    }
}

/// Record a successful reduce attempt; release downstream map splits
/// (pipelined) and finalize the stage when it was the last one.
#[allow(clippy::too_many_arguments)]
fn on_reduce_done(
    state: &mut RunState,
    plan: &Plan,
    mode: PlanMode,
    consumers: &[Vec<usize>],
    deps: &[Vec<usize>],
    stage_idx: usize,
    task: usize,
    part: AnyPart,
    stat: TaskStat,
) {
    let now = Instant::now();
    {
        let rt = &mut state.stages[stage_idx];
        if rt.red_stats[task].is_some() {
            return; // stale duplicate (cannot happen without speculation)
        }
        let bytes = stat.output_bytes;
        rt.out_bytes[task] = bytes;
        rt.outputs[task] = Some(part);
        rt.red_stats[task] = Some(stat);
        rt.reduce_done += 1;
        if rt.consumers > 0 {
            rt.part_consumers[task] = rt.consumers;
            state.live_bytes += bytes;
            state.peak_live_bytes = state.peak_live_bytes.max(state.live_bytes);
        }
    }

    // Pipelined mode: a successful co-group task has durably consumed
    // partition `task` of every shuffle upstream (the analogue of a
    // fan-in map's consumption) — release each edge's hold on it.
    if mode == PlanMode::Pipelined && plan.stages[stage_idx].is_cogroup() {
        for &u in &deps[stage_idx] {
            release_partition(state, u, task);
        }
    }

    // Pipelined mode: partition `task` is sealed — decrement each
    // consumer edge's pending count for split `task`; the split queues
    // only when EVERY shuffle upstream has sealed its partition `task`
    // (the multi-input release rule; single-input stages decrement
    // straight from 1 to 0). A co-group consumer has no map splits: its
    // *task* `task` queues directly — as Phase::Reduce — the moment every
    // upstream seals partition `task`.
    if mode == PlanMode::Pipelined {
        for &j in &consumers[stage_idx] {
            let consumer_cogroup = plan.stages[j].is_cogroup();
            let rt = &mut state.stages[j];
            let pending = if consumer_cogroup {
                &mut rt.pending_part
            } else {
                &mut rt.pending_split
            };
            debug_assert!(pending[task] > 0, "split released too often");
            pending[task] -= 1;
            if pending[task] == 0 {
                state.queue.push_back(Queued {
                    stage: j,
                    phase: if consumer_cogroup {
                        Phase::Reduce
                    } else {
                        Phase::Map
                    },
                    task,
                    attempt: 0,
                    not_before: now,
                });
            }
        }
    }

    if state.stages[stage_idx].reduce_done < plan.stages[stage_idx].reduce_tasks {
        return;
    }

    // ---- Last reduce done: finalize the stage. -------------------------
    finalize_stage(state, plan, stage_idx);
    state.completed_stages += 1;

    if mode == PlanMode::Sequential {
        // Stage barrier: a downstream stage's maps become runnable only
        // when ALL of its upstream stages have completed, and an upstream
        // stage's output partitions are released only when the consuming
        // stage completes (the fair stand-in for the legacy chain, which
        // kept whole intermediate datasets alive across job boundaries).
        for &j in &consumers[stage_idx] {
            let consumer_cogroup = plan.stages[j].is_cogroup();
            let rt = &mut state.stages[j];
            debug_assert!(rt.pending_up > 0, "upstream edge completed too often");
            rt.pending_up -= 1;
            if rt.pending_up == 0 {
                // A MapReduce consumer's maps become runnable; a co-group
                // consumer has no maps — its tasks queue directly.
                let (phase, tasks) = if consumer_cogroup {
                    (Phase::Reduce, plan.stages[j].reduce_tasks)
                } else {
                    (Phase::Map, rt.maps_total)
                };
                for t in 0..tasks {
                    state.queue.push_back(Queued {
                        stage: j,
                        phase,
                        task: t,
                        attempt: 0,
                        not_before: now,
                    });
                }
            }
        }
        for &u in &deps[stage_idx] {
            for t in 0..state.stages[u].outputs.len() {
                release_partition(state, u, t);
            }
        }
    }
}

/// One consumer is done with upstream partition `(u, t)`; drop the
/// partition when it was the last.
fn release_partition(state: &mut RunState, u: usize, t: usize) {
    let rt = &mut state.stages[u];
    debug_assert!(rt.part_consumers[t] > 0, "partition released too often");
    rt.part_consumers[t] -= 1;
    if rt.part_consumers[t] == 0 {
        rt.outputs[t] = None;
        state.live_bytes -= rt.out_bytes[t];
    }
}

/// Assemble the stage's [`JobMetrics`], close its spans, and emit the
/// per-job registry counters — the exact block `JobBuilder::run_full`
/// emits, so observability output is independent of which execution layer
/// ran the job.
fn finalize_stage(state: &mut RunState, plan: &Plan, stage_idx: usize) {
    let stage = &plan.stages[stage_idx];
    // This stage is done with its broadcast side inputs: drop each value
    // whose last consumer edge just finished.
    for edge in &stage.edges {
        if let InputEdge::Broadcast(s) = edge {
            debug_assert!(state.bcast_refs[*s] > 0, "broadcast released too often");
            state.bcast_refs[*s] -= 1;
            if state.bcast_refs[*s] == 0 {
                state.bcasts[*s] = None;
            }
        }
    }
    let rt = &mut state.stages[stage_idx];
    rt.reduce_elapsed = rt.reduce_started.map(|s| s.elapsed()).unwrap_or_default();
    rt.reduce_span = None;
    rt.spill = None;

    let map_stats: Vec<TaskStat> = rt
        .map_stats
        .iter_mut()
        .map(|s| s.take().expect("map task completed"))
        .collect();
    let reduce_stats: Vec<TaskStat> = rt
        .red_stats
        .iter_mut()
        .map(|s| s.take().expect("reduce task completed"))
        .collect();

    let metrics = JobMetrics {
        name: stage.name.clone(),
        plan_stage: Some((plan.name.clone(), stage_idx)),
        cogroup: stage.is_cogroup(),
        map_tasks: map_stats,
        reduce_tasks: reduce_stats,
        shuffle_records: rt.shuffle_records,
        shuffle_bytes: rt.shuffle_bytes,
        pre_combine_records: rt.pre_records,
        pre_combine_bytes: rt.pre_bytes,
        elapsed: rt.started.map(|s| s.elapsed()).unwrap_or_default(),
        map_elapsed: rt.map_elapsed,
        shuffle_elapsed: rt.shuffle_elapsed,
        reduce_elapsed: rt.reduce_elapsed,
        exec: rt.exec,
    };

    if let Some(job_span) = rt.job_span.as_mut() {
        job_span.record("shuffle_records", metrics.shuffle_records);
        job_span.record("shuffle_bytes", metrics.shuffle_bytes);
        job_span.record("pre_combine_records", metrics.pre_combine_records);
        if metrics.exec.retries > 0 {
            job_span.record("retries", metrics.exec.retries);
        }
    }
    rt.job_span = None;

    if let Some(reg) = global_registry() {
        crate::telemetry::record_job_telemetry(&reg, &metrics);
        crate::telemetry::record_stage_fan_in(&reg, &metrics.name, stage.upstreams().len());
    }

    rt.metrics = Some(metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;
    use crate::merge::SideGroups;
    use crate::traits::{Reducer, SumCombiner};

    /// Emits (token, 1) for each whitespace token.
    struct Tokenize;
    impl Mapper for Tokenize {
        type InKey = u32;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&mut self, _k: u32, line: String, out: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    /// Sums counts per token.
    struct Sum;
    impl Reducer for Sum {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&mut self, k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.into_iter().sum());
        }
    }

    /// Re-keys each (word, count) by count bucket.
    struct ByCount;
    impl Mapper for ByCount {
        type InKey = String;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = String;
        fn map(&mut self, w: String, c: u64, out: &mut Emitter<u64, String>) {
            out.emit(c, w);
        }
    }

    /// Counts words per count bucket.
    struct CountWords;
    impl Reducer for CountWords {
        type InKey = u64;
        type InValue = String;
        type OutKey = u64;
        type OutValue = u64;
        fn reduce(&mut self, k: &u64, vs: Vec<String>, out: &mut Emitter<u64, u64>) {
            out.emit(*k, vs.len() as u64);
        }
    }

    fn wc_input() -> Dataset<u32, String> {
        Dataset::from_records(
            vec![
                (0, "the quick brown fox".to_string()),
                (1, "the lazy dog".to_string()),
                (2, "the fox the dog".to_string()),
            ],
            2,
        )
    }

    fn sorted<K: Ord, V: Ord>(d: Dataset<K, V>) -> Vec<(K, V)>
    where
        (K, V): Ord,
    {
        let mut v: Vec<(K, V)> = d.into_records().collect();
        v.sort();
        v
    }

    /// The logical (timing-free) signature of one job's metrics.
    fn logical(m: &JobMetrics) -> impl PartialEq + std::fmt::Debug {
        (
            m.name.clone(),
            m.shuffle_records,
            m.shuffle_bytes,
            m.pre_combine_records,
            m.pre_combine_bytes,
            m.map_tasks
                .iter()
                .map(|t| {
                    (
                        t.index,
                        t.input_records,
                        t.input_bytes,
                        t.output_records,
                        t.output_bytes,
                    )
                })
                .collect::<Vec<_>>(),
            m.reduce_tasks
                .iter()
                .map(|t| {
                    (
                        t.index,
                        t.input_records,
                        t.input_bytes,
                        t.output_records,
                        t.output_bytes,
                    )
                })
                .collect::<Vec<_>>(),
            m.exec,
        )
    }

    fn two_stage_plan(workers: usize) -> (Plan, StageHandle<u64, u64>) {
        let mut plan = Plan::new("wc-plan").with_workers(workers);
        let counts = plan.add_full::<Tokenize, Sum, _, _, _, _>(
            "wc",
            wc_input(),
            3,
            |_| Tokenize,
            |_| Sum,
            HashPartitioner,
            Some(SumCombiner),
        );
        let buckets = plan.add::<ByCount, CountWords, _, _>(
            "by-count",
            counts,
            2,
            |_| ByCount,
            |_| CountWords,
        );
        (plan, buckets)
    }

    #[test]
    fn single_stage_matches_job_builder() {
        let (jb_out, jb_m) = JobBuilder::new("wc").reduce_tasks(3).run_full(
            &wc_input(),
            |_| Tokenize,
            |_| Sum,
            &HashPartitioner,
            Some(&SumCombiner),
        );

        let mut plan = Plan::new("solo");
        let h = plan.add_full::<Tokenize, Sum, _, _, _, _>(
            "wc",
            wc_input(),
            3,
            |_| Tokenize,
            |_| Sum,
            HashPartitioner,
            Some(SumCombiner),
        );
        let mut outcome = PlanRunner::pipelined().run(plan);
        let plan_out = outcome.take_output(h);

        // Identical partitions (not just identical multiset of records).
        assert_eq!(jb_out.partitions(), plan_out.partitions());
        let pm = &outcome.metrics.jobs[0];
        assert_eq!(
            format!("{:?}", logical(pm)),
            format!("{:?}", logical(&jb_m))
        );
        assert_eq!(pm.plan_stage, Some(("solo".to_string(), 0)));
        // A terminal stage's output is a result, not a live intermediate.
        assert_eq!(outcome.peak_live_bytes, 0);
    }

    #[test]
    fn pipelined_equals_sequential_across_workers() {
        for workers in [1, 2, 7] {
            let (plan_a, h_a) = two_stage_plan(workers);
            let (plan_b, h_b) = two_stage_plan(workers);
            let mut piped = PlanRunner::pipelined().run(plan_a);
            let mut seq = PlanRunner::sequential().run(plan_b);
            assert_eq!(
                sorted(piped.take_output(h_a)),
                sorted(seq.take_output(h_b)),
                "results must not depend on sequencing (workers={workers})"
            );
            for (a, b) in piped.metrics.jobs.iter().zip(&seq.metrics.jobs) {
                assert_eq!(
                    format!("{:?}", logical(a)),
                    format!("{:?}", logical(b)),
                    "logical metrics must not depend on sequencing (workers={workers})"
                );
            }
            // The upstream intermediate lives strictly shorter when
            // pipelined (dropped per partition as downstream maps drain).
            assert!(piped.peak_live_bytes <= seq.peak_live_bytes);
        }
    }

    #[test]
    fn pipelined_single_worker_drops_partitions_eagerly() {
        // With one worker the downstream-first pick order consumes each
        // upstream partition right after it is produced, so at most one
        // partition is ever live; the sequential barrier keeps all three.
        let (plan_a, _) = two_stage_plan(1);
        let (plan_b, _) = two_stage_plan(1);
        let piped = PlanRunner::pipelined().run(plan_a);
        let seq = PlanRunner::sequential().run(plan_b);
        assert!(piped.peak_live_bytes < seq.peak_live_bytes);
        let upstream_total: usize = seq.metrics.jobs[0]
            .reduce_tasks
            .iter()
            .map(|t| t.output_bytes)
            .sum();
        assert_eq!(seq.peak_live_bytes, upstream_total);
    }

    #[test]
    fn consumed_intermediate_cannot_be_taken() {
        let (plan, _) = two_stage_plan(2);
        // Reconstruct the intermediate handle: stage 0 output.
        let h0: StageHandle<String, u64> = StageHandle {
            idx: 0,
            _t: PhantomData,
        };
        let mut outcome = PlanRunner::pipelined().run(plan);
        let r = catch_unwind(AssertUnwindSafe(|| outcome.take_output(h0)));
        assert!(r.is_err(), "consumed intermediates are dropped eagerly");
    }

    #[test]
    fn injected_downstream_map_fault_refetches_sealed_partition() {
        // Fail the first attempt of every map task of the downstream stage:
        // the retries must succeed by re-fetching the sealed upstream
        // partitions, with zero extra upstream attempts.
        let faults = FaultPlan::new(7).with_target("by-count", Phase::Map, Fault::Error, 1);
        let (clean, h_clean) = two_stage_plan(2);
        let (mut faulty, h_faulty) = {
            let (p, h) = two_stage_plan(2);
            (p.with_faults(faults), h)
        };
        faulty = faulty.with_retry(RetryPolicy::default());
        let mut clean_out = PlanRunner::pipelined().run(clean);
        let mut faulty_out = PlanRunner::pipelined().run(faulty);
        assert_eq!(
            sorted(clean_out.take_output(h_clean)),
            sorted(faulty_out.take_output(h_faulty))
        );
        let up = &faulty_out.metrics.jobs[0];
        let down = &faulty_out.metrics.jobs[1];
        // Upstream ran exactly once per task — its reduces were NOT re-run.
        assert_eq!(
            up.exec.attempts,
            (up.map_tasks.len() + up.reduce_tasks.len()) as u64
        );
        assert_eq!(up.exec.retries, 0);
        // Downstream retried every map once.
        assert_eq!(down.exec.retries, down.map_tasks.len() as u64);
        assert_eq!(down.exec.injected_errors, down.map_tasks.len() as u64);
    }

    #[test]
    fn exhausted_retries_panic_with_task_failure() {
        let (plan, _) = two_stage_plan(2);
        let plan = plan
            .with_faults(FaultPlan::new(7).with_target("wc", Phase::Reduce, Fault::Error, u32::MAX))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            });
        let r = catch_unwind(AssertUnwindSafe(|| PlanRunner::pipelined().run(plan)));
        let err = match r {
            Ok(_) => panic!("retry budget must exhaust"),
            Err(payload) => payload,
        };
        let msg = panic_message(&err);
        assert!(
            msg.contains("\"wc\"") && msg.contains("failed after 2 attempts"),
            "{msg}"
        );
    }

    #[test]
    fn dfs_round_trip() {
        let mut dfs = Dfs::new();
        dfs.put("lines", wc_input());
        let mut plan = Plan::new("dfs-plan");
        let h = plan.add::<Tokenize, Sum, _, _>(
            "wc",
            StageInput::from_dfs(&mut dfs, "lines"),
            2,
            |_| Tokenize,
            |_| Sum,
        );
        let mut outcome = PlanRunner::pipelined().run(plan);
        outcome.store_output(h, &mut dfs, "counts");
        let counts: &Dataset<String, u64> = dfs.get("counts");
        assert_eq!(counts.total_records(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one reduce task")]
    fn zero_reduce_tasks_rejected() {
        let mut plan = Plan::new("bad");
        let _ = plan.add::<Tokenize, Sum, _, _>("wc", wc_input(), 0, |_| Tokenize, |_| Sum);
    }

    #[test]
    fn take_sealed_matches_take_output_without_unsealing() {
        // Same plan twice: one outcome drained via take_output (the
        // materializing path), one via take_sealed. Records must agree and
        // the sealed partitions must be exclusively owned (terminal stage
        // outputs have no other holders), proving take_sealed hands out
        // the reduce tasks' own Arcs rather than copies.
        let (plan_a, h_a) = two_stage_plan(2);
        let (plan_b, h_b) = two_stage_plan(2);
        let want = sorted(PlanRunner::pipelined().run(plan_a).take_output(h_a));

        let mut outcome = PlanRunner::pipelined().run(plan_b);
        let sealed = outcome.take_sealed(h_b);
        assert_eq!(sealed.len(), 2, "one Arc per reduce partition");
        for part in &sealed {
            assert_eq!(Arc::strong_count(part), 1);
        }
        let mut got: Vec<(u64, u64)> = sealed.iter().flat_map(|p| p.iter().copied()).collect();
        got.sort();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn take_sealed_panics_on_double_take() {
        let (plan, h) = two_stage_plan(2);
        let mut outcome = PlanRunner::pipelined().run(plan);
        let _first = outcome.take_sealed(h);
        let _second = outcome.take_sealed(h);
    }

    // ---- co-group stages --------------------------------------------------

    /// Identity mapper over the word-count output type.
    struct RekeyId;
    impl Mapper for RekeyId {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn map(&mut self, k: String, v: u64, out: &mut Emitter<String, u64>) {
            out.emit(k, v);
        }
    }

    /// Emits every group value in arrival order, unchanged.
    struct PassThrough;
    impl StreamingReducer for PassThrough {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce_group(
            &mut self,
            k: &String,
            values: &mut crate::merge::GroupValues<'_, '_, String, u64>,
            out: &mut Emitter<String, u64>,
        ) {
            for v in values {
                out.emit(k.clone(), *v);
            }
        }
    }

    /// Co-group counterpart of [`PassThrough`]: drops the side tags.
    struct PassThroughCo;
    impl CoGroupReducer for PassThroughCo {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn cogroup(
            &mut self,
            k: &String,
            values: &mut SideGroups<'_, '_, String, u64>,
            out: &mut Emitter<String, u64>,
        ) {
            for (_side, v) in values {
                out.emit(k.clone(), *v);
            }
        }
    }

    fn wc_input_b() -> Dataset<u32, String> {
        Dataset::from_records(
            vec![
                (0, "dog fox the wolf".to_string()),
                (1, "quick quick wolf".to_string()),
            ],
            2,
        )
    }

    fn two_upstreams(plan: &mut Plan) -> Vec<StageHandle<String, u64>> {
        let a = plan.add::<Tokenize, Sum, _, _>("wc-a", wc_input(), 3, |_| Tokenize, |_| Sum);
        let b = plan.add::<Tokenize, Sum, _, _>("wc-b", wc_input_b(), 3, |_| Tokenize, |_| Sum);
        vec![a, b]
    }

    /// A co-group stage must reproduce the identity-rekey fan-in stage
    /// partition-for-partition: the rekey map of split `t` concatenates
    /// partition `t` of every upstream in edge order and stable-sorts, so
    /// equal keys surface in side order — exactly the co-group merge's
    /// (key, side, run) tie-break.
    #[test]
    fn cogroup_matches_rekey_fan_in() {
        let mut rekey_plan = Plan::new("rekey").with_workers(2);
        let ups = two_upstreams(&mut rekey_plan);
        let rekey_h = rekey_plan.add::<RekeyId, PassThrough, _, _>(
            "fan-in",
            StageInput::Stages(ups),
            3,
            |_| RekeyId,
            |_| PassThrough,
        );
        let mut rekey_out = PlanRunner::pipelined().run(rekey_plan);

        let mut co_plan = Plan::new("co").with_workers(2);
        let ups = two_upstreams(&mut co_plan);
        let co_h = co_plan.add_cogroup::<PassThroughCo, _>("fan-in", ups, |_| PassThroughCo);
        let mut co_out = PlanRunner::pipelined().run(co_plan);

        // Identical partitions, not just an identical multiset.
        assert_eq!(
            rekey_out.take_output(rekey_h).partitions(),
            co_out.take_output(co_h).partitions()
        );

        let rekey_m = &rekey_out.metrics.jobs[2];
        let co_m = &co_out.metrics.jobs[2];
        assert!(co_m.cogroup && !rekey_m.cogroup);
        assert!(co_m.map_tasks.is_empty());
        assert_eq!(co_m.shuffle_bytes, 0);
        assert_eq!(co_m.shuffle_records, 0);
        // What the stage read in place is exactly what the rekey stage
        // re-shuffled.
        assert_eq!(co_m.cogroup_shuffle_bytes_saved(), rekey_m.shuffle_bytes);
        assert_eq!(rekey_m.cogroup_shuffle_bytes_saved(), 0);
        // Per-task reduce-side accounting agrees (records, bytes, keys,
        // outputs) — the skew telemetry sees the same distribution.
        for (a, b) in rekey_m.reduce_tasks.iter().zip(&co_m.reduce_tasks) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.input_records, b.input_records);
            assert_eq!(a.input_bytes, b.input_bytes);
            assert_eq!(a.input_keys, b.input_keys);
            assert_eq!(a.output_records, b.output_records);
            assert_eq!(a.output_bytes, b.output_bytes);
        }
    }

    /// Side tags must follow edge order: every value from upstream 0
    /// arrives tagged 0, from upstream 1 tagged 1, with tags
    /// non-decreasing within a group.
    #[test]
    fn cogroup_side_tags_follow_edge_order() {
        // Upstream values are disjoint by construction: wc-a counts are
        // < 1000, wc-b's are shifted by +1000 via a scaling reducer.
        struct SumShift(u64);
        impl Reducer for SumShift {
            type InKey = String;
            type InValue = u64;
            type OutKey = String;
            type OutValue = u64;
            fn reduce(&mut self, k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>) {
                out.emit(k.clone(), self.0 + vs.into_iter().sum::<u64>());
            }
        }
        struct TagCheck;
        impl CoGroupReducer for TagCheck {
            type InKey = String;
            type InValue = u64;
            type OutKey = String;
            type OutValue = u64;
            fn cogroup(
                &mut self,
                k: &String,
                values: &mut SideGroups<'_, '_, String, u64>,
                out: &mut Emitter<String, u64>,
            ) {
                let mut last_side = 0u32;
                for (side, v) in values {
                    assert!(side >= last_side, "side tags must be non-decreasing");
                    last_side = side;
                    let from_b = *v >= 1000;
                    assert_eq!(
                        side,
                        u32::from(from_b),
                        "value {v} of key {k} tagged with the wrong side"
                    );
                    out.emit(k.clone(), *v);
                }
            }
        }
        let mut plan = Plan::new("tags").with_workers(2);
        let a = plan.add::<Tokenize, SumShift, _, _>(
            "wc-a",
            wc_input(),
            2,
            |_| Tokenize,
            |_| SumShift(0),
        );
        let b = plan.add::<Tokenize, SumShift, _, _>(
            "wc-b",
            wc_input_b(),
            2,
            |_| Tokenize,
            |_| SumShift(1000),
        );
        let h = plan.add_cogroup::<TagCheck, _>("tag-check", vec![a, b], |_| TagCheck);
        let out = PlanRunner::pipelined().run(plan).take_output(h);
        // Both sides' records all pass through (6 + 5 distinct words).
        assert_eq!(out.total_records(), 11);
    }

    fn cogroup_plan(workers: usize) -> (Plan, StageHandle<String, u64>) {
        let mut plan = Plan::new("co-wc").with_workers(workers);
        let ups = two_upstreams(&mut plan);
        let h = plan.add_cogroup::<PassThroughCo, _>("fan-in", ups, |_| PassThroughCo);
        (plan, h)
    }

    #[test]
    fn cogroup_pipelined_equals_sequential_across_workers() {
        for workers in [1, 2, 7] {
            let (plan_a, h_a) = cogroup_plan(workers);
            let (plan_b, h_b) = cogroup_plan(workers);
            let mut piped = PlanRunner::pipelined().run(plan_a);
            let mut seq = PlanRunner::sequential().run(plan_b);
            assert_eq!(
                piped.take_output(h_a).partitions(),
                seq.take_output(h_b).partitions(),
                "co-group results must not depend on sequencing (workers={workers})"
            );
            for (a, b) in piped.metrics.jobs.iter().zip(&seq.metrics.jobs) {
                assert_eq!(
                    format!("{:?}", logical(a)),
                    format!("{:?}", logical(b)),
                    "logical metrics must not depend on sequencing (workers={workers})"
                );
            }
        }
    }

    /// A failed co-group attempt re-fetches the sealed upstream
    /// partitions — the upstreams never re-run.
    #[test]
    fn injected_cogroup_fault_refetches_sealed_partitions() {
        let faults = FaultPlan::new(11).with_target("fan-in", Phase::Reduce, Fault::Error, 1);
        let (clean, h_clean) = cogroup_plan(2);
        let (faulty, h_faulty) = cogroup_plan(2);
        let faulty = faulty
            .with_faults(faults)
            .with_retry(RetryPolicy::default());
        let mut clean_out = PlanRunner::pipelined().run(clean);
        let mut faulty_out = PlanRunner::pipelined().run(faulty);
        assert_eq!(
            clean_out.take_output(h_clean).partitions(),
            faulty_out.take_output(h_faulty).partitions()
        );
        for up in &faulty_out.metrics.jobs[..2] {
            assert_eq!(
                up.exec.attempts,
                (up.map_tasks.len() + up.reduce_tasks.len()) as u64
            );
            assert_eq!(up.exec.retries, 0, "upstream {} must not re-run", up.name);
        }
        let co = &faulty_out.metrics.jobs[2];
        assert_eq!(co.exec.retries, co.reduce_tasks.len() as u64);
        assert_eq!(co.exec.injected_errors, co.reduce_tasks.len() as u64);
    }

    #[test]
    #[should_panic(expected = "co-partitioned upstreams")]
    fn cogroup_upstream_shape_mismatch_rejected() {
        let mut plan = Plan::new("bad-co");
        let a = plan.add::<Tokenize, Sum, _, _>("wc-a", wc_input(), 3, |_| Tokenize, |_| Sum);
        let b = plan.add::<Tokenize, Sum, _, _>("wc-b", wc_input_b(), 2, |_| Tokenize, |_| Sum);
        let _ = plan.add_cogroup::<PassThroughCo, _>("fan-in", vec![a, b], |_| PassThroughCo);
    }
}
