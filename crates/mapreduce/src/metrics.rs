//! Per-task and per-job execution metrics.
//!
//! Every comparison in the paper's evaluation is, at bottom, a statement
//! about these counters: shuffle volume (duplication), per-reduce-task input
//! balance (skew), and phase durations. The engine collects them
//! unconditionally; algorithms cannot self-report.

use ssj_common::stats::Summary;
use std::time::Duration;

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
    /// A co-group task: the reduce side of a co-group stage, consuming
    /// the sealed reduce partitions of its co-partitioned upstreams
    /// directly (no map or shuffle phase of its own).
    CoGroup,
}

/// Counters for one executed task.
#[derive(Debug, Clone)]
pub struct TaskStat {
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its phase.
    pub index: usize,
    /// Wall-clock duration of the task body (excludes shuffle).
    pub duration: Duration,
    /// Time the task waited in its phase's queue before a worker thread
    /// picked it up (0 when it started immediately).
    pub queue: Duration,
    /// Input records consumed.
    pub input_records: usize,
    /// Logical encoded input size.
    pub input_bytes: usize,
    /// Distinct keys consumed (reduce tasks only; 0 for maps). Per-
    /// partition key cardinality is the third axis of shuffle skew next to
    /// records and bytes: a partition with few keys but many records is a
    /// hot-key straggler, not a hash imbalance.
    pub input_keys: usize,
    /// Records emitted.
    pub output_records: usize,
    /// Logical encoded output size.
    pub output_bytes: usize,
}

/// Attempt-level execution counters for one job (or one phase): how many
/// attempts ran, how many failed and were retried, what the fault injector
/// did, and how speculation fared. Deterministic under a seeded
/// [`FaultPlan`](ssj_faults::FaultPlan) — the chaos CI gate diffs these
/// across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecSummary {
    /// Task attempts started (first attempts + retries + speculative copies).
    pub attempts: u64,
    /// Failed attempts that were re-queued within the retry budget.
    pub retries: u64,
    /// Injected transient errors observed.
    pub injected_errors: u64,
    /// Injected panics observed (caught and converted to task errors).
    pub injected_panics: u64,
    /// Injected straggler slowdowns observed.
    pub injected_stragglers: u64,
    /// Speculative backup attempts launched.
    pub speculative_launched: u64,
    /// Speculative attempts that finished before the original.
    pub speculative_wins: u64,
}

impl ExecSummary {
    /// Element-wise accumulate (e.g. map phase + reduce phase).
    pub fn add(&mut self, other: &ExecSummary) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.injected_errors += other.injected_errors;
        self.injected_panics += other.injected_panics;
        self.injected_stragglers += other.injected_stragglers;
        self.speculative_launched += other.speculative_launched;
        self.speculative_wins += other.speculative_wins;
    }

    /// Total injected faults of any kind.
    pub fn injected_total(&self) -> u64 {
        self.injected_errors + self.injected_panics + self.injected_stragglers
    }
}

/// Aggregated metrics for one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Identity of this job inside an execution plan: `(plan name, stage
    /// index)`. `None` for standalone [`JobBuilder`](crate::JobBuilder)
    /// jobs; set by [`PlanRunner`](crate::plan::PlanRunner) so reports and
    /// traces can attribute a stage to its DAG.
    pub plan_stage: Option<(String, usize)>,
    /// Whether this job ran as a **co-group stage**: no map or shuffle
    /// phase; its tasks (kind [`TaskKind::CoGroup`], stored in
    /// [`Self::reduce_tasks`]) merged the sealed, co-partitioned reduce
    /// partitions of the upstream stages directly. `map_tasks` is empty
    /// and the shuffle counters are 0 — the bytes an identity-rekey
    /// fan-in would have re-shuffled are the co-group tasks' input bytes.
    pub cogroup: bool,
    /// Per-map-task counters.
    pub map_tasks: Vec<TaskStat>,
    /// Per-reduce-task counters.
    pub reduce_tasks: Vec<TaskStat>,
    /// Map output records *after* the combiner — i.e. what is shuffled.
    pub shuffle_records: usize,
    /// Map output bytes *after* the combiner — i.e. what is shuffled.
    pub shuffle_bytes: usize,
    /// Map output records *before* the combiner.
    pub pre_combine_records: usize,
    /// Map output bytes *before* the combiner.
    pub pre_combine_bytes: usize,
    /// Real wall-clock duration of the whole job on the host.
    pub elapsed: Duration,
    /// Wall-clock of the map phase (first map task queued → last finished).
    pub map_elapsed: Duration,
    /// Wall-clock of the shuffle (transpose of map buckets into per-reduce
    /// input runs).
    pub shuffle_elapsed: Duration,
    /// Wall-clock of the reduce phase.
    pub reduce_elapsed: Duration,
    /// Attempt/retry/speculation counters across both phases.
    pub exec: ExecSummary,
}

impl JobMetrics {
    /// Total records read by map tasks.
    pub fn map_input_records(&self) -> usize {
        self.map_tasks.iter().map(|t| t.input_records).sum()
    }

    /// Total records emitted by map tasks (before the combiner).
    pub fn map_output_records(&self) -> usize {
        self.pre_combine_records
    }

    /// Total records emitted by reduce tasks.
    pub fn reduce_output_records(&self) -> usize {
        self.reduce_tasks.iter().map(|t| t.output_records).sum()
    }

    /// Total bytes emitted by reduce tasks.
    pub fn reduce_output_bytes(&self) -> usize {
        self.reduce_tasks.iter().map(|t| t.output_bytes).sum()
    }

    /// Map-side blow-up factor: map output records ÷ map input records.
    ///
    /// For signature-based joins this is the *duplication factor* the paper
    /// criticizes (a record emitted once per signature token); FS-Join's
    /// segment emission keeps every token exactly once, so its byte-level
    /// analogue [`Self::byte_expansion`] stays ≈ 1.
    pub fn record_expansion(&self) -> f64 {
        let input = self.map_input_records();
        if input == 0 {
            return 0.0;
        }
        self.map_output_records() as f64 / input as f64
    }

    /// Map-side byte blow-up: shuffled bytes ÷ map input bytes.
    pub fn byte_expansion(&self) -> f64 {
        let input: usize = self.map_tasks.iter().map(|t| t.input_bytes).sum();
        if input == 0 {
            return 0.0;
        }
        self.shuffle_bytes as f64 / input as f64
    }

    /// Shuffle bytes a co-group stage avoided: the bytes its tasks read
    /// directly from sealed upstream partitions — exactly what an
    /// identity-rekey fan-in stage over the same inputs would have
    /// re-shuffled. 0 for regular MapReduce jobs.
    pub fn cogroup_shuffle_bytes_saved(&self) -> usize {
        if !self.cogroup {
            return 0;
        }
        self.reduce_tasks.iter().map(|t| t.input_bytes).sum()
    }

    /// Distribution of per-reduce-task input bytes — the load-balance
    /// statistic (skew = max/mean; Gini) behind the paper's Table I and
    /// Figure 11 claims.
    pub fn reduce_input_balance(&self) -> Summary {
        Summary::of_counts(self.reduce_tasks.iter().map(|t| t.input_bytes))
    }

    /// Distribution of per-reduce-task durations.
    pub fn reduce_time_balance(&self) -> Summary {
        Summary::of(
            &self
                .reduce_tasks
                .iter()
                .map(|t| t.duration.as_secs_f64())
                .collect::<Vec<_>>(),
        )
    }
}

/// Metrics for a chain of jobs (an algorithm run end-to-end, e.g. FS-Join's
/// ordering → filtering → verification pipeline).
#[derive(Debug, Clone, Default)]
pub struct ChainMetrics {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl ChainMetrics {
    /// Append one job's metrics.
    pub fn push(&mut self, m: JobMetrics) {
        self.jobs.push(m);
    }

    /// Total shuffled bytes across jobs.
    pub fn total_shuffle_bytes(&self) -> usize {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Total shuffled records across jobs.
    pub fn total_shuffle_records(&self) -> usize {
        self.jobs.iter().map(|j| j.shuffle_records).sum()
    }

    /// Total real wall-clock across jobs.
    pub fn total_elapsed(&self) -> Duration {
        self.jobs.iter().map(|j| j.elapsed).sum()
    }

    /// Attempt/retry/speculation counters summed across jobs.
    pub fn total_exec(&self) -> ExecSummary {
        let mut total = ExecSummary::default();
        for j in &self.jobs {
            total.add(&j.exec);
        }
        total
    }

    /// Find a job's metrics by name.
    pub fn job(&self, name: &str) -> Option<&JobMetrics> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Job names in execution order.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.iter().map(|j| j.name.as_str()).collect()
    }

    /// Append every job of `other` (in order) to this chain — e.g. to
    /// combine the pipelines of a multi-stage algorithm into one report.
    pub fn merge(&mut self, other: ChainMetrics) {
        self.jobs.extend(other.jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(kind: TaskKind, input_records: usize, output_records: usize) -> TaskStat {
        TaskStat {
            kind,
            index: 0,
            duration: Duration::from_millis(10),
            queue: Duration::ZERO,
            input_records,
            input_bytes: input_records * 8,
            input_keys: if kind == TaskKind::Reduce { 2 } else { 0 },
            output_records,
            output_bytes: output_records * 8,
        }
    }

    fn metrics() -> JobMetrics {
        JobMetrics {
            name: "test".into(),
            plan_stage: None,
            cogroup: false,
            map_tasks: vec![stat(TaskKind::Map, 10, 30), stat(TaskKind::Map, 10, 30)],
            reduce_tasks: vec![stat(TaskKind::Reduce, 30, 5), stat(TaskKind::Reduce, 30, 5)],
            shuffle_records: 60,
            shuffle_bytes: 480,
            pre_combine_records: 60,
            pre_combine_bytes: 480,
            elapsed: Duration::from_millis(25),
            map_elapsed: Duration::from_millis(10),
            shuffle_elapsed: Duration::from_millis(5),
            reduce_elapsed: Duration::from_millis(10),
            exec: ExecSummary::default(),
        }
    }

    #[test]
    fn expansion_factors() {
        let m = metrics();
        assert_eq!(m.map_input_records(), 20);
        assert_eq!(m.map_output_records(), 60);
        assert!((m.record_expansion() - 3.0).abs() < 1e-12);
        assert!((m.byte_expansion() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_reduce_has_unit_skew() {
        let m = metrics();
        let b = m.reduce_input_balance();
        assert_eq!(b.count, 2);
        assert!((b.skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_totals() {
        let mut c = ChainMetrics::default();
        c.push(metrics());
        c.push(metrics());
        assert_eq!(c.total_shuffle_bytes(), 960);
        assert_eq!(c.total_shuffle_records(), 120);
        assert_eq!(c.total_elapsed(), Duration::from_millis(50));
        assert!(c.job("test").is_some());
        assert!(c.job("absent").is_none());
    }

    #[test]
    fn chain_names_and_merge() {
        let mut a = ChainMetrics::default();
        a.push(metrics());
        let mut second = metrics();
        second.name = "second".into();
        let mut b = ChainMetrics::default();
        b.push(second);
        a.merge(b);
        assert_eq!(a.job_names(), vec!["test", "second"]);
        assert_eq!(a.total_shuffle_records(), 120);
        assert!(a.job("second").is_some());
    }

    #[test]
    fn exec_summary_accumulates() {
        let mut a = ExecSummary {
            attempts: 10,
            retries: 2,
            injected_errors: 1,
            injected_panics: 1,
            injected_stragglers: 0,
            speculative_launched: 1,
            speculative_wins: 1,
        };
        a.add(&ExecSummary {
            attempts: 5,
            retries: 1,
            ..ExecSummary::default()
        });
        assert_eq!(a.attempts, 15);
        assert_eq!(a.retries, 3);
        assert_eq!(a.injected_total(), 2);

        let mut c = ChainMetrics::default();
        let mut m = metrics();
        m.exec = a;
        c.push(m.clone());
        c.push(m);
        assert_eq!(c.total_exec().attempts, 30);
        assert_eq!(c.total_exec().retries, 6);
    }

    #[test]
    fn zero_input_expansion_is_zero() {
        let mut m = metrics();
        m.map_tasks.clear();
        assert_eq!(m.record_expansion(), 0.0);
        assert_eq!(m.byte_expansion(), 0.0);
    }

    #[test]
    fn cogroup_bytes_saved_counts_task_input() {
        let mut m = metrics();
        assert_eq!(m.cogroup_shuffle_bytes_saved(), 0);
        m.cogroup = true;
        m.map_tasks.clear();
        m.shuffle_records = 0;
        m.shuffle_bytes = 0;
        // Two reduce-side tasks reading 30 records * 8 bytes each.
        assert_eq!(m.cogroup_shuffle_bytes_saved(), 480);
    }
}
