//! Cross-crate plan-pipelining equivalence.
//!
//! The tentpole invariant of the execution-plan layer: partition-granular
//! pipelining is a pure *scheduling* change. A pipelined [`PlanRunner`]
//! must be observationally identical to the stage-barriered (sequential)
//! run — identical result digests AND identical per-stage logical
//! [`JobMetrics`] — on the real FS-Join pipeline across randomized
//! collections and configurations, and on every baseline pipeline. Only
//! wall-clock durations and peak live-intermediate bytes may differ.

use fsjoin::FsJoinConfig;
use proptest::prelude::*;
use ssj_baselines::massjoin::{massjoin, MassJoinVariant};
use ssj_baselines::ridpairs::ridpairs_ppjoin;
use ssj_baselines::vsmart::vsmart_join;
use ssj_baselines::BaselineConfig;
use ssj_faults::{Fault, FaultPlan, Phase};
use ssj_mapreduce::{
    ChainMetrics, CoGroupReducer, Dataset, Emitter, JobMetrics, Mapper, Plan, PlanMode, PlanRunner,
    Reducer, SideGroups, StageHandle,
};
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{encode, Collection, CorpusProfile, Record};

/// FNV-1a over the canonically sorted pair list (ids + exact score bits) —
/// the same digest the determinism CI gate prints.
fn digest(pairs: &[SimilarPair]) -> u64 {
    let mut sorted: Vec<(u32, u32, u64)> =
        pairs.iter().map(|p| (p.a, p.b, p.sim.to_bits())).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (a, b, s) in sorted {
        mix(a as u64);
        mix(b as u64);
        mix(s);
    }
    h
}

/// The logical (timing-free) signature of one job's metrics: everything
/// that must be bit-identical across plan modes.
fn logical(m: &JobMetrics) -> String {
    format!(
        "{:?}",
        (
            &m.name,
            &m.plan_stage,
            m.shuffle_records,
            m.shuffle_bytes,
            m.pre_combine_records,
            m.pre_combine_bytes,
            m.map_tasks
                .iter()
                .map(|t| (
                    t.index,
                    t.input_records,
                    t.input_bytes,
                    t.output_records,
                    t.output_bytes
                ))
                .collect::<Vec<_>>(),
            m.reduce_tasks
                .iter()
                .map(|t| (
                    t.index,
                    t.input_records,
                    t.input_bytes,
                    t.output_records,
                    t.output_bytes
                ))
                .collect::<Vec<_>>(),
            m.exec,
        )
    )
}

fn assert_chains_logically_equal(a: &ChainMetrics, b: &ChainMetrics, label: &str) {
    assert_eq!(a.jobs.len(), b.jobs.len(), "{label}: stage count");
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(logical(x), logical(y), "{label}: stage {}", x.name);
    }
}

/// Strategy: a small collection in rank space with planted near-duplicates
/// so results exist at high thresholds (same construction as the core
/// exactness suite).
fn arb_collection() -> impl Strategy<Value = Collection> {
    (
        prop::collection::vec(prop::collection::vec(0u32..60, 1..20), 2..30),
        prop::collection::vec(0usize..30, 0..8),
    )
        .prop_map(|(base_docs, dup_of)| {
            let mut docs = base_docs;
            let n = docs.len();
            for (k, &src) in dup_of.iter().enumerate() {
                let mut copy = docs[src % n].clone();
                if copy.len() > 1 {
                    copy.remove(k % copy.len());
                }
                copy.push(60 + k as u32);
                docs.push(copy);
            }
            let records: Vec<Record> = docs
                .into_iter()
                .enumerate()
                .map(|(i, toks)| Record::new(i as u32, toks))
                .collect();
            let mut freqs = vec![0u64; 70];
            for r in &records {
                for &t in &r.tokens {
                    freqs[t as usize] += 1;
                }
            }
            // Rank space must be frequency-ascending for Even-TF semantics.
            let mut by_freq: Vec<u32> = (0..70).collect();
            by_freq.sort_by_key(|&t| (freqs[t as usize], t));
            let mut rank_of = vec![0u32; 70];
            for (rank, &t) in by_freq.iter().enumerate() {
                rank_of[t as usize] = rank as u32;
            }
            let records: Vec<Record> = records
                .into_iter()
                .map(|r| {
                    Record::new(
                        r.id,
                        r.tokens.iter().map(|&t| rank_of[t as usize]).collect(),
                    )
                })
                .collect();
            let mut rank_freqs = vec![0u64; 70];
            for r in &records {
                for &t in &r.tokens {
                    rank_freqs[t as usize] += 1;
                }
            }
            Collection::new(records, rank_freqs, None)
        })
}

/// Two collections over one shared rank space (the R×S contract): split an
/// [`arb_collection`]-style doc set, re-id each side densely, share the
/// frequency table.
fn arb_rs_collections() -> impl Strategy<Value = (Collection, Collection)> {
    (arb_collection(), 1usize..10).prop_map(|(c, cut)| {
        let records: Vec<Record> = c.iter().map(|v| v.to_record()).collect();
        let k = (cut % records.len()).max(1);
        let reid = |side: &[Record]| {
            side.iter()
                .enumerate()
                .map(|(i, r)| Record::from_sorted(i as u32, r.tokens.clone()))
                .collect::<Vec<Record>>()
        };
        (
            Collection::new(reid(&records[..k]), c.token_freqs.clone(), None),
            Collection::new(reid(&records[k..]), c.token_freqs.clone(), None),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// FS-Join end-to-end: pipelined and sequential plans produce the same
    /// digest, candidate count, and per-stage logical metrics across
    /// fragment counts, horizontal pivots, and worker counts.
    #[test]
    fn fsjoin_pipelined_matches_sequential(
        c in arb_collection(),
        fragments in prop::sample::select(vec![1usize, 3, 8]),
        h_pivots in prop::sample::select(vec![0usize, 2, 5]),
        workers in prop::sample::select(vec![1usize, 2, 7]),
        theta in prop::sample::select(vec![0.6, 0.8]),
    ) {
        let base = FsJoinConfig::default()
            .with_theta(theta)
            .with_fragments(fragments)
            .with_horizontal(h_pivots)
            .with_tasks(3, 4)
            .with_workers(workers);
        let piped =
            fsjoin::run_self_join(&c, &base.clone().with_plan_mode(PlanMode::Pipelined));
        let seq = fsjoin::run_self_join(&c, &base.with_plan_mode(PlanMode::Sequential));
        prop_assert_eq!(digest(&piped.pairs), digest(&seq.pairs));
        prop_assert_eq!(piped.candidates, seq.candidates);
        prop_assert_eq!(piped.chain.jobs.len(), seq.chain.jobs.len());
        for (a, b) in piped.chain.jobs.iter().zip(&seq.chain.jobs) {
            prop_assert_eq!(logical(a), logical(b));
        }
    }

    /// The two-input R×S plan (fan-in join stage reading two co-partitioned
    /// upstreams plus a broadcast pool) is equally mode-invariant: identical
    /// digests and per-stage logical metrics at every worker count.
    #[test]
    fn two_input_rsjoin_pipelined_matches_sequential(
        (r, s) in arb_rs_collections(),
        workers in prop::sample::select(vec![1usize, 2, 7]),
        theta in prop::sample::select(vec![0.6, 0.8]),
    ) {
        let base = FsJoinConfig::default()
            .with_theta(theta)
            .with_tasks(3, 4)
            .with_workers(workers);
        let piped = fsjoin::run_rs_join_two_input(
            &r, &s, &base.clone().with_plan_mode(PlanMode::Pipelined));
        let seq = fsjoin::run_rs_join_two_input(
            &r, &s, &base.with_plan_mode(PlanMode::Sequential));
        prop_assert_eq!(&piped.deps, &vec![vec![], vec![], vec![0, 1], vec![2]]);
        prop_assert_eq!(&piped.deps, &seq.deps);
        prop_assert_eq!(digest(&piped.pairs), digest(&seq.pairs));
        prop_assert_eq!(piped.candidates, seq.candidates);
        prop_assert_eq!(piped.chain.jobs.len(), seq.chain.jobs.len());
        for (a, b) in piped.chain.jobs.iter().zip(&seq.chain.jobs) {
            prop_assert_eq!(logical(a), logical(b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The R×S co-group join path ≡ the identity-rekey fan-in path: same
    /// pair digests, candidate counts, and filter verdicts across random
    /// R/S splits, worker counts, and both plan modes — while the co-group
    /// join stage moves zero shuffle bytes and its bytes-saved counter
    /// accounts exactly for the rekey path's second shuffle.
    #[test]
    fn rsjoin_cogroup_matches_rekey_across_modes(
        (r, s) in arb_rs_collections(),
        workers in prop::sample::select(vec![1usize, 2, 7]),
        mode in prop::sample::select(vec![PlanMode::Pipelined, PlanMode::Sequential]),
        theta in prop::sample::select(vec![0.6, 0.8]),
    ) {
        let base = FsJoinConfig::default()
            .with_theta(theta)
            .with_tasks(3, 4)
            .with_workers(workers)
            .with_plan_mode(mode);
        let co = fsjoin::run_rs_join_two_input(&r, &s, &base.clone().with_rs_cogroup(true));
        let rk = fsjoin::run_rs_join_two_input(&r, &s, &base.with_rs_cogroup(false));

        prop_assert_eq!(digest(&co.pairs), digest(&rk.pairs));
        prop_assert_eq!(co.candidates, rk.candidates);
        prop_assert_eq!(
            format!("{:?}", co.filter_stats),
            format!("{:?}", rk.filter_stats)
        );
        // Both paths publish the same 4-stage DAG shape.
        prop_assert_eq!(&co.deps, &vec![vec![], vec![], vec![0, 1], vec![2]]);
        prop_assert_eq!(&co.deps, &rk.deps);

        let co_join = &co.chain.jobs[2];
        let rk_join = &rk.chain.jobs[2];
        prop_assert!(co_join.cogroup && !rk_join.cogroup);
        prop_assert!(co_join.map_tasks.is_empty());
        prop_assert_eq!(co_join.shuffle_bytes, 0);
        // The counter is exactly the shuffle the rekey path pays.
        prop_assert_eq!(co_join.cogroup_shuffle_bytes_saved(), rk_join.shuffle_bytes);
        // Per-task reduce-side accounting is identical: the co-group tasks
        // read the same sealed partitions the rekey reducers re-received.
        let reduce_io = |m: &JobMetrics| m.reduce_tasks.iter()
            .map(|t| (t.index, t.input_records, t.output_records, t.output_bytes))
            .collect::<Vec<_>>();
        prop_assert_eq!(reduce_io(co_join), reduce_io(rk_join));
        // Upstream prefix stages are untouched by the join-path choice.
        for k in [0usize, 1] {
            prop_assert_eq!(logical(&co.chain.jobs[k]), logical(&rk.chain.jobs[k]));
        }
    }
}

/// Every baseline pipeline (2-, 2-, 2- and 3-stage plans) is mode-invariant
/// in results and logical metrics.
#[test]
fn baseline_pipelines_are_mode_invariant() {
    let c = encode(&CorpusProfile::WikiLike.config().with_records(80).generate());
    let piped_cfg = BaselineConfig::default()
        .with_tasks(4, 6)
        .with_workers(2)
        .with_plan_mode(PlanMode::Pipelined);
    let seq_cfg = piped_cfg.with_plan_mode(PlanMode::Sequential);

    let a = ridpairs_ppjoin(&c, Measure::Jaccard, 0.8, &piped_cfg);
    let b = ridpairs_ppjoin(&c, Measure::Jaccard, 0.8, &seq_cfg);
    assert_eq!(digest(&a.pairs), digest(&b.pairs), "ridpairs digest");
    assert_chains_logically_equal(&a.chain, &b.chain, "ridpairs");

    let a = vsmart_join(&c, Measure::Jaccard, 0.8, &piped_cfg).unwrap();
    let b = vsmart_join(&c, Measure::Jaccard, 0.8, &seq_cfg).unwrap();
    assert_eq!(digest(&a.pairs), digest(&b.pairs), "vsmart digest");
    assert_chains_logically_equal(&a.chain, &b.chain, "vsmart");

    for variant in [MassJoinVariant::Merge, MassJoinVariant::MergeLight] {
        let a = massjoin(&c, Measure::Jaccard, 0.8, variant, &piped_cfg).unwrap();
        let b = massjoin(&c, Measure::Jaccard, 0.8, variant, &seq_cfg).unwrap();
        assert_eq!(digest(&a.pairs), digest(&b.pairs), "{variant:?} digest");
        assert_chains_logically_equal(&a.chain, &b.chain, variant.name());
    }
}

// ---------------------------------------------------------------------------
// Fault injection: sealed partitions survive downstream map retries.
// ---------------------------------------------------------------------------

/// Emits each pair as-is (kernel stand-in producing duplicated pairs).
struct PairMapper;

impl Mapper for PairMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = (u32, u32);
    type OutValue = u64;

    fn map(&mut self, k: u32, v: u32, out: &mut Emitter<(u32, u32), u64>) {
        // Emit every pair twice, under two shapes, so the dedup-like
        // downstream stage has real work.
        out.emit((k % 7, v % 5), 1);
        out.emit((k % 7, v % 5), 1);
    }
}

/// Sums per pair.
struct PairSum;

impl Reducer for PairSum {
    type InKey = (u32, u32);
    type InValue = u64;
    type OutKey = (u32, u32);
    type OutValue = u64;

    fn reduce(&mut self, k: &(u32, u32), vs: Vec<u64>, out: &mut Emitter<(u32, u32), u64>) {
        out.emit(*k, vs.into_iter().sum());
    }
}

/// Re-keys by count.
struct ByCount;

impl Mapper for ByCount {
    type InKey = (u32, u32);
    type InValue = u64;
    type OutKey = u64;
    type OutValue = u64;

    fn map(&mut self, _k: (u32, u32), c: u64, out: &mut Emitter<u64, u64>) {
        out.emit(c, 1);
    }
}

/// Counts pairs per count bucket.
struct CountPairs;

impl Reducer for CountPairs {
    type InKey = u64;
    type InValue = u64;
    type OutKey = u64;
    type OutValue = u64;

    fn reduce(&mut self, k: &u64, vs: Vec<u64>, out: &mut Emitter<u64, u64>) {
        out.emit(*k, vs.into_iter().sum());
    }
}

fn fault_fixture_plan(workers: usize) -> (Plan, StageHandle<u64, u64>) {
    let input: Dataset<u32, u32> = Dataset::from_records(
        (0..64u32)
            .map(|i| (i, i.wrapping_mul(2654435761)))
            .collect(),
        4,
    );
    let mut plan = Plan::new("fault-chain").with_workers(workers);
    let sums = plan.add("pair-sum", input, 5, |_| PairMapper, |_| PairSum);
    let buckets = plan.add("by-count", sums, 3, |_| ByCount, |_| CountPairs);
    (plan, buckets)
}

/// A failed *downstream map* attempt must be satisfied by re-fetching the
/// sealed upstream reduce partition — the upstream reduce is never re-run.
#[test]
fn downstream_map_retry_refetches_sealed_partition() {
    let (clean_plan, clean_h) = fault_fixture_plan(7);
    let mut clean = PlanRunner::pipelined().run(clean_plan);

    let (faulty_plan, faulty_h) = fault_fixture_plan(7);
    let faulty_plan = faulty_plan.with_faults(FaultPlan::new(11).with_target(
        "by-count",
        Phase::Map,
        Fault::Error,
        1,
    ));
    let mut faulty = PlanRunner::pipelined().run(faulty_plan);

    let sort = |d: Dataset<u64, u64>| {
        let mut v: Vec<(u64, u64)> = d.into_records().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sort(clean.take_output(clean_h)),
        sort(faulty.take_output(faulty_h)),
        "retried run must produce identical results"
    );

    let up = &faulty.metrics.jobs[0];
    let down = &faulty.metrics.jobs[1];
    // Upstream: exactly one attempt per task — its reduces were NOT re-run
    // to satisfy the downstream retries.
    assert_eq!(
        up.exec.attempts,
        (up.map_tasks.len() + up.reduce_tasks.len()) as u64,
        "upstream must not re-run"
    );
    assert_eq!(up.exec.retries, 0);
    // Downstream: every map failed once and retried successfully.
    assert_eq!(down.exec.retries, down.map_tasks.len() as u64);
    assert_eq!(down.exec.injected_errors, down.map_tasks.len() as u64);
    // Logical metrics of the clean and faulty runs agree (retries are
    // invisible to the logical counters).
    for (a, b) in clean.metrics.jobs.iter().zip(&faulty.metrics.jobs) {
        let scrub = |m: &JobMetrics| {
            let mut m = m.clone();
            m.exec = Default::default();
            logical(&m)
        };
        assert_eq!(scrub(a), scrub(b), "stage {}", a.name);
    }
}

/// Tags values so the join stage can tell sides apart.
struct TagMapper(u64);

impl Mapper for TagMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u64;

    fn map(&mut self, k: u32, v: u32, out: &mut Emitter<u32, u64>) {
        out.emit(k % 11, v as u64 | self.0);
    }
}

/// Sums per key.
struct SumReducer;

impl Reducer for SumReducer {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;

    fn reduce(&mut self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
        out.emit(*k, vs.into_iter().sum());
    }
}

/// Identity re-key for the join stage's map phase.
struct Rekey;

impl Mapper for Rekey {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;

    fn map(&mut self, k: u32, v: u64, out: &mut Emitter<u32, u64>) {
        out.emit(k, v);
    }
}

/// Combines both sides of a key group (side = the tag bit planted by
/// [`TagMapper`]) into one value, so the output provably read both
/// upstreams.
struct SideCombine;

impl Reducer for SideCombine {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;

    fn reduce(&mut self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
        const TAG: u64 = 1 << 40;
        let left: u64 = vs.iter().filter(|&&v| v & TAG == 0).sum();
        let right: u64 = vs.iter().filter(|&&v| v & TAG != 0).map(|v| v & !TAG).sum();
        out.emit(*k, left.wrapping_mul(3).wrapping_add(right));
    }
}

fn fan_in_fixture_plan(workers: usize) -> (Plan, StageHandle<u32, u64>) {
    let source = |seed: u32| -> Dataset<u32, u32> {
        Dataset::from_records(
            (0..48u32)
                .map(|i| (i ^ seed, i.wrapping_mul(2654435761).wrapping_add(seed)))
                .collect(),
            4,
        )
    };
    let mut plan = Plan::new("fan-in-chain").with_workers(workers);
    // Co-partitioned upstreams: same reduce_tasks, default HashPartitioner.
    let left = plan.add("left-src", source(0), 5, |_| TagMapper(0), |_| SumReducer);
    let right = plan.add(
        "right-src",
        source(97),
        5,
        |_| TagMapper(1 << 40),
        |_| SumReducer,
    );
    let joined = plan.add("fan-in-join", [left, right], 3, |_| Rekey, |_| SideCombine);
    (plan, joined)
}

/// A failed map attempt of a **two-input** join stage must be satisfied by
/// re-fetching BOTH sealed upstream reduce partitions — neither upstream
/// stage re-runs a single task.
#[test]
fn fan_in_map_retry_refetches_both_sealed_partitions() {
    let (clean_plan, clean_h) = fan_in_fixture_plan(7);
    let mut clean = PlanRunner::pipelined().run(clean_plan);

    let (faulty_plan, faulty_h) = fan_in_fixture_plan(7);
    let faulty_plan = faulty_plan.with_faults(FaultPlan::new(23).with_target(
        "fan-in-join",
        Phase::Map,
        Fault::Error,
        1,
    ));
    let mut faulty = PlanRunner::pipelined().run(faulty_plan);

    let sort = |d: Dataset<u32, u64>| {
        let mut v: Vec<(u32, u64)> = d.into_records().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sort(clean.take_output(clean_h)),
        sort(faulty.take_output(faulty_h)),
        "retried fan-in run must produce identical results"
    );
    assert_eq!(faulty.deps(), &[vec![], vec![], vec![0, 1]]);

    // Both upstreams: exactly one attempt per task, zero retries — the
    // join-map retries were fed from the sealed partitions, not re-runs.
    for up in &faulty.metrics.jobs[..2] {
        assert_eq!(
            up.exec.attempts,
            (up.map_tasks.len() + up.reduce_tasks.len()) as u64,
            "upstream {} must not re-run",
            up.name
        );
        assert_eq!(up.exec.retries, 0, "upstream {} retried", up.name);
    }
    // The join stage: every map failed once and retried successfully.
    let down = &faulty.metrics.jobs[2];
    assert_eq!(down.exec.retries, down.map_tasks.len() as u64);
    assert_eq!(down.exec.injected_errors, down.map_tasks.len() as u64);
    for (a, b) in clean.metrics.jobs.iter().zip(&faulty.metrics.jobs) {
        let scrub = |m: &JobMetrics| {
            let mut m = m.clone();
            m.exec = Default::default();
            logical(&m)
        };
        assert_eq!(scrub(a), scrub(b), "stage {}", a.name);
    }
}

/// Sums per key with the side-tag bit preserved: all of a group's values
/// carry the same planted tag (they come from one [`TagMapper`]), so the
/// sum of the *masked* values re-tagged with the group's bit keeps the
/// reduce output classifiable by [`SideCombine`] — unlike a plain sum,
/// where an even group count would cancel the bit.
struct TagSum;

impl Reducer for TagSum {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;

    fn reduce(&mut self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
        const TAG: u64 = 1 << 40;
        let tag = vs[0] & TAG;
        out.emit(*k, vs.iter().map(|v| v & !TAG).sum::<u64>() | tag);
    }
}

/// The co-group twin of [`SideCombine`]: classifies by the
/// engine-delivered side tags instead of the planted tag bit (the bit
/// still rides in the right side's values, so it is masked off).
struct SideCombineCo;

impl CoGroupReducer for SideCombineCo {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;

    fn cogroup(
        &mut self,
        k: &u32,
        values: &mut SideGroups<'_, '_, u32, u64>,
        out: &mut Emitter<u32, u64>,
    ) {
        const TAG: u64 = 1 << 40;
        let (mut left, mut right) = (0u64, 0u64);
        for (side, &v) in values {
            if side == 0 {
                left += v;
            } else {
                right += v & !TAG;
            }
        }
        out.emit(*k, left.wrapping_mul(3).wrapping_add(right));
    }
}

/// Two tag-preserving upstream stages plus either a co-group join (side
/// tags from the engine) or a rekey fan-in join (side tags from the
/// planted bit) — the pair of plans the fault test proves equivalent.
fn two_source_plan(workers: usize, cogroup: bool) -> (Plan, StageHandle<u32, u64>) {
    let source = |seed: u32| -> Dataset<u32, u32> {
        Dataset::from_records(
            (0..48u32)
                .map(|i| (i ^ seed, i.wrapping_mul(2654435761).wrapping_add(seed)))
                .collect(),
            4,
        )
    };
    let mut plan = Plan::new("two-source-chain").with_workers(workers);
    let left = plan.add("left-src", source(0), 5, |_| TagMapper(0), |_| TagSum);
    let right = plan.add(
        "right-src",
        source(97),
        5,
        |_| TagMapper(1 << 40),
        |_| TagSum,
    );
    let joined = if cogroup {
        plan.add_cogroup("co-join", vec![left, right], |_| SideCombineCo)
    } else {
        plan.add("co-join", [left, right], 3, |_| Rekey, |_| SideCombine)
    };
    (plan, joined)
}

/// A failed **co-group** task attempt must be satisfied by re-fetching the
/// sealed reduce partitions of BOTH upstreams — zero upstream re-runs —
/// and the co-group plan must produce exactly what the rekey fan-in plan
/// over the same sources produces.
#[test]
fn cogroup_retry_refetches_sealed_partitions_without_upstream_reruns() {
    let sort = |d: Dataset<u32, u64>| {
        let mut v: Vec<(u32, u64)> = d.into_records().collect();
        v.sort_unstable();
        v
    };

    // Baseline: rekey fan-in over identical sources — same combined output.
    let (rekey_plan, rekey_h) = two_source_plan(7, false);
    let mut rekey = PlanRunner::pipelined().run(rekey_plan);
    let (clean_plan, clean_h) = two_source_plan(7, true);
    let mut clean = PlanRunner::pipelined().run(clean_plan);
    let expected = sort(clean.take_output(clean_h));
    assert_eq!(
        expected,
        sort(rekey.take_output(rekey_h)),
        "co-group and rekey fan-in must combine identically"
    );

    let (faulty_plan, faulty_h) = two_source_plan(7, true);
    let faulty_plan = faulty_plan.with_faults(FaultPlan::new(31).with_target(
        "co-join",
        Phase::Reduce,
        Fault::Error,
        1,
    ));
    let mut faulty = PlanRunner::pipelined().run(faulty_plan);
    assert_eq!(
        expected,
        sort(faulty.take_output(faulty_h)),
        "retried co-group run must produce identical results"
    );
    assert_eq!(faulty.deps(), &[vec![], vec![], vec![0, 1]]);

    // Both upstreams: one attempt per task, zero retries — the co-group
    // retries re-fetched the sealed Arcs instead of re-running producers.
    for up in &faulty.metrics.jobs[..2] {
        assert_eq!(
            up.exec.attempts,
            (up.map_tasks.len() + up.reduce_tasks.len()) as u64,
            "upstream {} must not re-run",
            up.name
        );
        assert_eq!(up.exec.retries, 0, "upstream {} retried", up.name);
    }
    // The co-group stage: every task failed once and retried successfully.
    let down = &faulty.metrics.jobs[2];
    assert!(down.cogroup && down.map_tasks.is_empty());
    assert_eq!(down.exec.retries, down.reduce_tasks.len() as u64);
    assert_eq!(down.exec.injected_errors, down.reduce_tasks.len() as u64);
    for (a, b) in clean.metrics.jobs.iter().zip(&faulty.metrics.jobs) {
        let scrub = |m: &JobMetrics| {
            let mut m = m.clone();
            m.exec = Default::default();
            logical(&m)
        };
        assert_eq!(scrub(a), scrub(b), "stage {}", a.name);
    }
}
