//! Property tests for the streaming shuffle data plane: the k-way merge
//! must be element-for-element equal to the old concat + stable-sort
//! (including duplicate-key value order — the determinism contract the
//! golden digests in `crates/core/tests/columnar_equivalence.rs` pin), and
//! [`GroupedRuns`] must produce exactly the groups the old group-walk
//! produced. Also checks the end-to-end equivalence of a job driven
//! through a [`StreamingReducer`] against its batch [`Reducer`] twin.

use proptest::prelude::*;
use ssj_mapreduce::{
    CoGroupedRuns, Dataset, Emitter, GroupValues, GroupedRuns, JobBuilder, KWayMerge, Mapper,
    Reducer, StreamingReducer,
};

/// Arbitrary set of sorted runs (what the map phase spills): up to 8 runs
/// of up to 40 pairs each, keys drawn from a small domain so duplicate
/// keys across and within runs are common.
fn arb_sorted_runs() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..20, 0u32..1000), 0..40).prop_map(|mut run| {
            // Stable sort by key only: within-run value order for equal
            // keys is emission order, exactly like a spill run.
            run.sort_by_key(|&(k, _)| k);
            run
        }),
        0..8,
    )
}

/// The reference semantics the merge must reproduce: concatenate the runs
/// in registration order and stable-sort by key.
fn concat_stable_sort(runs: &[Vec<(u32, u32)>]) -> Vec<(u32, u32)> {
    let mut all: Vec<(u32, u32)> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|a| a.0);
    all
}

/// Arbitrary multi-source run set (what a co-group stage reads): up to 4
/// sides, each contributing up to 4 sorted runs — the sealed reduce runs
/// of N co-partitioned upstreams.
fn arb_sided_runs() -> impl Strategy<Value = Vec<Vec<Vec<(u32, u32)>>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec((0u32..20, 0u32..1000), 0..30).prop_map(|mut run| {
                run.sort_by_key(|&(k, _)| k);
                run
            }),
            0..4,
        ),
        0..4,
    )
}

/// The reference semantics of the co-group merge: what an identity-rekey
/// fan-in map over the same sealed partitions would deliver — side-major
/// concat (edge order, then run order within a side) + stable sort by key,
/// each value tagged with its side.
fn side_major_stable_sort(sides: &[Vec<Vec<(u32, u32)>>]) -> Vec<(u32, (u32, u32))> {
    let mut all: Vec<(u32, (u32, u32))> = sides
        .iter()
        .enumerate()
        .flat_map(|(side, runs)| {
            runs.iter()
                .flatten()
                .map(move |&(k, v)| (k, (side as u32, v)))
        })
        .collect();
    all.sort_by_key(|e| e.0);
    all
}

/// The old reduce-side group-walk over a sorted sequence.
fn group_walk(sorted: &[(u32, u32)]) -> Vec<(u32, Vec<u32>)> {
    let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
    for &(k, v) in sorted {
        match groups.last_mut() {
            Some((ck, vals)) if *ck == k => vals.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

proptest! {
    /// K-way merge output == concat + stable sort, element for element —
    /// duplicate-key value order included.
    #[test]
    fn merge_equals_concat_stable_sort(runs in arb_sorted_runs()) {
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(Vec::as_slice).collect();
        let merge = KWayMerge::new(slices);
        prop_assert_eq!(merge.total_len(), runs.iter().map(Vec::len).sum::<usize>());
        let merged: Vec<(u32, u32)> = merge.copied().collect();
        prop_assert_eq!(merged, concat_stable_sort(&runs));
    }

    /// GroupedRuns produces exactly the groups the old group-walk produced:
    /// same keys, same order, same values per key.
    #[test]
    fn grouped_runs_match_group_walk(runs in arb_sorted_runs()) {
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(Vec::as_slice).collect();
        let mut streamed: Vec<(u32, Vec<u32>)> = Vec::new();
        GroupedRuns::new(slices).for_each_group(|k, vs| {
            streamed.push((*k, vs.copied().collect()));
        });
        prop_assert_eq!(streamed, group_walk(&concat_stable_sort(&runs)));
    }

    /// Multi-source co-grouping == side-major concat + stable sort, group
    /// for group: the `(key, side, run-within-side)` tie-break the
    /// co-group plan stage contract promises. Side tags inside one group
    /// arrive non-decreasing; within one side, values arrive in run order.
    #[test]
    fn cogrouped_runs_match_side_major_stable_sort(sides in arb_sided_runs()) {
        let slices: Vec<Vec<&[(u32, u32)]>> = sides
            .iter()
            .map(|runs| runs.iter().map(Vec::as_slice).collect())
            .collect();
        let co = CoGroupedRuns::new(slices);
        prop_assert_eq!(
            co.total_len(),
            sides.iter().flatten().map(Vec::len).sum::<usize>()
        );
        let mut streamed: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
        co.for_each_group(|k, vs| {
            streamed.push((*k, vs.map(|(s, &v)| (s, v)).collect()));
        });
        for (k, tagged) in &streamed {
            assert!(
                tagged.windows(2).all(|w| w[0].0 <= w[1].0),
                "side tags must be non-decreasing within group {k}"
            );
        }
        let mut expect: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
        for (k, sv) in side_major_stable_sort(&sides) {
            match expect.last_mut() {
                Some((ck, vals)) if *ck == k => vals.push(sv),
                _ => expect.push((k, vec![sv])),
            }
        }
        prop_assert_eq!(streamed, expect);
    }

    /// Co-groups arrive whole even when the consumer reads only a prefix
    /// of each group's side-tagged values (the engine must drain the
    /// remainder without redelivery).
    #[test]
    fn cogroup_partial_consumption_preserves_boundaries(
        sides in arb_sided_runs(),
        take in 0usize..3,
    ) {
        let slices: Vec<Vec<&[(u32, u32)]>> = sides
            .iter()
            .map(|runs| runs.iter().map(Vec::as_slice).collect())
            .collect();
        let mut streamed: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
        CoGroupedRuns::new(slices).for_each_group(|k, vs| {
            streamed.push((*k, vs.take(take).map(|(s, &v)| (s, v)).collect()));
        });
        let mut expect: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
        for (k, sv) in side_major_stable_sort(&sides) {
            match expect.last_mut() {
                Some((ck, vals)) if *ck == k => vals.push(sv),
                _ => expect.push((k, vec![sv])),
            }
        }
        let expect: Vec<(u32, Vec<(u32, u32)>)> = expect
            .into_iter()
            .map(|(k, vals)| (k, vals.into_iter().take(take).collect()))
            .collect();
        prop_assert_eq!(streamed, expect);
    }

    /// Same contract on the generic by-reference tree: `u16` keys have no
    /// packed embedding, so they take the fallback path the engine uses
    /// for compound keys (e.g. MassJoin signatures).
    #[test]
    fn merge_equals_concat_stable_sort_generic_path(
        runs in prop::collection::vec(
            prop::collection::vec((0u16..20, 0u32..1000), 0..40).prop_map(|mut run| {
                run.sort_by_key(|&(k, _)| k);
                run
            }),
            0..8,
        )
    ) {
        let slices: Vec<&[(u16, u32)]> = runs.iter().map(Vec::as_slice).collect();
        let merged: Vec<(u16, u32)> = KWayMerge::new(slices).copied().collect();
        let mut all: Vec<(u16, u32)> = runs.iter().flatten().copied().collect();
        all.sort_by_key(|a| a.0);
        prop_assert_eq!(merged, all);
    }

    /// Same contract on the u128-packed path: `(u32, u32)` keys — the
    /// verification job's record-pair keys.
    #[test]
    fn merge_equals_concat_stable_sort_pair_keys(
        runs in prop::collection::vec(
            prop::collection::vec(((0u32..6, 0u32..6), 0u32..1000), 0..40).prop_map(|mut run| {
                run.sort_by_key(|&(k, _)| k);
                run
            }),
            0..8,
        )
    ) {
        let slices: Vec<&[((u32, u32), u32)]> = runs.iter().map(Vec::as_slice).collect();
        let merged: Vec<((u32, u32), u32)> = KWayMerge::new(slices).copied().collect();
        let mut all: Vec<((u32, u32), u32)> = runs.iter().flatten().copied().collect();
        all.sort_by_key(|a| a.0);
        prop_assert_eq!(merged, all);
    }

    /// Groups arrive whole even when the consumer reads only a prefix of
    /// each group's values (the engine must drain the remainder).
    #[test]
    fn partial_consumption_preserves_boundaries(
        runs in arb_sorted_runs(),
        take in 0usize..3,
    ) {
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(Vec::as_slice).collect();
        let mut streamed: Vec<(u32, Vec<u32>)> = Vec::new();
        GroupedRuns::new(slices).for_each_group(|k, vs| {
            streamed.push((*k, vs.take(take).copied().collect()));
        });
        let expect: Vec<(u32, Vec<u32>)> = group_walk(&concat_stable_sort(&runs))
            .into_iter()
            .map(|(k, vals)| (k, vals.into_iter().take(take).collect()))
            .collect();
        prop_assert_eq!(streamed, expect);
    }

    /// End-to-end: a job driven through a native StreamingReducer yields
    /// byte-identical output partitions and metrics to the same job driven
    /// through the equivalent batch Reducer (the adapter path).
    #[test]
    fn streaming_and_batch_reducers_agree(
        records in prop::collection::vec((0u32..30, 0u32..1000), 0..150),
        splits in 1usize..5,
        reducers in 1usize..5,
    ) {
        let input = Dataset::from_records(records, splits);
        let (batch_out, batch_m) = JobBuilder::new("batch")
            .reduce_tasks(reducers)
            .run(&input, |_| IdMap, |_| BatchSum);
        let (stream_out, stream_m) = JobBuilder::new("stream")
            .reduce_tasks(reducers)
            .run(&input, |_| IdMap, |_| StreamSum);
        prop_assert_eq!(batch_out.partitions(), stream_out.partitions());
        prop_assert_eq!(batch_m.shuffle_records, stream_m.shuffle_records);
        prop_assert_eq!(batch_m.shuffle_bytes, stream_m.shuffle_bytes);
    }
}

/// Identity mapper over (u32, u32).
struct IdMap;
impl Mapper for IdMap {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u32;
    fn map(&mut self, k: u32, v: u32, out: &mut Emitter<u32, u32>) {
        out.emit(k, v);
    }
}

/// Batch sum (goes through the Reducer → StreamingReducer adapter).
struct BatchSum;
impl Reducer for BatchSum {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&mut self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u64>) {
        out.emit(*k, vs.into_iter().map(u64::from).sum());
    }
}

/// Native streaming sum (no per-key materialization anywhere).
struct StreamSum;
impl StreamingReducer for StreamSum {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce_group(
        &mut self,
        k: &u32,
        vs: &mut GroupValues<'_, '_, u32, u32>,
        out: &mut Emitter<u32, u64>,
    ) {
        out.emit(*k, vs.map(|&v| u64::from(v)).sum());
    }
}
