//! Profiler ground truth: a pipelined [`PlanRunner`] execution must leave
//! behind a trace the plan-aware profiler can reconstruct exactly.
//!
//! Satellite of the profiling tentpole: every task span carries matching
//! `(plan, stage, partition)` args, the DAG [`PlanProfile`] rebuilds from
//! the trace equals the declared [`Plan`] shape, and on a single worker
//! lane the critical path spans the whole makespan.
//!
//! The collector slot is process-global, so every test serializes on one
//! mutex.

use proptest::prelude::*;
use ssj_mapreduce::{Dataset, Emitter, Mapper, Plan, PlanRunner, Reducer, StageHandle};
use ssj_observe::{spans_from_events, FieldValue, PlanProfile, ProfSpan, TaskKind};
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Spreads keys over a fixed keyspace.
struct Spread;
impl Mapper for Spread {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn map(&mut self, k: u32, v: u64, out: &mut Emitter<u32, u64>) {
        out.emit(k % 13, v);
        out.emit(k % 7, v ^ 0x9e37);
    }
}

/// Sums per key (output feeds the next [`Spread`] stage unchanged).
struct Sum;
impl Reducer for Sum {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&mut self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
        out.emit(*k, vs.into_iter().fold(0u64, u64::wrapping_add));
    }
}

const MAP_PARTITIONS: usize = 4;

/// Declared `(stage, upstreams)` DAG shape.
type DagShape = Vec<(usize, Vec<usize>)>;

/// A linear `stages`-deep chain; returns the plan, its terminal handle,
/// and the declared `(stage, upstream)` DAG shape.
fn chain_plan(
    records: usize,
    stages: usize,
    reduce_tasks: usize,
    workers: usize,
) -> (Plan, StageHandle<u32, u64>, DagShape) {
    let input: Dataset<u32, u64> = Dataset::from_records(
        (0..records as u32)
            .map(|i| (i, (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect(),
        MAP_PARTITIONS,
    );
    let mut plan = Plan::new("profiled-chain").with_workers(workers);
    let mut handle = plan.add("stage-0", input, reduce_tasks, |_| Spread, |_| Sum);
    let mut declared = vec![(0, vec![])];
    for s in 1..stages {
        handle = plan.add(
            format!("stage-{s}"),
            handle,
            reduce_tasks,
            |_| Spread,
            |_| Sum,
        );
        declared.push((s, vec![s - 1]));
    }
    (plan, handle, declared)
}

/// Run the plan pipelined under a fresh collector; returns the raw spans.
fn traced_run(records: usize, stages: usize, reduce_tasks: usize, workers: usize) -> Vec<ProfSpan> {
    let collector = ssj_observe::install_collector();
    let (plan, handle, _) = chain_plan(records, stages, reduce_tasks, workers);
    let mut run = PlanRunner::pipelined().run(plan);
    let _ = run.take_output(handle);
    ssj_observe::uninstall_collector();
    spans_from_events(&collector.events())
}

fn arg<'a>(s: &'a ProfSpan, key: &str) -> Option<&'a FieldValue> {
    s.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn arg_u64(s: &ProfSpan, key: &str) -> Option<u64> {
    match arg(s, key)? {
        FieldValue::UInt(v) => Some(*v),
        FieldValue::Int(v) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every task span of a pipelined run is fully plan-tagged, and the
    /// profiler's reconstruction agrees with the declared plan: same DAG,
    /// a full complement of map/reduce tasks per stage, first attempts
    /// everywhere (no faults injected).
    #[test]
    fn task_spans_tag_plan_stage_partition_and_dag_matches(
        records in 16usize..64,
        stages in 1usize..4,
        reduce_tasks in prop::sample::select(vec![2usize, 3, 5]),
        workers in prop::sample::select(vec![1usize, 3]),
    ) {
        let _guard = serial();
        let spans = traced_run(records, stages, reduce_tasks, workers);
        let declared = chain_plan(records, stages, reduce_tasks, workers).2;

        // Raw-span obligation: every engine task span names the plan and
        // carries in-range stage/partition/attempt args.
        let task_spans: Vec<&ProfSpan> =
            spans.iter().filter(|s| s.cat == "mr.task").collect();
        prop_assert!(!task_spans.is_empty());
        for s in &task_spans {
            prop_assert_eq!(
                arg(s, "plan"),
                Some(&FieldValue::Str("profiled-chain".into()))
            );
            let stage = arg_u64(s, "stage").expect("stage arg") as usize;
            let partition = arg_u64(s, "partition").expect("partition arg") as usize;
            prop_assert!(stage < stages);
            let width = match s.name.as_str() {
                // Stage 0 maps over the input splits; later stages map
                // over the upstream's reduce partitions.
                "map" if stage == 0 => MAP_PARTITIONS,
                "map" => reduce_tasks,
                _ => reduce_tasks,
            };
            prop_assert!(partition < width, "{} partition {partition} >= {width}", s.name);
            prop_assert_eq!(arg_u64(s, "attempt"), Some(0));
        }

        // Reconstruction: one profile whose DAG is the declared shape and
        // whose per-stage task census is complete.
        let profiles = PlanProfile::from_spans(&spans);
        prop_assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        prop_assert_eq!(p.plan.as_str(), "profiled-chain");
        prop_assert_eq!(p.dag(), declared);
        for (stage, upstream) in p.dag() {
            let maps = p
                .tasks
                .iter()
                .filter(|t| t.stage == stage && t.kind == TaskKind::Map)
                .count();
            let reduces = p
                .tasks
                .iter()
                .filter(|t| t.stage == stage && t.kind == TaskKind::Reduce)
                .count();
            let expected_maps = if upstream.is_empty() {
                MAP_PARTITIONS
            } else {
                reduce_tasks
            };
            prop_assert_eq!(maps, expected_maps);
            prop_assert_eq!(reduces, reduce_tasks);
        }

        // Dependency soundness: no reduce starts before the last map of
        // its stage ends; no downstream map starts before its upstream
        // partition's reduce ends.
        for t in &p.tasks {
            match t.kind {
                TaskKind::Reduce => {
                    let latest_map = p
                        .tasks
                        .iter()
                        .filter(|m| m.stage == t.stage && m.kind == TaskKind::Map)
                        .map(|m| m.end_us)
                        .max()
                        .unwrap();
                    prop_assert!(t.start_us >= latest_map);
                }
                TaskKind::Map => {
                    for u in p.upstreams_of(t.stage) {
                        let feeder = p
                            .tasks
                            .iter()
                            .find(|r| {
                                r.stage == *u
                                    && r.kind == TaskKind::Reduce
                                    && r.partition == t.partition
                            })
                            .expect("upstream reduce");
                        prop_assert!(t.start_us >= feeder.end_us);
                    }
                }
                // The fixture plans only map/reduce stages; co-group DAG
                // soundness is pinned by the observe crate's own tests.
                TaskKind::CoGroup => {}
            }
        }
    }
}

/// On a single worker lane every task has a resource predecessor back to
/// the first, so the reconstructed critical path must span the makespan
/// exactly — the profiler's headline number is checked against ground
/// truth, not a tolerance.
#[test]
fn single_lane_critical_path_equals_makespan() {
    let _guard = serial();
    let spans = traced_run(48, 3, 4, 1);
    let profiles = PlanProfile::from_spans(&spans);
    assert_eq!(profiles.len(), 1);
    let p = &profiles[0];
    assert!(p.makespan_us() > 0);
    assert_eq!(p.critical_path_span_us(), p.makespan_us());
    // The path is chronologically chained and ends at the terminal task.
    let path = p.critical_path();
    for w in path.windows(2) {
        assert!(p.tasks[w[0]].start_us <= p.tasks[w[1]].start_us);
    }
    let last = &p.tasks[*path.last().unwrap()];
    assert_eq!(last.end_us, p.end_us());
    // Slack sanity: the terminal task is tight.
    assert_eq!(p.slack_us()[*path.last().unwrap()], 0);
}
