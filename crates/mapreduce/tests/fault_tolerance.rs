//! End-to-end fault-tolerance tests: a job run under an aggressive seeded
//! fault plan must produce byte-identical output to the fault-free run, and
//! the same seed must reproduce the exact same retry/injection counters.

use ssj_faults::{FaultPlan, RetryPolicy, SpeculationPolicy};
use ssj_mapreduce::{Dataset, Emitter, JobBuilder, Mapper, Reducer};

/// Word-count-shaped mapper: emits (token, 1) per token.
struct TokenMap;
impl Mapper for TokenMap {
    type InKey = u32;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&mut self, _k: u32, line: String, out: &mut Emitter<String, u64>) {
        for tok in line.split_whitespace() {
            out.emit(tok.to_string(), 1);
        }
    }
}

struct CountRed;
impl Reducer for CountRed {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&mut self, k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>) {
        out.emit(k.clone(), vs.into_iter().sum());
    }
}

fn corpus() -> Dataset<u32, String> {
    let lines = [
        "the quick brown fox jumps over the lazy dog",
        "set similarity joins scale out on hadoop",
        "the fox filters candidate pairs by prefix",
        "length filter position filter suffix filter",
        "the the the quick quick join join join join",
        "stragglers are the long tail of the shuffle",
    ];
    let records: Vec<(u32, String)> = (0..48u32)
        .map(|i| (i, lines[i as usize % lines.len()].to_string()))
        .collect();
    Dataset::from_records(records, 8)
}

fn sorted_counts(out: Dataset<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = out.into_records().collect();
    v.sort();
    v
}

fn run_with(plan: Option<FaultPlan>) -> (Vec<(String, u64)>, ssj_mapreduce::ExecSummary) {
    let mut job = JobBuilder::new("wordcount")
        .reduce_tasks(4)
        .retry(RetryPolicy::default());
    if let Some(p) = plan {
        job = job.faults(p);
    }
    let (out, metrics) = job.run(&corpus(), |_| TokenMap, |_| CountRed);
    (sorted_counts(out), metrics.exec)
}

#[test]
fn chaos_output_matches_fault_free_output() {
    ssj_faults::silence_injected_panics();
    let (clean, clean_exec) = run_with(None);
    assert_eq!(clean_exec.retries, 0, "no faults, no retries");

    for seed in [1u64, 7, 42] {
        let (chaotic, exec) = run_with(Some(FaultPlan::chaos(seed, 0.25)));
        assert_eq!(
            chaotic, clean,
            "seed {seed}: fault injection must not change results"
        );
        assert!(
            exec.injected_total() > 0,
            "seed {seed}: 25% chaos over 12 tasks should inject something"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_retry_counters() {
    ssj_faults::silence_injected_panics();
    let (out_a, exec_a) = run_with(Some(FaultPlan::chaos(99, 0.3)));
    let (out_b, exec_b) = run_with(Some(FaultPlan::chaos(99, 0.3)));
    assert_eq!(out_a, out_b);
    assert_eq!(exec_a.attempts, exec_b.attempts);
    assert_eq!(exec_a.retries, exec_b.retries);
    assert_eq!(exec_a.injected_errors, exec_b.injected_errors);
    assert_eq!(exec_a.injected_panics, exec_b.injected_panics);
    assert_eq!(exec_a.injected_stragglers, exec_b.injected_stragglers);
}

#[test]
fn different_seeds_draw_different_faults() {
    ssj_faults::silence_injected_panics();
    let mut totals = std::collections::BTreeSet::new();
    for seed in 0..6u64 {
        let (_, exec) = run_with(Some(FaultPlan::chaos(seed, 0.3)));
        totals.insert((
            exec.injected_errors,
            exec.injected_panics,
            exec.injected_stragglers,
        ));
    }
    assert!(
        totals.len() > 1,
        "six seeds should not all produce the same injection profile"
    );
}

#[test]
fn globally_installed_plan_applies_and_uninstalls() {
    ssj_faults::silence_injected_panics();
    let (clean, _) = run_with(None);

    ssj_faults::install_plan(FaultPlan::chaos(5, 0.25));
    let (out, metrics) = JobBuilder::new("wordcount")
        .reduce_tasks(4)
        .retry(RetryPolicy::default())
        .run(&corpus(), |_| TokenMap, |_| CountRed);
    ssj_faults::uninstall_plan();

    assert_eq!(sorted_counts(out), clean);
    assert!(metrics.exec.injected_total() > 0);

    // After uninstall, jobs run clean again.
    let (out2, metrics2) =
        JobBuilder::new("wordcount")
            .reduce_tasks(4)
            .run(&corpus(), |_| TokenMap, |_| CountRed);
    assert_eq!(sorted_counts(out2), clean);
    assert_eq!(metrics2.exec.injected_total(), 0);
}

#[test]
fn speculation_under_stragglers_preserves_output() {
    ssj_faults::silence_injected_panics();
    let (clean, _) = run_with(None);
    let mut plan = FaultPlan::new(11).with_stragglers(0.5, 4.0);
    plan.straggler_delay = std::time::Duration::from_millis(30);
    let (out, metrics) = JobBuilder::new("wordcount")
        .reduce_tasks(4)
        .retry(RetryPolicy::default())
        .speculation(SpeculationPolicy::enabled())
        .faults(plan)
        .run(&corpus(), |_| TokenMap, |_| CountRed);
    assert_eq!(sorted_counts(out), clean);
    assert!(metrics.exec.injected_stragglers > 0, "{:?}", metrics.exec);
}

#[test]
#[should_panic(expected = "failed after")]
fn exhausted_retry_budget_fails_the_job() {
    ssj_faults::silence_injected_panics();
    // Every attempt of every task errors (rate 1.0, unlimited injected
    // attempts), so the retry budget must run out and the job must fail
    // with the task-failure context in the panic message.
    let mut plan = FaultPlan::new(3).with_failures(1.0, 0.0);
    plan.max_injected_attempts = u32::MAX;
    let _ = JobBuilder::new("wordcount")
        .reduce_tasks(2)
        .retry(RetryPolicy::default())
        .faults(plan)
        .run(&corpus(), |_| TokenMap, |_| CountRed);
}
