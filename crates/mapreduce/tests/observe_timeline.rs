//! Integration of the engine with `ssj-observe`: span nesting, combiner
//! accounting, and Perfetto export invariants.
//!
//! The collector slot is process-global, so every test here serializes on
//! one mutex (the file runs single-process under `cargo test`).

use ssj_mapreduce::{
    ChainMetrics, ClusterModel, Dataset, Emitter, JobBuilder, Mapper, Reducer, SumCombiner,
};
use ssj_observe::{ChromeTrace, Collector, TraceEvent};
use std::sync::{Arc, Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u32;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&mut self, _k: u32, line: String, out: &mut Emitter<String, u64>) {
        for w in line.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&mut self, word: &String, counts: Vec<u64>, out: &mut Emitter<String, u64>) {
        out.emit(word.clone(), counts.iter().sum());
    }
}

fn word_input() -> Dataset<u32, String> {
    let lines: Vec<(u32, String)> = (0..40u32)
        .map(|i| (i, format!("alpha beta gamma alpha t{} t{}", i % 7, i % 3)))
        .collect();
    Dataset::from_records(lines, 4)
}

fn run_traced_job() -> (Arc<Collector>, ssj_mapreduce::JobMetrics) {
    let collector = ssj_observe::install_collector();
    let (_, metrics) = JobBuilder::new("observe-wc").reduce_tasks(3).run_full(
        &word_input(),
        |_| Tokenize,
        |_| Sum,
        &ssj_mapreduce::HashPartitioner,
        Some(&SumCombiner),
    );
    ssj_observe::uninstall_collector();
    (collector, metrics)
}

fn contains(outer: &TraceEvent, inner: &TraceEvent) -> bool {
    outer.ts_us <= inner.ts_us && outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us
}

#[test]
fn spans_nest_task_in_phase_in_job() {
    let _guard = serial();
    let (collector, _) = run_traced_job();
    let events = collector.events();
    let job = events
        .iter()
        .find(|e| e.cat == "mr.job" && e.name == "observe-wc")
        .expect("job span");
    let phases: Vec<&TraceEvent> = events.iter().filter(|e| e.cat == "mr.phase").collect();
    let tasks: Vec<&TraceEvent> = events.iter().filter(|e| e.cat == "mr.task").collect();
    assert_eq!(phases.len(), 3, "map + shuffle + reduce phases");
    assert_eq!(tasks.len(), 4 + 3, "4 map tasks + 3 reduce tasks");
    for phase in &phases {
        assert!(
            contains(job, phase),
            "phase {:?} [{}, {}] outside job [{}, {}]",
            phase.name,
            phase.ts_us,
            phase.ts_us + phase.dur_us,
            job.ts_us,
            job.ts_us + job.dur_us
        );
    }
    // Every task interval lies inside the matching phase interval.
    for task in &tasks {
        let phase = phases
            .iter()
            .find(|p| p.name == task.name)
            .expect("phase for task kind");
        assert!(
            contains(phase, task),
            "{} task [{}, {}] outside its phase [{}, {}]",
            task.name,
            task.ts_us,
            task.ts_us + task.dur_us,
            phase.ts_us,
            phase.ts_us + phase.dur_us
        );
    }
}

#[test]
fn combiner_accounting_is_visible() {
    let _guard = serial();
    let (_, metrics) = run_traced_job();
    // "alpha" appears twice per line: the combiner must shrink the shuffle.
    assert!(metrics.pre_combine_records > metrics.shuffle_records);
    assert!(metrics.shuffle_records > 0);
    // The split phase walls sum to the whole.
    assert!(
        metrics.map_elapsed + metrics.shuffle_elapsed + metrics.reduce_elapsed <= metrics.elapsed
    );
}

#[test]
fn export_is_valid_json_with_monotonic_lanes() {
    let _guard = serial();
    let (collector, metrics) = run_traced_job();
    // Add the simulated timeline next to the real one, as expt does.
    let cluster = ClusterModel::paper_default(5);
    let mut chain = ChainMetrics::default();
    chain.push(metrics);
    let schedules = cluster.simulate_chain_schedule(&chain);
    assert_eq!(schedules.len(), 1);

    let json = ChromeTrace::from_collector(&collector).to_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(!json.contains("\n"), "single-line document");

    // Re-parse the "X" events' (pid, tid, ts) in emitted order: timestamps
    // must be non-decreasing within every lane.
    let mut last: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    for chunk in json.split("\"ph\":\"X\"").skip(1) {
        let field = |key: &str| -> u64 {
            let at = chunk
                .find(key)
                .unwrap_or_else(|| panic!("{key} in {chunk}"));
            chunk[at + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let lane = (field("\"pid\":"), field("\"tid\":"));
        let ts = field("\"ts\":");
        if let Some(&prev) = last.get(&lane) {
            assert!(ts >= prev, "lane {lane:?} went backwards: {prev} -> {ts}");
        }
        last.insert(lane, ts);
    }
    assert!(!last.is_empty(), "no X events exported");
}

#[test]
fn registry_collects_engine_metrics() {
    let _guard = serial();
    let registry = ssj_observe::install_registry();
    let (_, metrics) = run_traced_job();
    ssj_observe::uninstall_registry();
    assert_eq!(registry.counter_get("mr.jobs"), 1);
    assert_eq!(
        registry.counter_get("mr.shuffle.records"),
        metrics.shuffle_records as u64
    );
    assert_eq!(
        registry.counter_get("mr.pre_combine.records"),
        metrics.pre_combine_records as u64
    );
    let h = registry
        .histogram_get("mr.reduce.input_records")
        .expect("histogram");
    assert_eq!(h.count(), 3);
}
