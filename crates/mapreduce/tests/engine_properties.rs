//! Property tests for the MapReduce engine: shuffle correctness (every
//! emitted pair reaches exactly the reducer its partitioner chose, exactly
//! once), determinism of results and byte counters, and combiner
//! transparency.

use proptest::prelude::*;
use ssj_mapreduce::{
    Dataset, DirectPartitioner, Emitter, HashPartitioner, JobBuilder, Mapper, Reducer, SumCombiner,
};

/// Identity mapper over (u32, u32).
struct IdMap;
impl Mapper for IdMap {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u32;
    fn map(&mut self, k: u32, v: u32, out: &mut Emitter<u32, u32>) {
        out.emit(k, v);
    }
}

/// Reducer that re-emits each (key, value) pair unchanged.
struct Passthrough;
impl Reducer for Passthrough {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u32;
    fn reduce(&mut self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>) {
        for v in vs {
            out.emit(*k, v);
        }
    }
}

/// Reducer summing values per key.
struct SumRed;
impl Reducer for SumRed {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u32;
    fn reduce(&mut self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>) {
        out.emit(*k, vs.into_iter().sum());
    }
}

fn arb_records() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..50, 0u32..1000), 0..200)
}

proptest! {
    /// Every emitted pair appears in the output exactly once (multiset
    /// equality through a passthrough job).
    #[test]
    fn shuffle_delivers_exactly_once(
        records in arb_records(),
        splits in 1usize..6,
        reducers in 1usize..6,
    ) {
        let input = Dataset::from_records(records.clone(), splits);
        let (out, metrics) = JobBuilder::new("pass")
            .reduce_tasks(reducers)
            .run(&input, |_| IdMap, |_| Passthrough);
        let mut expect = records;
        expect.sort();
        let mut got: Vec<(u32, u32)> = out.into_records().collect();
        got.sort();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(metrics.shuffle_records, metrics.map_output_records());
    }

    /// Each pair lands on the reduce task chosen by the partitioner: with a
    /// DirectPartitioner on the key, output partition p contains only keys
    /// with k % reducers == p.
    #[test]
    fn partitioner_controls_placement(
        records in arb_records(),
        reducers in 1usize..5,
    ) {
        let input = Dataset::from_records(records, 3);
        let (out, _) = JobBuilder::new("direct")
            .reduce_tasks(reducers)
            .run_partitioned(
                &input,
                |_| IdMap,
                |_| Passthrough,
                &DirectPartitioner::new(|k: &u32| *k as usize),
            );
        for (p, part) in out.partitions().iter().enumerate() {
            for (k, _) in part {
                prop_assert_eq!(*k as usize % reducers, p);
            }
        }
    }

    /// Re-running the same job yields byte-identical results and counters
    /// (determinism matters: experiment tables must be reproducible).
    #[test]
    fn jobs_are_deterministic(records in arb_records()) {
        let input = Dataset::from_records(records, 4);
        let run = || {
            JobBuilder::new("det")
                .reduce_tasks(3)
                .run(&input, |_| IdMap, |_| SumRed)
        };
        let (out1, m1) = run();
        let (out2, m2) = run();
        prop_assert_eq!(out1.partitions(), out2.partitions());
        prop_assert_eq!(m1.shuffle_bytes, m2.shuffle_bytes);
        prop_assert_eq!(m1.shuffle_records, m2.shuffle_records);
    }

    /// A sum combiner must not change the result of a sum reducer, and can
    /// only shrink the shuffle.
    #[test]
    fn combiner_is_transparent(records in arb_records(), splits in 1usize..5) {
        let input = Dataset::from_records(records, splits);
        let (plain, mp) = JobBuilder::new("plain")
            .reduce_tasks(3)
            .run(&input, |_| IdMap, |_| SumRed);
        let (combined, mc) = JobBuilder::new("combined")
            .reduce_tasks(3)
            .run_full(&input, |_| IdMap, |_| SumRed, &HashPartitioner, Some(&SumCombiner));
        prop_assert_eq!(plain.partitions(), combined.partitions());
        prop_assert!(mc.shuffle_records <= mp.shuffle_records);
        prop_assert!(mc.shuffle_bytes <= mp.shuffle_bytes);
        prop_assert_eq!(mc.pre_combine_records, mp.shuffle_records);
    }

    /// Worker-thread count never affects results or logical byte counts.
    #[test]
    fn worker_count_is_observationally_neutral(records in arb_records()) {
        let input = Dataset::from_records(records, 6);
        let (o1, m1) = JobBuilder::new("w1")
            .reduce_tasks(4)
            .workers(1)
            .run(&input, |_| IdMap, |_| SumRed);
        let (o4, m4) = JobBuilder::new("w4")
            .reduce_tasks(4)
            .workers(4)
            .run(&input, |_| IdMap, |_| SumRed);
        prop_assert_eq!(o1.partitions(), o4.partitions());
        prop_assert_eq!(m1.shuffle_bytes, m4.shuffle_bytes);
    }
}
