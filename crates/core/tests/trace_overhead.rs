//! Tracing-overhead budget: instrumentation must be cheap enough to leave
//! on permanently.
//!
//! Comparing two wall-clock runs (traced vs untraced) is hopelessly noisy
//! at test scale, so the budget is checked compositionally instead:
//! measure the *per-span* cost with a collector installed, count the
//! spans a small FS-Join run actually produces, and require
//!
//! ```text
//! spans_produced x per_span_cost  <  2% x run_wall_clock
//! ```
//!
//! i.e. the total time attributable to span bookkeeping is under the 2%
//! budget. The untraced fast path is additionally required to be at
//! least as cheap per call as the traced one (it does strictly less: one
//! relaxed atomic load, no allocation).

use fsjoin::FsJoinConfig;
use ssj_text::{encode, CorpusProfile};
use std::time::Instant;

/// One representative task-style span with typical args.
fn one_span() {
    let _s = ssj_observe::span("mr.task", "map")
        .field("job", "overhead-probe")
        .field("index", 3u64)
        .field("attempt", 0u64);
}

/// Median-of-odd-runs seconds for `f`.
fn timed(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[test]
fn tracing_overhead_is_under_two_percent() {
    let collection = encode(
        &CorpusProfile::WikiLike
            .config()
            .with_records(150)
            .generate(),
    );
    let cfg = FsJoinConfig::default().with_theta(0.8);

    // Wall clock and span census of the traced run.
    let collector = ssj_observe::install_collector();
    let wall_secs = timed(3, || {
        collector.events(); // keep the collector demonstrably live
        let res = fsjoin::run_self_join(&collection, &cfg);
        std::hint::black_box(res.pairs.len());
    });
    ssj_observe::uninstall_collector();
    let spans_per_run = collector.events().len() / 3;
    assert!(spans_per_run > 0, "run produced no spans");

    // Per-span cost, amortized over a large batch (collector installed so
    // the full record-and-store path runs).
    let batch = 20_000u64;
    let _c = ssj_observe::install_collector();
    let traced_batch_secs = timed(5, || {
        for _ in 0..batch {
            one_span();
        }
    });
    ssj_observe::uninstall_collector();
    let per_span_secs = traced_batch_secs / batch as f64;

    let overhead_secs = spans_per_run as f64 * per_span_secs;
    let budget_secs = 0.02 * wall_secs;
    assert!(
        overhead_secs < budget_secs,
        "tracing over budget: {spans_per_run} spans x {:.1}ns = {:.3}ms, \
         budget 2% of {:.1}ms = {:.3}ms",
        per_span_secs * 1e9,
        overhead_secs * 1e3,
        wall_secs * 1e3,
        budget_secs * 1e3
    );

    // The disabled fast path must not regress past the enabled one (it
    // allocates nothing and takes one atomic load; allow 2x headroom for
    // timer noise at nanosecond scale).
    let untraced_batch_secs = timed(5, || {
        for _ in 0..batch {
            one_span();
        }
    });
    assert!(
        untraced_batch_secs < traced_batch_secs * 2.0,
        "untraced span path slower than traced: {:.1}ns vs {:.1}ns per span",
        untraced_batch_secs / batch as f64 * 1e9,
        traced_batch_secs / batch as f64 * 1e9
    );
}
