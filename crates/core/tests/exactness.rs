//! Exactness property tests: FS-Join under *every* configuration axis must
//! produce exactly the oracle's result set with exact scores. This is the
//! load-bearing guarantee behind the paper's claim that filters and
//! partitioning prune only provably-dissimilar pairs.

use fsjoin::{FilterSet, FsJoinConfig, JoinKernel, PivotStrategy};
use proptest::prelude::*;
use ssj_similarity::naive::naive_self_join;
use ssj_similarity::pair::compare_results;
use ssj_similarity::Measure;
use ssj_text::{Collection, Record};

/// Strategy: a small collection with planted near-duplicates so results
/// exist at high thresholds.
fn arb_collection() -> impl Strategy<Value = Collection> {
    (
        prop::collection::vec(prop::collection::vec(0u32..80, 1..25), 2..40),
        prop::collection::vec(0usize..40, 0..10),
    )
        .prop_map(|(base_docs, dup_of)| {
            let mut docs = base_docs;
            let n = docs.len();
            for (k, &src) in dup_of.iter().enumerate() {
                let mut copy = docs[src % n].clone();
                // Perturb slightly: drop one token, add one.
                if copy.len() > 1 {
                    copy.remove(k % copy.len());
                }
                copy.push(80 + k as u32);
                docs.push(copy);
            }
            // Build a collection directly in "rank space": token ids are
            // already comparable; frequencies are computed for pivot
            // selection.
            let mut freqs = vec![0u64; 91];
            let records: Vec<Record> = docs
                .into_iter()
                .enumerate()
                .map(|(i, toks)| Record::new(i as u32, toks))
                .collect();
            for r in &records {
                for &t in &r.tokens {
                    freqs[t as usize] += 1;
                }
            }
            // Rank space must be frequency-ascending for Even-TF semantics;
            // re-rank tokens by (freq, id).
            let mut by_freq: Vec<u32> = (0..91).collect();
            by_freq.sort_by_key(|&t| (freqs[t as usize], t));
            let mut rank_of = vec![0u32; 91];
            for (rank, &t) in by_freq.iter().enumerate() {
                rank_of[t as usize] = rank as u32;
            }
            let records = records
                .into_iter()
                .map(|r| {
                    Record::new(
                        r.id,
                        r.tokens.iter().map(|&t| rank_of[t as usize]).collect(),
                    )
                })
                .collect::<Vec<_>>();
            let mut rank_freqs = vec![0u64; 91];
            for r in &records {
                for &t in &r.tokens {
                    rank_freqs[t as usize] += 1;
                }
            }
            Collection::new(records, rank_freqs, None)
        })
}

fn check(c: &Collection, cfg: &FsJoinConfig, label: &str) -> Result<(), TestCaseError> {
    let want = naive_self_join(&c.views(), cfg.measure, cfg.theta);
    let got = fsjoin::run_self_join(c, cfg);
    if let Err(e) = compare_results(&got.pairs, &want, 1e-9) {
        return Err(TestCaseError::fail(format!("{label}: {e}")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Default configuration across thresholds and measures.
    #[test]
    fn default_config_matches_oracle(
        c in arb_collection(),
        theta in prop::sample::select(vec![0.5, 0.65, 0.75, 0.8, 0.9, 0.95]),
        measure in prop::sample::select(vec![Measure::Jaccard, Measure::Dice, Measure::Cosine]),
    ) {
        let cfg = FsJoinConfig::default()
            .with_theta(theta)
            .with_measure(measure)
            .with_workers(1);
        check(&c, &cfg, "default")?;
    }

    /// Every join kernel, with and without filters.
    #[test]
    fn kernels_and_filters_match_oracle(
        c in arb_collection(),
        theta in prop::sample::select(vec![0.6, 0.8, 0.9]),
        kernel in prop::sample::select(JoinKernel::all().to_vec()),
        filters in prop::sample::select(vec![FilterSet::ALL, FilterSet::NONE, FilterSet::STRL_ONLY]),
    ) {
        let cfg = FsJoinConfig::default()
            .with_theta(theta)
            .with_kernel(kernel)
            .with_filters(filters)
            .with_workers(1);
        check(&c, &cfg, "kernel/filters")?;
    }

    /// Pivot strategies and fragment counts (including degenerate 1).
    #[test]
    fn pivots_match_oracle(
        c in arb_collection(),
        strategy in prop::sample::select(PivotStrategy::all().to_vec()),
        fragments in prop::sample::select(vec![1usize, 2, 5, 16, 64]),
        seed in 0u64..5,
    ) {
        let cfg = FsJoinConfig::default()
            .with_theta(0.75)
            .with_pivot_strategy(strategy)
            .with_fragments(fragments)
            .with_seed(seed)
            .with_workers(1);
        check(&c, &cfg, "pivots")?;
    }

    /// Horizontal partitioning exactly-once across pivot counts.
    #[test]
    fn horizontal_matches_oracle(
        c in arb_collection(),
        t in prop::sample::select(vec![0usize, 1, 2, 5, 10]),
        theta in prop::sample::select(vec![0.6, 0.8]),
    ) {
        let cfg = FsJoinConfig::default()
            .with_theta(theta)
            .with_horizontal(t)
            .with_workers(1);
        check(&c, &cfg, "horizontal")?;
    }

    /// Task-count settings never change results.
    #[test]
    fn task_geometry_is_observationally_neutral(
        c in arb_collection(),
        map_tasks in 1usize..6,
        reduce_tasks in 1usize..6,
    ) {
        let cfg = FsJoinConfig::default()
            .with_theta(0.7)
            .with_tasks(map_tasks, reduce_tasks)
            .with_workers(1);
        check(&c, &cfg, "tasks")?;
    }
}

/// Non-proptest regression: an adversarial mix of lengths around horizontal
/// pivots with close spacing (the double-join hazard the paper's rule has).
#[test]
fn horizontal_boundary_stress() {
    // Many records of consecutive lengths sharing most tokens.
    let mut records = Vec::new();
    for (i, len) in (5usize..40).enumerate() {
        records.push(Record::new(i as u32, (0..len as u32).collect()));
        records.push(Record::new((100 + i) as u32, (1..len as u32 + 1).collect()));
    }
    // Dense ids for the driver.
    let records: Vec<Record> = records
        .into_iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u32, r.tokens))
        .collect();
    let freqs = vec![1u64; 41];
    let c = Collection::new(records, freqs, None);
    for theta in [0.6, 0.75, 0.9] {
        for t in [0, 1, 3, 7, 12] {
            let cfg = FsJoinConfig::default()
                .with_theta(theta)
                .with_horizontal(t)
                .with_workers(1);
            let want = naive_self_join(&c.views(), Measure::Jaccard, theta);
            let got = fsjoin::run_self_join(&c, &cfg);
            compare_results(&got.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("θ={theta} t={t}: {e}"));
        }
    }
}
