//! End-to-end equivalence pins for the columnar token data plane.
//!
//! The arena-backed [`TokenPool`] replaced per-record / per-segment owned
//! `Vec<TokenId>` storage, but the change is required to be *observationally
//! invisible*: join results, candidate counts, filter pruning counters and
//! every per-job shuffle-volume metric must be bit-identical to the
//! owned-vector implementation. The constants below were captured by
//! running the pre-refactor code on this exact seeded corpus; any drift in
//! partitioning, filtering, or — most subtly — logical byte accounting
//! (a span must cost what the tokens it denotes would cost on the wire)
//! shows up here as a hard failure.

use fsjoin::{run_self_join, run_self_join_pf, FsJoinConfig};
use ssj_common::ByteSize;
use ssj_mapreduce::JobMetrics;
use ssj_text::{encode, CorpusProfile, TokenPool};

/// Order- and score-sensitive FNV digest of a result set.
fn digest_pairs(pairs: &[ssj_similarity::SimilarPair]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for p in pairs {
        let (a, b) = p.ids();
        let sim_bits = (p.sim * 1e9).round() as u64;
        for v in [a as u64, b as u64, sim_bits] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn corpus() -> ssj_text::Collection {
    encode(
        &CorpusProfile::WikiLike
            .config()
            .with_records(300)
            .generate(),
    )
}

fn assert_job(job: &JobMetrics, shuffle_records: usize, shuffle_bytes: usize, map_input: usize) {
    assert_eq!(
        job.shuffle_records, shuffle_records,
        "{} shuffle_records",
        job.name
    );
    assert_eq!(
        job.shuffle_bytes, shuffle_bytes,
        "{} shuffle_bytes",
        job.name
    );
    let map_in: usize = job.map_tasks.iter().map(|t| t.input_bytes).sum();
    assert_eq!(map_in, map_input, "{} map_input_bytes", job.name);
}

#[test]
fn corpus_is_the_one_the_goldens_were_captured_on() {
    let c = corpus();
    assert_eq!(c.len(), 300);
    assert_eq!(c.universe(), 5631);
    assert_eq!(c.total_tokens(), 15929);
}

#[test]
fn default_config_matches_owned_vec_goldens() {
    let res = run_self_join(&corpus(), &FsJoinConfig::default().with_theta(0.8));
    assert_eq!(res.pairs.len(), 13);
    assert_eq!(digest_pairs(&res.pairs), 0x947e907426c9f3c7);
    assert_eq!(res.candidates, 20814);

    let fs = &res.filter_stats;
    assert_eq!(fs.pairs_considered, 53720);
    assert_eq!(fs.strl_pruned, 21944);
    assert_eq!(fs.segl_pruned, 5005);
    assert_eq!(fs.segi_pruned, 5957);
    assert_eq!(fs.segd_pruned, 0);
    assert_eq!(fs.policy_dropped, 0);
    assert_eq!(fs.emitted, 20814);

    assert_job(res.chain.job("fsjoin-filter").unwrap(), 7324, 304728, 67616);
    assert_job(
        res.chain.job("fsjoin-verify").unwrap(),
        20808,
        416160,
        416280,
    );
}

#[test]
fn fragmented_horizontal_config_matches_owned_vec_goldens() {
    let cfg = FsJoinConfig::default()
        .with_theta(0.7)
        .with_fragments(8)
        .with_horizontal(3);
    let res = run_self_join(&corpus(), &cfg);
    assert_eq!(res.pairs.len(), 20);
    assert_eq!(digest_pairs(&res.pairs), 0xec25473913792d83);
    assert_eq!(res.candidates, 18137);

    let fs = &res.filter_stats;
    assert_eq!(fs.pairs_considered, 50464);
    assert_eq!(fs.strl_pruned, 19098);
    assert_eq!(fs.segl_pruned, 2720);
    assert_eq!(fs.segi_pruned, 10509);
    assert_eq!(fs.emitted, 18137);

    assert_job(res.chain.job("fsjoin-filter").unwrap(), 4359, 244439, 67616);
    assert_job(
        res.chain.job("fsjoin-verify").unwrap(),
        18137,
        362740,
        362740,
    );
}

#[test]
fn pf_variant_matches_owned_vec_goldens() {
    let res = run_self_join_pf(&corpus(), &FsJoinConfig::default().with_theta(0.8));
    assert_eq!(res.pairs.len(), 13);
    assert_eq!(digest_pairs(&res.pairs), 0x947e907426c9f3c7);
    assert_eq!(res.candidates, 45);
    assert_job(
        res.chain.job("fsjoin-pf-discover").unwrap(),
        7324,
        304728,
        67616,
    );
    assert_job(res.chain.job("fsjoin-pf-dedup").unwrap(), 45, 720, 720);
    assert_job(res.chain.job("fsjoin-pf-verify").unwrap(), 13, 208, 368);
}

/// The byte-accounting invariant in isolation: a spanned segment's logical
/// [`ByteSize`] must equal the pre-columnar owned-vector layout — metadata
/// (rid 4 + side 1 + len/head/tail 12) plus a length-prefixed token vector
/// (4 + 4n) — for every segment the vertical partitioner produces.
#[test]
fn spanned_segment_byte_size_equals_owned_segment_size() {
    let c = corpus();
    let pool: &TokenPool = c.pool();
    let pivots = [40u32, 400, 2000];
    let mut checked = 0usize;
    for v in c.iter() {
        let segs = fsjoin::vertical::split_record(v.id, 0, v.tokens, c.span(v.id), &pivots);
        for (_, seg) in segs {
            let owned_layout = 17 + 4 + 4 * seg.tokens(pool).len();
            assert_eq!(seg.byte_size(), owned_layout);
            checked += 1;
        }
    }
    assert!(checked > 300, "expected multiple segments per record");
}
