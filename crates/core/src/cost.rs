//! The FS-Join cost model (paper §V-C, Lemma 5).
//!
//! The lemma decomposes a self-join's cost into per-unit charges for the
//! mapper (`C_m`), shuffle (`C_s`), reducer (`C_r`) and output (`C_o`):
//!
//! ```text
//! Cost = Σ|sᵢ|·C_m  +  Σ|sᵢ|·C_s                      (map + duplicate-free shuffle)
//!      + N·(M·p̄/N)²·avg|seg|·C_r                       (loop joins inside N fragments)
//!      + K·(C_m + C_s + C_r + C_o)                     (verification of K candidates)
//!      + K·β·C_o                                       (final result output)
//! ```
//!
//! where `M` is the record count, `p̄` the probability that a record has a
//! non-empty segment in a given fragment, `K = α·(pair count)` the
//! candidate volume, and `β` the fraction of candidates that are results.
//! The model's purpose in the paper is qualitative (shuffle grows linearly
//! in data size because there is *no duplication*; reduce cost is quadratic
//! per fragment); the `lemma5` experiment checks those growth shapes
//! against measured engine counters.

use ssj_text::Collection;

/// Per-unit cost coefficients (seconds per unit of work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCoefficients {
    /// Cost to map one token.
    pub c_map: f64,
    /// Cost to shuffle one token.
    pub c_shuffle: f64,
    /// Cost of one token comparison in a reduce-side join.
    pub c_reduce: f64,
    /// Cost to output one record.
    pub c_out: f64,
}

impl Default for CostCoefficients {
    /// Rough single-core magnitudes; experiments calibrate them by fitting
    /// one measured run.
    fn default() -> Self {
        CostCoefficients {
            c_map: 20e-9,
            c_shuffle: 15e-9,
            c_reduce: 5e-9,
            c_out: 40e-9,
        }
    }
}

/// Workload parameters extracted from a collection and a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostInputs {
    /// Record count `M`.
    pub records: usize,
    /// Total tokens `Σ|sᵢ|`.
    pub total_tokens: u64,
    /// Average non-empty segments per record.
    pub avg_segments_per_record: f64,
    /// Fragment count `N`.
    pub fragments: usize,
    /// Measured candidate records `K` (from
    /// [`crate::FsJoinResult::candidates`]); the lemma's `α` folded in.
    pub candidates: usize,
    /// Fraction of candidates that become results (`β`).
    pub result_fraction: f64,
}

impl CostInputs {
    /// Derive inputs from a collection, the effective pivot set, and the
    /// measured candidate/result counts of a run.
    pub fn from_run(
        collection: &Collection,
        pivots: &[u32],
        candidates: usize,
        results: usize,
    ) -> Self {
        let records = collection.len();
        let total_tokens = collection.total_tokens();
        // Count non-empty segments per record exactly.
        let mut total_segments = 0u64;
        for r in collection.iter() {
            let mut segs = 0u64;
            let mut start = 0usize;
            for &b in pivots {
                let end = start + r.tokens[start..].partition_point(|&t| t < b);
                if end > start {
                    segs += 1;
                }
                start = end;
            }
            if start < r.tokens.len() {
                segs += 1;
            }
            total_segments += segs;
        }
        CostInputs {
            records,
            total_tokens,
            avg_segments_per_record: if records == 0 {
                0.0
            } else {
                total_segments as f64 / records as f64
            },
            fragments: pivots.len() + 1,
            candidates,
            result_fraction: if candidates == 0 {
                0.0
            } else {
                results as f64 / candidates as f64
            },
        }
    }
}

/// Predicted cost in seconds under Lemma 5.
pub fn predict_cost(inputs: &CostInputs, coef: &CostCoefficients) -> f64 {
    let tokens = inputs.total_tokens as f64;
    let n = inputs.fragments.max(1) as f64;
    let m = inputs.records as f64;
    // p̄: probability a record contributes a segment to a given fragment.
    let p_bar = inputs.avg_segments_per_record / n;
    let segments_per_fragment = m * p_bar;
    let avg_seg_len = if m > 0.0 {
        tokens / (m * inputs.avg_segments_per_record.max(1e-12))
    } else {
        0.0
    };

    let map_cost = tokens * coef.c_map;
    let shuffle_cost = tokens * coef.c_shuffle; // duplicate-free: tokens cross once
    let reduce_cost =
        n * segments_per_fragment * segments_per_fragment * avg_seg_len * coef.c_reduce;
    let k = inputs.candidates as f64;
    let verify_cost = k * (coef.c_map + coef.c_shuffle + coef.c_reduce + coef.c_out);
    let output_cost = k * inputs.result_fraction * coef.c_out;
    map_cost + shuffle_cost + reduce_cost + verify_cost + output_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::Record;

    fn collection(records: usize, len: usize) -> Collection {
        Collection::new(
            (0..records as u32)
                .map(|i| Record::new(i, (0..len as u32).map(|k| k * 7 % 97).collect()))
                .collect(),
            vec![1; 97],
            None,
        )
    }

    #[test]
    fn inputs_count_segments_exactly() {
        // Records with tokens 0..(7*len step) mod 97; pivot at 50 cuts
        // most records into 2 segments.
        let c = collection(10, 10);
        let inputs = CostInputs::from_run(&c, &[50], 100, 10);
        assert_eq!(inputs.records, 10);
        assert!(inputs.avg_segments_per_record >= 1.0);
        assert!(inputs.avg_segments_per_record <= 2.0);
        assert_eq!(inputs.fragments, 2);
        assert!((inputs.result_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn shuffle_cost_is_linear_in_tokens() {
        let coef = CostCoefficients::default();
        let a = CostInputs::from_run(&collection(100, 10), &[], 0, 0);
        let b = CostInputs::from_run(&collection(200, 10), &[], 0, 0);
        // Isolate map+shuffle by zeroing the quadratic/output parts: no
        // candidates, single fragment has quadratic term too — compare the
        // token-linear component directly.
        let linear = |i: &CostInputs| i.total_tokens as f64 * (coef.c_map + coef.c_shuffle);
        assert!((linear(&b) / linear(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_cost_quadratic_in_records_at_fixed_fragments() {
        let coef = CostCoefficients {
            c_map: 0.0,
            c_shuffle: 0.0,
            c_out: 0.0,
            c_reduce: 1e-9,
        };
        let a = predict_cost(
            &CostInputs::from_run(&collection(100, 10), &[50], 0, 0),
            &coef,
        );
        let b = predict_cost(
            &CostInputs::from_run(&collection(200, 10), &[50], 0, 0),
            &coef,
        );
        let ratio = b / a;
        assert!(
            (ratio - 4.0).abs() < 0.2,
            "quadratic growth expected, ratio={ratio}"
        );
    }

    #[test]
    fn more_fragments_cut_reduce_cost_when_sparse() {
        // Fragmentation pays off through sparsity: when records occupy only
        // a fraction of the fragments (p̄ < 1), per-fragment pair counts
        // drop quadratically. Build records confined to narrow token bands.
        let coef = CostCoefficients {
            c_map: 0.0,
            c_shuffle: 0.0,
            c_out: 0.0,
            c_reduce: 1e-9,
        };
        let c = Collection::new(
            (0..200u32)
                .map(|i| {
                    let start = (i % 4) * 25; // band 0, 25, 50 or 75
                    Record::new(i, (start..start + 10).collect())
                })
                .collect(),
            vec![1; 100],
            None,
        );
        let one = predict_cost(&CostInputs::from_run(&c, &[], 0, 0), &coef);
        let four = predict_cost(&CostInputs::from_run(&c, &[25, 50, 75], 0, 0), &coef);
        assert!(
            four < one / 2.0,
            "sparse fragmentation should cut the quadratic term: {four} vs {one}"
        );
    }

    #[test]
    fn dense_records_gain_no_total_work_from_fragmentation() {
        // With every record occupying every fragment (p̄ = 1), total join
        // work is unchanged — the gain is parallelism, not total work
        // (which is exactly what Lemma 5 predicts).
        let coef = CostCoefficients {
            c_map: 0.0,
            c_shuffle: 0.0,
            c_out: 0.0,
            c_reduce: 1e-9,
        };
        let c = collection(100, 20);
        let one = predict_cost(&CostInputs::from_run(&c, &[], 0, 0), &coef);
        let four = predict_cost(&CostInputs::from_run(&c, &[25, 50, 75], 0, 0), &coef);
        assert!((four / one - 1.0).abs() < 0.35, "{four} vs {one}");
    }

    #[test]
    fn empty_collection_costs_nothing() {
        let c = Collection::default();
        let inputs = CostInputs::from_run(&c, &[10], 0, 0);
        assert_eq!(predict_cost(&inputs, &CostCoefficients::default()), 0.0);
    }
}
