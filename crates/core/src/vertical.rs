//! Vertical partitioning: cutting a record at the pivot ranks
//! (paper §IV, Definitions 5–6).
//!
//! A pivot rank `b` starts a new segment: segment `k` holds the record's
//! tokens with rank in `[pivots[k−1], pivots[k])` (with virtual sentinels
//! `pivots[−1] = 0`, `pivots[n] = ∞`). Segments are disjoint and cover the
//! record — the "no duplication" property the paper's title rests on.
//! Empty segments are not materialized (the token space is sparse; this is
//! where vertical partitioning wins over a dense matrix layout).

use crate::segment::Segment;

/// Split `tokens` (strictly ascending ranks) at `pivots` (strictly
/// ascending). Returns `(fragment index, segment)` pairs for every
/// *non-empty* segment, in fragment order.
pub fn split_record(
    rid: u32,
    side: u8,
    tokens: &[u32],
    pivots: &[u32],
) -> Vec<(usize, Segment)> {
    debug_assert!(tokens.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(pivots.windows(2).all(|w| w[0] < w[1]));
    let len = tokens.len();
    let mut out = Vec::new();
    let mut start = 0usize;
    for (k, &b) in pivots.iter().enumerate() {
        // End of segment k: first token with rank >= b.
        let end = start + tokens[start..].partition_point(|&t| t < b);
        if end > start {
            out.push((
                k,
                Segment {
                    rid,
                    side,
                    len: len as u32,
                    head: start as u32,
                    tail: (len - end) as u32,
                    tokens: tokens[start..end].to_vec(),
                },
            ));
        }
        start = end;
    }
    if start < len {
        out.push((
            pivots.len(),
            Segment {
                rid,
                side,
                len: len as u32,
                head: start as u32,
                tail: 0,
                tokens: tokens[start..].to_vec(),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paperlike_example() {
        // Tokens B,C,I,J,K as ranks 1,2,8,9,10; pivots C,F,I as ranks 2,5,8.
        let segs = split_record(1, 0, &[1, 2, 8, 9, 10], &[2, 5, 8]);
        // Segment 0: [B]=ranks <2 -> [1]; segment 1: [C]=[2]; segment 2 (5..8): empty;
        // segment 3: [8,9,10].
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tokens, vec![1]);
        assert_eq!(segs[1].0, 1);
        assert_eq!(segs[1].1.tokens, vec![2]);
        assert_eq!(segs[2].0, 3);
        assert_eq!(segs[2].1.tokens, vec![8, 9, 10]);
    }

    #[test]
    fn segments_are_disjoint_cover_with_correct_metadata() {
        let tokens: Vec<u32> = vec![0, 3, 4, 7, 11, 15, 16, 20];
        let pivots = vec![4, 10, 16];
        let segs = split_record(9, 1, &tokens, &pivots);
        let mut reassembled = Vec::new();
        for (_, s) in &segs {
            assert!(s.is_consistent(), "{s:?}");
            assert_eq!(s.rid, 9);
            assert_eq!(s.side, 1);
            assert_eq!(s.len as usize, tokens.len());
            assert_eq!(s.head as usize, reassembled.len());
            reassembled.extend_from_slice(&s.tokens);
        }
        assert_eq!(reassembled, tokens);
    }

    #[test]
    fn fragment_assignment_respects_pivot_boundaries() {
        // Token equal to a pivot starts the new segment.
        let segs = split_record(0, 0, &[5], &[5]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 1);
        let segs = split_record(0, 0, &[4], &[5]);
        assert_eq!(segs[0].0, 0);
    }

    #[test]
    fn no_pivots_single_segment() {
        let segs = split_record(0, 0, &[1, 2, 3], &[]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tokens, vec![1, 2, 3]);
        assert_eq!(segs[0].1.head, 0);
        assert_eq!(segs[0].1.tail, 0);
    }

    #[test]
    fn empty_record_yields_nothing() {
        assert!(split_record(0, 0, &[], &[3, 7]).is_empty());
    }

    #[test]
    fn all_tokens_before_first_pivot() {
        let segs = split_record(0, 0, &[1, 2], &[10, 20]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tail, 0);
    }
}
