//! Vertical partitioning: cutting a record at the pivot ranks
//! (paper §IV, Definitions 5–6).
//!
//! A pivot rank `b` starts a new segment: segment `k` holds the record's
//! tokens with rank in `[pivots[k−1], pivots[k])` (with virtual sentinels
//! `pivots[−1] = 0`, `pivots[n] = ∞`). Segments are disjoint and cover the
//! record — the "no duplication" property the paper's title rests on.
//! Empty segments are not materialized (the token space is sparse; this is
//! where vertical partitioning wins over a dense matrix layout).
//!
//! Because a record's tokens are one contiguous run in the collection's
//! [`TokenPool`](ssj_text::TokenPool), each segment is a sub-span of the
//! record's span: splitting allocates no token storage at all.

use crate::segment::Segment;
use ssj_text::TokenSpan;

/// Split a record (strictly ascending `tokens`, stored in the pool at
/// `span`) at `pivots` (strictly ascending). Returns `(fragment index,
/// segment)` pairs for every *non-empty* segment, in fragment order; each
/// segment's span is a sub-span of `span`.
///
/// `tokens` must be exactly the slice `span` resolves to — callers resolve
/// once and pass both so the split neither re-resolves nor copies.
pub fn split_record(
    rid: u32,
    side: u8,
    tokens: &[u32],
    span: TokenSpan,
    pivots: &[u32],
) -> Vec<(usize, Segment)> {
    debug_assert!(tokens.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(pivots.windows(2).all(|w| w[0] < w[1]));
    debug_assert_eq!(tokens.len(), span.len());
    let len = tokens.len();
    let mut out = Vec::new();
    let mut start = 0usize;
    for (k, &b) in pivots.iter().enumerate() {
        // End of segment k: first token with rank >= b.
        let end = start + tokens[start..].partition_point(|&t| t < b);
        if end > start {
            out.push((
                k,
                Segment {
                    rid,
                    side,
                    len: len as u32,
                    head: start as u32,
                    tail: (len - end) as u32,
                    span: span.slice(start, end - start),
                },
            ));
        }
        start = end;
    }
    if start < len {
        out.push((
            pivots.len(),
            Segment {
                rid,
                side,
                len: len as u32,
                head: start as u32,
                tail: 0,
                span: span.slice(start, len - start),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::TokenPool;

    /// Pool a single record and split it.
    fn split(
        rid: u32,
        side: u8,
        tokens: &[u32],
        pivots: &[u32],
    ) -> (TokenPool, Vec<(usize, Segment)>) {
        let mut pool = TokenPool::new();
        let span = pool.push(tokens);
        let segs = split_record(rid, side, tokens, span, pivots);
        (pool, segs)
    }

    #[test]
    fn paperlike_example() {
        // Tokens B,C,I,J,K as ranks 1,2,8,9,10; pivots C,F,I as ranks 2,5,8.
        let (pool, segs) = split(1, 0, &[1, 2, 8, 9, 10], &[2, 5, 8]);
        // Segment 0: [B]=ranks <2 -> [1]; segment 1: [C]=[2]; segment 2 (5..8): empty;
        // segment 3: [8,9,10].
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tokens(&pool), &[1]);
        assert_eq!(segs[1].0, 1);
        assert_eq!(segs[1].1.tokens(&pool), &[2]);
        assert_eq!(segs[2].0, 3);
        assert_eq!(segs[2].1.tokens(&pool), &[8, 9, 10]);
    }

    #[test]
    fn segments_are_disjoint_cover_with_correct_metadata() {
        let tokens: Vec<u32> = vec![0, 3, 4, 7, 11, 15, 16, 20];
        let pivots = vec![4, 10, 16];
        let (pool, segs) = split(9, 1, &tokens, &pivots);
        let mut reassembled = Vec::new();
        for (_, s) in &segs {
            assert!(s.is_consistent(), "{s:?}");
            assert_eq!(s.rid, 9);
            assert_eq!(s.side, 1);
            assert_eq!(s.len as usize, tokens.len());
            assert_eq!(s.head as usize, reassembled.len());
            reassembled.extend_from_slice(s.tokens(&pool));
        }
        assert_eq!(reassembled, tokens);
    }

    #[test]
    fn fragment_assignment_respects_pivot_boundaries() {
        // Token equal to a pivot starts the new segment.
        let (_, segs) = split(0, 0, &[5], &[5]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 1);
        let (_, segs) = split(0, 0, &[4], &[5]);
        assert_eq!(segs[0].0, 0);
    }

    #[test]
    fn no_pivots_single_segment() {
        let (pool, segs) = split(0, 0, &[1, 2, 3], &[]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tokens(&pool), &[1, 2, 3]);
        assert_eq!(segs[0].1.head, 0);
        assert_eq!(segs[0].1.tail, 0);
    }

    #[test]
    fn empty_record_yields_nothing() {
        let (_, segs) = split(0, 0, &[], &[3, 7]);
        assert!(segs.is_empty());
    }

    #[test]
    fn all_tokens_before_first_pivot() {
        let (_, segs) = split(0, 0, &[1, 2], &[10, 20]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[0].1.tail, 0);
    }

    #[test]
    fn split_spans_point_into_a_shared_pool() {
        // Two records in one pool: the second record's segments must
        // resolve to *its* tokens, i.e. spans are absolute pool offsets.
        let mut pool = TokenPool::new();
        pool.push(&[100, 200, 300]);
        let tokens = [1u32, 2, 8, 9];
        let span = pool.push(&tokens);
        let segs = split_record(7, 0, &tokens, span, &[5]);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].1.tokens(&pool), &[1, 2]);
        assert_eq!(segs[1].1.tokens(&pool), &[8, 9]);
        assert_eq!(segs[0].1.span.start, 3);
    }
}
