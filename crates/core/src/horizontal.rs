//! Horizontal (length-based) partitioning (paper §V-A "Optimization:
//! Horizontal Partitioning").
//!
//! `t` length pivots `L_1 < … < L_t` induce `2t+1` horizontal partitions:
//!
//! * *base* partitions `h_0..h_t`: partition `h_j` holds records with
//!   `L_j ≤ |s| < L_{j+1}` (sentinels `L_0 = 0`, `L_{t+1} = ∞`);
//! * *boundary* partitions `h_{t+1}..h_{2t}`: partition `h_{t+j}` (1-based
//!   `j`) additionally holds every record whose length lies in the
//!   θ-window around `L_j`, so that pairs straddling the boundary can still
//!   meet.
//!
//! Pairs within a base partition are joined there; pairs in a boundary
//! partition are joined only if they actually straddle the pivot
//! (`|s| < L_j ≤ |t|`) **and** the shorter record's base is immediately
//! below the pivot (`L_{j−1} ≤ |s|`). The second conjunct is our fix for a
//! double-join the paper's rule permits when adjacent pivots are closer
//! than a factor `1/θ` (DESIGN.md §4 item 5); with it, every θ-viable pair
//! is joined in exactly one horizontal partition.

use ssj_similarity::Measure;

/// Select up to `t` strictly increasing length pivots from the length
/// histogram, equalizing *token mass* (Σ lengths) per base partition — the
/// horizontal analogue of Even-TF.
///
/// Takes any length iterator so callers can feed lengths straight off a
/// CSR offsets table ([`TokenPool::lengths`](ssj_text::TokenPool::lengths))
/// without materializing a `Vec` or resolving spans.
pub fn select_h_pivots(lengths: impl IntoIterator<Item = usize>, t: usize) -> Vec<u32> {
    if t == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<usize> = lengths.into_iter().collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&l| l as u128).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut pivots = Vec::with_capacity(t);
    let mut cum: u128 = 0;
    let mut k = 1usize;
    for &l in &sorted {
        if k > t {
            break;
        }
        cum += l as u128;
        if cum * (t as u128 + 1) >= total * k as u128 {
            pivots.push(l as u32 + 1); // cut just above this length
            k += 1;
        }
    }
    pivots.sort_unstable();
    pivots.dedup();
    // A pivot above every record length creates empty partitions; drop it.
    let max_len = *sorted.last().expect("non-empty") as u32;
    pivots.retain(|&p| p >= 1 && p <= max_len);
    pivots
}

/// Number of horizontal partitions for a pivot set.
pub fn num_h_partitions(pivots: &[u32]) -> usize {
    2 * pivots.len() + 1
}

/// Horizontal partitions a record of length `len` belongs to.
///
/// Membership is *useful-only* (a sharpening of the paper's windows that
/// changes no result — every θ-viable pair still meets exactly once, see
/// the exhaustive test):
///
/// * its base partition (same-band pairs);
/// * as the **short side**, only the boundary of the pivot immediately
///   above it (`L_{b+1}`), and only if a θ-viable longer partner across
///   that pivot can exist;
/// * as the **long side**, every boundary `L_j ≤ len` whose short band
///   `[L_{j−1}, L_j)` can hold a θ-viable shorter partner.
///
/// Without this sharpening, densely packed pivots (the paper uses up to 70
/// horizontal partitions) put every record in every overlapping θ-window,
/// multiplying shuffle and join work by the window/spacing ratio.
pub fn h_partitions_for(len: usize, pivots: &[u32], measure: Measure, theta: f64) -> Vec<usize> {
    if pivots.is_empty() {
        return vec![0];
    }
    let t = pivots.len();
    let base = pivots.partition_point(|&p| (p as usize) <= len);
    let mut out = vec![base];
    // Short side: the unique pivot immediately above, if a viable longer
    // partner (≥ pivot, ≤ max_partner(len)) can exist.
    if base < t {
        let pivot = pivots[base] as usize;
        if measure.max_partner_len(theta, len) >= pivot {
            out.push(t + 1 + base);
        }
    }
    // Long side: boundaries at or below len whose short band can hold a
    // viable partner (some s with s < L_j, s ≥ min_partner(len)).
    let min_partner = measure.min_partner_len(theta, len);
    for (j, &pivot) in pivots.iter().enumerate().take(base) {
        if (pivot as usize) > min_partner {
            out.push(t + 1 + j);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Which pairs a reduce task handling horizontal partition `h` may join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRule {
    /// Base partition: join every pair.
    All,
    /// Boundary partition of `pivot = L_j` with `lo = L_{j−1}`: join only
    /// pairs with `min < pivot ≤ max` and `min ≥ lo`.
    Boundary {
        /// Previous pivot (0 for the first boundary).
        lo: u32,
        /// This boundary's pivot.
        pivot: u32,
    },
}

impl JoinRule {
    /// The rule for horizontal partition `h` under `pivots`.
    pub fn for_partition(h: usize, pivots: &[u32]) -> JoinRule {
        let t = pivots.len();
        if h <= t {
            JoinRule::All
        } else {
            let j = h - t - 1;
            assert!(
                j < t,
                "horizontal partition {h} out of range for {t} pivots"
            );
            JoinRule::Boundary {
                lo: if j == 0 { 0 } else { pivots[j - 1] },
                pivot: pivots[j],
            }
        }
    }

    /// May records of these lengths be joined under this rule?
    #[inline]
    pub fn joinable(&self, len_a: u32, len_b: u32) -> bool {
        match *self {
            JoinRule::All => true,
            JoinRule::Boundary { lo, pivot } => {
                let (short, long) = if len_a <= len_b {
                    (len_a, len_b)
                } else {
                    (len_b, len_a)
                };
                short < pivot && pivot <= long && short >= lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: Measure = Measure::Jaccard;

    #[test]
    fn no_pivots_single_partition() {
        assert_eq!(h_partitions_for(10, &[], M, 0.8), vec![0]);
        assert_eq!(num_h_partitions(&[]), 1);
        assert_eq!(JoinRule::for_partition(0, &[]), JoinRule::All);
    }

    #[test]
    fn base_partition_by_length_range() {
        let pivots = vec![10, 20];
        assert_eq!(h_partitions_for(5, &pivots, M, 0.99)[0], 0);
        assert_eq!(h_partitions_for(10, &pivots, M, 0.99)[0], 1);
        assert_eq!(h_partitions_for(19, &pivots, M, 0.99)[0], 1);
        assert_eq!(h_partitions_for(20, &pivots, M, 0.99)[0], 2);
        assert_eq!(h_partitions_for(1000, &pivots, M, 0.99)[0], 2);
    }

    #[test]
    fn boundary_membership_is_useful_only() {
        let pivots = vec![10];
        // θ=0.8. Short side: 8 can reach a partner ≥ 10 (max partner 10).
        assert_eq!(h_partitions_for(8, &pivots, M, 0.8), vec![0, 2]);
        // 7's longest viable partner is 8 < 10: no boundary membership.
        assert_eq!(h_partitions_for(7, &pivots, M, 0.8), vec![0]);
        // Long side: 11 can pair with 9 (< 10): member.
        assert_eq!(h_partitions_for(11, &pivots, M, 0.8), vec![1, 2]);
        // 12's shortest viable partner is 10, which is not < 10: excluded
        // (a (9,12) pair is not θ-viable, so nothing is lost).
        assert_eq!(h_partitions_for(12, &pivots, M, 0.8), vec![1]);
        assert_eq!(h_partitions_for(13, &pivots, M, 0.8), vec![1]);
    }

    #[test]
    fn join_rule_boundary_requires_straddle() {
        let rule = JoinRule::for_partition(2, &[10]);
        assert_eq!(rule, JoinRule::Boundary { lo: 0, pivot: 10 });
        assert!(rule.joinable(9, 10));
        assert!(rule.joinable(11, 9)); // order-insensitive
        assert!(!rule.joinable(9, 9)); // both below
        assert!(!rule.joinable(10, 12)); // both at/above
    }

    #[test]
    fn join_rule_lo_prevents_double_join() {
        // Two close pivots 10, 11 (< factor 1/θ apart at θ=0.8): a pair
        // (9, 11) straddles both. It must be joinable only at the first
        // boundary (j=0), not the second.
        let pivots = vec![10, 11];
        let first = JoinRule::for_partition(3, &pivots);
        let second = JoinRule::for_partition(4, &pivots);
        assert!(first.joinable(9, 11));
        assert!(!second.joinable(9, 11)); // 9 < lo = 10
                                          // A pair (10, 12) straddles only the second pivot.
        assert!(!first.joinable(10, 12));
        assert!(second.joinable(10, 12));
    }

    /// Exhaustive exactly-once check: for every θ-viable length pair, the
    /// number of horizontal partitions where both records appear AND the
    /// rule joins them is exactly 1; for non-viable pairs it is at most 1.
    /// Covers all three measures (membership uses measure-generic length
    /// windows) and densely packed pivots (the double-join hazard).
    #[test]
    fn exactly_once_exhaustive() {
        for m in Measure::all() {
            for &theta in &[0.6, 0.75, 0.8, 0.9] {
                for pivots in [
                    vec![10u32],
                    vec![8, 16],
                    vec![5, 10, 15],
                    vec![10, 11],
                    vec![4, 6, 8, 10, 12, 14, 16, 18, 20, 22],
                ] {
                    for la in 1usize..30 {
                        for lb in la..30 {
                            let ha = h_partitions_for(la, &pivots, m, theta);
                            let hb = h_partitions_for(lb, &pivots, m, theta);
                            let mut join_count = 0;
                            for &h in &ha {
                                if hb.contains(&h)
                                    && JoinRule::for_partition(h, &pivots)
                                        .joinable(la as u32, lb as u32)
                                {
                                    join_count += 1;
                                }
                            }
                            let viable = la >= m.min_partner_len(theta, lb);
                            if viable {
                                assert_eq!(
                                    join_count, 1,
                                    "{m:?} θ={theta} pivots={pivots:?} lengths=({la},{lb})"
                                );
                            } else {
                                assert!(
                                    join_count <= 1,
                                    "{m:?} θ={theta} pivots={pivots:?} lengths=({la},{lb})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pivot_selection_balances_token_mass() {
        // Lengths 1..=100: total mass 5050; 1 pivot should cut near the
        // mass median (~71), not the count median (~50).
        let p = select_h_pivots(1..=100, 1);
        assert_eq!(p.len(), 1);
        assert!(p[0] >= 65 && p[0] <= 78, "pivot {p:?}");
    }

    #[test]
    fn pivot_selection_degenerate() {
        assert!(select_h_pivots(std::iter::empty(), 2).is_empty());
        assert!(select_h_pivots([5, 5, 5], 0).is_empty());
        assert!(select_h_pivots([0, 0], 2).is_empty());
        // Uniform lengths: at most one distinct cut, and it must not
        // exceed the max length.
        let p = select_h_pivots([7; 50], 3);
        assert!(p.len() <= 1);
        for &x in &p {
            assert!(x <= 7);
        }
    }

    #[test]
    fn pivots_strictly_increasing() {
        let p = select_h_pivots((0..1000).map(|i| 1 + (i * 7919) % 200), 8);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(!p.is_empty());
    }
}
