//! R×S similarity join as a **two-input plan**: the first consumer of the
//! plan layer's multi-input stages.
//!
//! [`crate::run_rs_join`] folds R and S into one self-join input and tags
//! sides per record. This module instead declares the join the way a
//! distributed engine would plan it:
//!
//! * stage `rsjoin-r-prefix` maps **R only**: each record emits
//!   `(prefix token, record)` for its probe-prefix tokens;
//! * stage `rsjoin-s-prefix` does the same over **S only**, with the same
//!   partitioner and reduce-task count — the two stages are
//!   *co-partitioned*, so prefix token `t` lands in the same partition
//!   index on both sides;
//! * stage `rsjoin-join` consumes **both** prefix stages. By default
//!   ([`FsJoinConfig::rs_cogroup`]) it is a **co-group stage**
//!   ([`Plan::add_cogroup`]): task `i` merges the sealed partitions `i`
//!   of R and S in place (side 0 = R, side 1 = S) and verifies every
//!   cross-side pair per token group — the re-shuffle the old
//!   identity-rekey fan-in paid to reunite records its upstreams had
//!   already co-partitioned is gone. With the flag off, the stage runs
//!   as that rekey fan-in through [`StageInput::Stages`] instead; both
//!   paths share one verification core, so pair digests and filter
//!   verdicts are bit-identical;
//! * stage `rsjoin-dedup` collapses pairs discovered under several shared
//!   prefix tokens (a shuffle stage, except in the single-partition case
//!   where the join output is provably pair-partitioned and the dedup
//!   co-groups the sealed partition in place).
//!
//! Record ids live in the concatenated-pool id space of
//! [`TokenPool::concat`]: R keeps its ids, S ids are shifted by `|R|`, so
//! a pair `(a, b)` always has `a < |R| ≤ b`. The shared arena ships to all
//! three token-touching stages over one [`Broadcast`](ssj_mapreduce::StageEdge)
//! edge.
//!
//! Completeness is the prefix-filter theorem, two-sided: if
//! `sim(r, s) ≥ θ` then the probe prefixes of *both* records contain a
//! common token, so the pair meets in that token's group. Verification is
//! an exact intersection, scored identically to the PPJoin kernel — pair
//! digests match RIDPairsPPJoin run over the concatenated collection and
//! filtered to cross-side pairs, bit for bit.

use crate::config::FsJoinConfig;
use crate::driver::FsJoinResult;
use crate::filters::FilterStats;
use ssj_mapreduce::{
    CoGroupReducer, Dataset, Emitter, GroupValues, HashPartitioner, IdentityCombiner, Mapper, Plan,
    PlanRunner, SideGroups, StreamingReducer,
};
use ssj_observe::{span, MetricsRegistry};
use ssj_similarity::intersect::intersect_count_adaptive;
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{Collection, PooledRecord, TokenPool};
use std::sync::Arc;

/// Prefix-stage mapper: emits `(prefix token, record)` once per probe-prefix
/// token. One instance serves both sides — the input dataset decides which
/// records it sees.
struct PrefixEmit {
    pool: Arc<TokenPool>,
    measure: Measure,
    theta: f64,
}

impl Mapper for PrefixEmit {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = u32;
    type OutValue = PooledRecord;

    fn map(&mut self, _rid: u32, record: PooledRecord, out: &mut Emitter<u32, PooledRecord>) {
        if record.span.is_empty() {
            return;
        }
        let tokens = self.pool.resolve(record.span);
        let prefix = self.measure.probe_prefix_len(self.theta, tokens.len());
        for &t in &tokens[..prefix] {
            out.emit(t, record);
        }
    }
}

/// Prefix-stage reducer: pass-through. The stage exists to *route* records
/// into co-partitioned token groups; the join stage does the work.
struct PrefixPassThrough;

impl StreamingReducer for PrefixPassThrough {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = u32;
    type OutValue = PooledRecord;

    fn reduce_group(
        &mut self,
        token: &u32,
        records: &mut GroupValues<'_, '_, u32, PooledRecord>,
        out: &mut Emitter<u32, PooledRecord>,
    ) {
        for rec in records {
            out.emit(*token, *rec);
        }
    }
}

/// Join-stage mapper: identity. Map split `i` re-keys partition `i` of both
/// prefix stages so the join shuffle groups R and S records of one token
/// into a single reduce group.
struct JoinIdentity;

impl Mapper for JoinIdentity {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = u32;
    type OutValue = PooledRecord;

    fn map(&mut self, token: u32, record: PooledRecord, out: &mut Emitter<u32, PooledRecord>) {
        out.emit(token, record);
    }
}

/// The exact cross-pair verification pipeline shared by both join-stage
/// execution paths ([`CrossVerify`] on the rekey fan-in, [`CrossVerifyCo`]
/// on the co-group stage): string-length filter → optional bitmap prune →
/// exact intersection, with every prune decision counted into the same
/// [`FilterStats`]. One code path means the two stages' filter verdicts
/// and scores are bit-identical by construction.
struct CrossVerifyCore {
    pool: Arc<TokenPool>,
    measure: Measure,
    theta: f64,
    bitmap: bool,
    local_stats: FilterStats,
    registry: Arc<MetricsRegistry>,
}

impl CrossVerifyCore {
    /// Verify every (r, s) cross pair of one token group.
    fn verify_group(
        &mut self,
        r_buf: &[PooledRecord],
        s_buf: &[PooledRecord],
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        for r in r_buf {
            for s in s_buf {
                self.local_stats.pairs_considered += 1;
                if !crate::filters::strl_pass(self.measure, self.theta, r.span.len, s.span.len) {
                    self.local_stats.strl_pruned += 1;
                    continue;
                }
                if self.bitmap {
                    // Record ids index the concat pool (id contract above),
                    // so each side's bitmap is a direct lookup. A bound
                    // below α cannot pass verification — lossless skip.
                    // The saturation guard skips the bitmap reads when the
                    // bound's floor `(|r| + |s| - width) / 2` already
                    // reaches α (long records saturate the bitmap).
                    let alpha = self
                        .measure
                        .min_overlap(self.theta, r.span.len(), s.span.len());
                    let floor_ub =
                        (r.span.len() + s.span.len()).saturating_sub(self.pool.bitmap_bits()) / 2;
                    if floor_ub < alpha {
                        self.local_stats.bitmap_checks += 1;
                        let ub = ssj_similarity::bitmap::overlap_upper_bound(
                            self.pool.bitmap_of(r.id),
                            self.pool.bitmap_of(s.id),
                            r.span.len(),
                            s.span.len(),
                        );
                        if ub < alpha {
                            self.local_stats.bitmap_pruned += 1;
                            continue;
                        }
                    }
                }
                let (ra, sb) = (self.pool.resolve(r.span), self.pool.resolve(s.span));
                let overlap = intersect_count_adaptive(ra, sb);
                self.local_stats.intersections += 1;
                self.local_stats.intersect_tokens += (ra.len() + sb.len()) as u64;
                if self.measure.passes(overlap, ra.len(), sb.len(), self.theta) {
                    self.local_stats.emitted += 1;
                    out.emit(
                        (r.id, s.id),
                        self.measure.score(overlap, ra.len(), sb.len()),
                    );
                }
            }
        }
    }

    /// Flush the task's pruning counters into the run registry.
    fn flush(&mut self) {
        self.local_stats.record_to(&self.registry);
        self.local_stats = FilterStats::default();
    }
}

/// Join-stage reducer (rekey fan-in path): splits each token group by side
/// (`id < |R|` is R — the concat-pool id contract) and verifies every
/// cross pair exactly. Pruning counters flow into the run's registry at
/// cleanup, like the main driver's fragment reducer.
struct CrossVerify {
    core: CrossVerifyCore,
    num_r: u32,
    r_buf: Vec<PooledRecord>,
    s_buf: Vec<PooledRecord>,
}

impl StreamingReducer for CrossVerify {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        _token: &u32,
        records: &mut GroupValues<'_, '_, u32, PooledRecord>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        self.r_buf.clear();
        self.s_buf.clear();
        for rec in records {
            if rec.id < self.num_r {
                self.r_buf.push(*rec);
            } else {
                self.s_buf.push(*rec);
            }
        }
        self.core.verify_group(&self.r_buf, &self.s_buf, out);
    }

    fn cleanup(&mut self, _out: &mut Emitter<(u32, u32), f64>) {
        self.core.flush();
    }
}

/// Join-stage reducer (co-group path): consumes the sealed prefix
/// partitions directly — side 0 is `rsjoin-r-prefix`, side 1 is
/// `rsjoin-s-prefix` (edge order), so the side tag replaces the
/// `id < |R|` split with no re-shuffle in front. The verification core is
/// shared with [`CrossVerify`], so filter verdicts, pruning counters, and
/// scores are bit-identical across the two paths.
struct CrossVerifyCo {
    core: CrossVerifyCore,
    r_buf: Vec<PooledRecord>,
    s_buf: Vec<PooledRecord>,
}

impl CoGroupReducer for CrossVerifyCo {
    type InKey = u32;
    type InValue = PooledRecord;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn cogroup(
        &mut self,
        _token: &u32,
        records: &mut SideGroups<'_, '_, u32, PooledRecord>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        self.r_buf.clear();
        self.s_buf.clear();
        for (side, rec) in records {
            if side == 0 {
                self.r_buf.push(*rec);
            } else {
                self.s_buf.push(*rec);
            }
        }
        self.core.verify_group(&self.r_buf, &self.s_buf, out);
    }

    fn cleanup(&mut self, _out: &mut Emitter<(u32, u32), f64>) {
        self.core.flush();
    }
}

/// Dedup mapper: identity over `((a, b), sim)`.
struct DedupMapper;

impl Mapper for DedupMapper {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn map(&mut self, pair: (u32, u32), sim: f64, out: &mut Emitter<(u32, u32), f64>) {
        out.emit(pair, sim);
    }
}

/// Dedup reducer: all duplicates of a pair carry the same exact score;
/// keep the first.
struct KeepFirstSim;

impl StreamingReducer for KeepFirstSim {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        sims: &mut GroupValues<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        out.emit(*pair, *sims.next().expect("group has at least one value"));
    }
}

/// Co-group counterpart of [`KeepFirstSim`], used when the join output is
/// already pair-partitioned (single reduce partition): every duplicate of
/// a pair is then provably co-located, so the dedup can group the sealed
/// partition in place instead of re-shuffling it.
struct KeepFirstSimCo;

impl CoGroupReducer for KeepFirstSimCo {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn cogroup(
        &mut self,
        pair: &(u32, u32),
        sims: &mut SideGroups<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        out.emit(*pair, *sims.next().expect("group has at least one value").1);
    }
}

/// R×S join declared as a two-input plan (module docs have the stage
/// graph). Same conventions as [`crate::run_rs_join`]: both collections
/// must be encoded in one token-rank space
/// ([`ssj_text::encode::encode_two`]), and S-side ids in the returned
/// pairs are offset by `r.len()`.
///
/// The returned [`FsJoinResult`] carries no pivots (`pivots` /
/// `h_pivots` empty — this plan partitions by prefix token, not by
/// fragment), `candidates` counts verified-pair emissions before dedup,
/// and `deps` records the fan-in shape
/// `[[], [], [0, 1], [2]]` — identical on both join-stage paths, since a
/// co-group edge and a rekey shuffle edge express the same dependency.
pub fn run_rs_join_two_input(r: &Collection, s: &Collection, cfg: &FsJoinConfig) -> FsJoinResult {
    cfg.validate();
    assert_eq!(
        r.token_freqs, s.token_freqs,
        "R and S must be encoded together (shared global ordering)"
    );
    let pool = Arc::new(TokenPool::concat(r.pool(), s.pool()));
    let num_r = r.len();
    let num_s = s.len();
    let run_span = span("fsjoin.stage", "run-rs2")
        .field("records", num_r + num_s)
        .field("theta", cfg.theta);
    let (measure, theta) = (cfg.measure, cfg.theta);

    let side_input = |lo: usize, hi: usize| -> Dataset<u32, PooledRecord> {
        Dataset::from_records(
            (lo..hi)
                .map(|rid| {
                    let rid = rid as u32;
                    (
                        rid,
                        PooledRecord {
                            id: rid,
                            span: pool.span_of(rid),
                        },
                    )
                })
                .collect(),
            cfg.map_tasks,
        )
    };
    let r_input = side_input(0, num_r);
    let s_input = side_input(num_r, num_r + num_s);

    let run_registry = Arc::new(MetricsRegistry::new());
    let prefix_span = span("fsjoin.stage", "rs-prefix-jobs");
    let join_span = span("fsjoin.stage", "rs-join-job");

    let mut plan = Plan::new("rsjoin").with_workers(cfg.workers);
    let pool_bcast = plan.broadcast(Arc::clone(&pool));
    // Both prefix stages MUST share reduce_tasks and partitioner: the join
    // stage's map split i consumes partition i of each.
    let prefix_factory = {
        move |_: usize, pool: &Arc<TokenPool>| PrefixEmit {
            pool: Arc::clone(pool),
            measure,
            theta,
        }
    };
    let h_r = plan.add_full_broadcast(
        "rsjoin-r-prefix",
        r_input,
        pool_bcast,
        cfg.reduce_tasks,
        prefix_factory,
        |_, _: &Arc<TokenPool>| PrefixPassThrough,
        HashPartitioner,
        None::<IdentityCombiner>,
    );
    let h_s = plan.add_full_broadcast(
        "rsjoin-s-prefix",
        s_input,
        pool_bcast,
        cfg.reduce_tasks,
        prefix_factory,
        |_, _: &Arc<TokenPool>| PrefixPassThrough,
        HashPartitioner,
        None::<IdentityCombiner>,
    );
    let core_factory = {
        let registry = Arc::clone(&run_registry);
        let bitmap = cfg.bitmap_prune;
        move |pool: &Arc<TokenPool>| CrossVerifyCore {
            pool: Arc::clone(pool),
            measure,
            theta,
            bitmap,
            local_stats: FilterStats::default(),
            registry: Arc::clone(&registry),
        }
    };
    // Join stage: co-group over the sealed prefix partitions (default) or
    // identity-rekey fan-in with a second shuffle of every prefix record.
    // Same reducer core either way — pair digests are path-invariant.
    let joined = if cfg.rs_cogroup {
        plan.add_cogroup_broadcast(
            "rsjoin-join",
            vec![h_r, h_s],
            pool_bcast,
            move |_, pool: &Arc<TokenPool>| CrossVerifyCo {
                core: core_factory(pool),
                r_buf: Vec::new(),
                s_buf: Vec::new(),
            },
        )
    } else {
        plan.add_full_broadcast(
            "rsjoin-join",
            [h_r, h_s],
            pool_bcast,
            cfg.reduce_tasks,
            |_, _: &Arc<TokenPool>| JoinIdentity,
            move |_, pool: &Arc<TokenPool>| CrossVerify {
                core: core_factory(pool),
                num_r: num_r as u32,
                r_buf: Vec::new(),
                s_buf: Vec::new(),
            },
            HashPartitioner,
            None::<IdentityCombiner>,
        )
    };
    // Dedup: a pair discovered under several shared prefix tokens surfaces
    // in several join partitions, so collapsing duplicates needs a shuffle
    // in general. Only a single join partition makes the input provably
    // pair-partitioned — then the sealed partition co-groups in place.
    let unique = if cfg.rs_cogroup && cfg.reduce_tasks == 1 {
        plan.add_cogroup("rsjoin-dedup", vec![joined], |_| KeepFirstSimCo)
    } else {
        plan.add(
            "rsjoin-dedup",
            joined,
            cfg.reduce_tasks,
            |_| DedupMapper,
            |_| KeepFirstSim,
        )
    };

    let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
    let verified = outcome.take_output(unique);
    let peak_live_bytes = outcome.peak_live_bytes;
    let deps = outcome.deps().to_vec();
    let chain = outcome.metrics;
    // Verified emissions before dedup — the cross-pair analogue of the
    // kernel-output candidate count the baselines report.
    let candidates = chain.jobs[2].reduce_output_records();
    drop(prefix_span);
    drop(join_span.field("candidates", candidates));

    let mut pairs: Vec<SimilarPair> = verified
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|x| x.ids());

    let filter_stats = FilterStats::from_registry(&run_registry);
    run_registry.gauge_set(crate::keys::CANDIDATES, candidates as f64);
    run_registry.gauge_set(crate::keys::PAIRS, pairs.len() as f64);
    if let Some(global) = ssj_observe::global_registry() {
        global.merge_from(&run_registry);
    }
    drop(run_span.field("pairs", pairs.len()));
    FsJoinResult {
        pairs,
        chain,
        filter_stats,
        candidates,
        pivots: Vec::new(),
        h_pivots: Vec::new(),
        peak_live_bytes,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_mapreduce::PlanMode;
    use ssj_similarity::naive::naive_rs_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::encode::encode_two;
    use ssj_text::{CorpusProfile, RawCorpus, Record, Tokenizer};

    fn rs_corpora(num_r: usize, num_s: usize) -> (Collection, Collection) {
        let r = CorpusProfile::WikiLike
            .config()
            .with_records(num_r)
            .generate();
        let s = CorpusProfile::WikiLike
            .config()
            .with_records(num_s)
            .with_seed(7)
            .generate();
        encode_two(&r, &s)
    }

    /// Order-independent FNV-1a digest of a sorted pair list (ids + exact
    /// score bits) — the cross-implementation equality witness.
    fn pair_digest(pairs: &[SimilarPair]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for p in pairs {
            let (a, b) = p.ids();
            mix(a as u64);
            mix(b as u64);
            mix(p.sim.to_bits());
        }
        h
    }

    /// RIDPairsPPJoin over the concatenated collection, filtered to
    /// cross-side pairs — the oracle the ISSUE pins the digest against.
    fn ridpairs_cross_oracle(
        r: &Collection,
        s: &Collection,
        measure: Measure,
        theta: f64,
    ) -> Vec<SimilarPair> {
        let offset = r.len() as u32;
        let records: Vec<Record> = r
            .iter()
            .map(|v| Record::from_sorted(v.id, v.tokens.to_vec()))
            .chain(
                s.iter()
                    .map(|v| Record::from_sorted(v.id + offset, v.tokens.to_vec())),
            )
            .collect();
        let concat = Collection::new(records, r.token_freqs.clone(), None);
        let res = ssj_baselines::ridpairs::ridpairs_ppjoin(
            &concat,
            measure,
            theta,
            &ssj_baselines::BaselineConfig::default(),
        );
        res.pairs
            .into_iter()
            .filter(|p| {
                let (a, b) = p.ids();
                a < offset && b >= offset
            })
            .collect()
    }

    #[test]
    fn declares_the_fan_in_plan_shape() {
        let (r, s) = rs_corpora(20, 60);
        let res = run_rs_join_two_input(&r, &s, &FsJoinConfig::default().with_theta(0.8));
        assert_eq!(res.chain.jobs.len(), 4);
        assert_eq!(res.chain.jobs[2].name, "rsjoin-join");
        assert_eq!(res.deps, vec![vec![], vec![], vec![0, 1], vec![2]]);
        assert!(res.pivots.is_empty() && res.h_pivots.is_empty());
        // Default path: the join stage is a co-group — no map tasks, no
        // shuffle traffic of its own, bytes-saved counter populated.
        let join = &res.chain.jobs[2];
        assert!(join.cogroup);
        assert!(join.map_tasks.is_empty());
        assert_eq!(join.shuffle_bytes, 0);
        assert!(join.cogroup_shuffle_bytes_saved() > 0);
    }

    /// Both join-stage paths produce bit-identical pairs AND filter
    /// statistics; the co-group path ships zero join-stage shuffle bytes
    /// where the rekey path re-shuffles every prefix record.
    #[test]
    fn cogroup_and_rekey_paths_are_bit_identical() {
        let (r, s) = rs_corpora(40, 120);
        for &theta in &[0.75, 0.85, 0.95] {
            let cogroup = run_rs_join_two_input(
                &r,
                &s,
                &FsJoinConfig::default()
                    .with_theta(theta)
                    .with_rs_cogroup(true),
            );
            let rekey = run_rs_join_two_input(
                &r,
                &s,
                &FsJoinConfig::default()
                    .with_theta(theta)
                    .with_rs_cogroup(false),
            );
            assert_eq!(
                pair_digest(&cogroup.pairs),
                pair_digest(&rekey.pairs),
                "θ={theta} digest mismatch"
            );
            assert_eq!(cogroup.candidates, rekey.candidates, "θ={theta}");
            assert_eq!(
                format!("{:?}", cogroup.filter_stats),
                format!("{:?}", rekey.filter_stats),
                "θ={theta} filter stats diverge"
            );
            // The saved bytes are exactly the rekey join stage's shuffle.
            let co_join = &cogroup.chain.jobs[2];
            let rk_join = &rekey.chain.jobs[2];
            assert!(co_join.cogroup && !rk_join.cogroup);
            assert_eq!(co_join.shuffle_bytes, 0);
            assert!(rk_join.shuffle_bytes > 0);
            assert_eq!(co_join.cogroup_shuffle_bytes_saved(), rk_join.shuffle_bytes);
            let total = |res: &FsJoinResult| -> usize {
                res.chain.jobs.iter().map(|j| j.shuffle_bytes).sum()
            };
            assert!(
                total(&cogroup) < total(&rekey),
                "θ={theta}: co-group total shuffle {} must undercut rekey {}",
                total(&cogroup),
                total(&rekey)
            );
        }
    }

    /// With one reduce partition the join output is pair-partitioned, so
    /// the dedup also runs as a co-group — results still match the rekey
    /// plan exactly.
    #[test]
    fn single_partition_cogroup_dedup_matches() {
        let (r, s) = rs_corpora(30, 90);
        let base = FsJoinConfig::default().with_theta(0.7).with_tasks(4, 1);
        let co = run_rs_join_two_input(&r, &s, &base.clone().with_rs_cogroup(true));
        let rk = run_rs_join_two_input(&r, &s, &base.with_rs_cogroup(false));
        assert_eq!(pair_digest(&co.pairs), pair_digest(&rk.pairs));
        let dedup = &co.chain.jobs[3];
        assert!(dedup.cogroup, "single-partition dedup must co-group");
        assert_eq!(dedup.shuffle_bytes, 0);
        assert!(!rk.chain.jobs[3].cogroup);
    }

    #[test]
    fn matches_naive_rs_oracle() {
        let (r, s) = rs_corpora(40, 120);
        let offset = r.len() as u32;
        let s_shifted: Vec<Record> = s
            .iter()
            .map(|v| Record::from_sorted(v.id + offset, v.tokens.to_vec()))
            .collect();
        for &theta in &[0.6, 0.8] {
            let res = run_rs_join_two_input(&r, &s, &FsJoinConfig::default().with_theta(theta));
            let want = naive_rs_join(&r.views(), &s_shifted, Measure::Jaccard, theta);
            compare_results(&res.pairs, &want, 1e-9).unwrap_or_else(|e| panic!("θ={theta}: {e}"));
        }
    }

    /// The ISSUE's acceptance bar: pair digests bit-identical to
    /// RIDPairsPPJoin-over-concat (cross pairs only) at
    /// θ ∈ {0.75, 0.85, 0.95}, in both plan modes.
    #[test]
    fn digest_matches_ridpairs_over_concat_in_both_modes() {
        let (r, s) = rs_corpora(40, 150);
        for &theta in &[0.75, 0.85, 0.95] {
            let want = pair_digest(&ridpairs_cross_oracle(&r, &s, Measure::Jaccard, theta));
            for mode in [PlanMode::Pipelined, PlanMode::Sequential] {
                let cfg = FsJoinConfig::default()
                    .with_theta(theta)
                    .with_plan_mode(mode);
                let res = run_rs_join_two_input(&r, &s, &cfg);
                assert_eq!(
                    pair_digest(&res.pairs),
                    want,
                    "θ={theta} mode={mode:?} digest mismatch"
                );
            }
        }
    }

    #[test]
    fn agrees_with_the_single_input_rs_driver() {
        let (r, s) = rs_corpora(30, 90);
        for &theta in &[0.7, 0.9] {
            let cfg = FsJoinConfig::default().with_theta(theta);
            let two = run_rs_join_two_input(&r, &s, &cfg);
            let one = crate::run_rs_join(&r, &s, &cfg);
            compare_results(&two.pairs, &one.pairs, 1e-9)
                .unwrap_or_else(|e| panic!("θ={theta}: {e}"));
        }
    }

    #[test]
    fn empty_sides_yield_no_pairs() {
        let (r, s) = rs_corpora(10, 30);
        let empty = Collection::new(Vec::new(), r.token_freqs.clone(), None);
        let cfg = FsJoinConfig::default().with_theta(0.8);
        assert!(run_rs_join_two_input(&empty, &s, &cfg).pairs.is_empty());
        assert!(run_rs_join_two_input(&r, &empty, &cfg).pairs.is_empty());
    }

    #[test]
    fn exact_duplicates_across_sides() {
        let r_corpus = RawCorpus::from_texts(&["a b c d e", "x y z"], &Tokenizer::Words);
        let s_corpus = RawCorpus::from_texts(&["a b c d e", "p q"], &Tokenizer::Words);
        let (r, s) = encode_two(&r_corpus, &s_corpus);
        let res = run_rs_join_two_input(&r, &s, &FsJoinConfig::default().with_theta(0.99));
        assert_eq!(res.pairs.len(), 1);
        assert_eq!(res.pairs[0].ids(), (0, r.len() as u32));
        assert!((res.pairs[0].sim - 1.0).abs() < 1e-12);
    }
}
