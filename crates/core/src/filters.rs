//! FS-Join's pruning filters (paper §V-A, Lemmas 1–4).
//!
//! All four filters are phrased so that they can run inside a reduce task
//! that sees only one fragment: global quantities a reducer cannot know
//! (`|s^h ∩ t^h|`, `|s^e ∩ t^e|`) are replaced by their locally computable
//! bounds (`min(|s^h|,|t^h|)` etc. — see DESIGN.md §4 for the soundness
//! argument). Every filter is *safe*: it never prunes a pair whose overall
//! similarity reaches θ, which the exactness property tests verify against
//! the brute-force oracle.

use ssj_similarity::Measure;

/// Which filters the fragment join applies. The prefix filter is a join
/// *kernel* choice ([`crate::JoinKernel::Prefix`]), not a member here,
/// matching the paper's presentation (§V-A lists it with the join methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterSet {
    /// String-length filter (Lemma 1).
    pub strl: bool,
    /// Segment-length filter (Lemma 2).
    pub segl: bool,
    /// Segment-intersection filter (Lemma 3).
    pub segi: bool,
    /// Segment-difference filter (Lemma 4).
    pub segd: bool,
}

impl FilterSet {
    /// All filters on (FS-Join's default).
    pub const ALL: FilterSet = FilterSet {
        strl: true,
        segl: true,
        segi: true,
        segd: true,
    };

    /// All filters off (pure verification-driven join).
    pub const NONE: FilterSet = FilterSet {
        strl: false,
        segl: false,
        segi: false,
        segd: false,
    };

    /// Only the string-length filter (the paper's Table IV baseline row).
    pub const STRL_ONLY: FilterSet = FilterSet {
        strl: true,
        segl: false,
        segi: false,
        segd: false,
    };
}

impl Default for FilterSet {
    fn default() -> Self {
        FilterSet::ALL
    }
}

/// How the fragment join decides which surviving pair-fragment records to
/// emit.
///
/// **Reproduction note.** [`Exact`](EmitPolicy::Exact) is the only policy
/// under which count-based verification (paper §V-B) is exact: any
/// fragment-pair with `c_i ≥ 1` that is not *provably* part of a
/// dissimilar pair must reach the verifier, because a borderline similar
/// pair needs every common token counted. On Zipf-distributed corpora
/// that makes the filter job's output inherently Ω(co-token pairs). The
/// paper's Table IV reports outputs barely above the final result count
/// (e.g. 6,840 records from 74k PubMed abstracts), which is only
/// reachable by additionally dropping fragments whose required local
/// overlap is non-positive — [`PositiveBoundOnly`](EmitPolicy::PositiveBoundOnly)
/// reproduces that behaviour so its volume/recall trade-off can be
/// measured. It is *not* exact (recall tests in `driver` quantify the
/// loss) and exists for reproduction analysis only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitPolicy {
    /// Emit every surviving pair-fragment with `c_i ≥ 1` (exact).
    #[default]
    Exact,
    /// Emit only fragments where the pair's required local overlap is ≥ 1
    /// (paper-magnitude volumes; approximate).
    PositiveBoundOnly,
}

/// Pruning counters, aggregated across reduce tasks for the Table IV
/// filter-power report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Segment pairs considered by the fragment join (post kernel candidate
    /// generation, pre filters).
    pub pairs_considered: u64,
    /// Pairs pruned by StrL.
    pub strl_pruned: u64,
    /// Pairs pruned by SegL (before intersection).
    pub segl_pruned: u64,
    /// Pairs pruned by SegI (after intersection).
    pub segi_pruned: u64,
    /// Pairs pruned by SegD (after intersection).
    pub segd_pruned: u64,
    /// Surviving pair-fragments dropped by
    /// [`EmitPolicy::PositiveBoundOnly`] (0 under [`EmitPolicy::Exact`]).
    pub policy_dropped: u64,
    /// Candidate records emitted (pair-fragment contributions).
    pub emitted: u64,
    /// Exact intersections executed by the join kernel (the Index kernel
    /// accumulates counts while probing, so it reports 0 here). Counts
    /// only pairs that survived the bitmap check.
    pub intersections: u64,
    /// Tokens fed to those intersections (sum of both inputs per call).
    pub intersect_tokens: u64,
    /// Pairs whose record bitmaps were consulted before intersecting.
    pub bitmap_checks: u64,
    /// Pairs the bitmap upper bound settled without an exact intersection
    /// (≤ `bitmap_checks`; lossless, see DESIGN.md §12).
    pub bitmap_pruned: u64,
}

impl FilterStats {
    /// `(counter name, value)` view of every field, under the canonical
    /// [`crate::keys`] names used in registries and metric dumps.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        use crate::keys;
        [
            (keys::FILTER_PAIRS_CONSIDERED, self.pairs_considered),
            (keys::FILTER_STRL_PRUNED, self.strl_pruned),
            (keys::FILTER_SEGL_PRUNED, self.segl_pruned),
            (keys::FILTER_SEGI_PRUNED, self.segi_pruned),
            (keys::FILTER_SEGD_PRUNED, self.segd_pruned),
            (keys::FILTER_POLICY_DROPPED, self.policy_dropped),
            (keys::FILTER_EMITTED, self.emitted),
            (keys::KERNEL_INTERSECTIONS, self.intersections),
            (keys::KERNEL_INTERSECT_TOKENS, self.intersect_tokens),
            (keys::KERNEL_BITMAP_CHECKS, self.bitmap_checks),
            (keys::KERNEL_BITMAP_PRUNED, self.bitmap_pruned),
        ]
    }

    /// Merge another task's counters into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.pairs_considered += other.pairs_considered;
        self.strl_pruned += other.strl_pruned;
        self.segl_pruned += other.segl_pruned;
        self.segi_pruned += other.segi_pruned;
        self.segd_pruned += other.segd_pruned;
        self.policy_dropped += other.policy_dropped;
        self.emitted += other.emitted;
        self.intersections += other.intersections;
        self.intersect_tokens += other.intersect_tokens;
        self.bitmap_checks += other.bitmap_checks;
        self.bitmap_pruned += other.bitmap_pruned;
    }

    /// Count one exact intersection over inputs of the given lengths.
    #[inline]
    pub fn count_intersection(&mut self, len_a: usize, len_b: usize) {
        self.intersections += 1;
        self.intersect_tokens += (len_a + len_b) as u64;
    }

    /// Add these counters into `registry` under the `fsjoin.filter.*`
    /// names (the registry's counters are additive, so concurrent reduce
    /// tasks can record independently).
    pub fn record_to(&self, registry: &ssj_observe::MetricsRegistry) {
        for (name, value) in self.fields() {
            registry.counter_add(name, value);
        }
    }

    /// Reconstruct aggregated counters from a registry populated via
    /// [`Self::record_to`]. Missing counters read as 0.
    pub fn from_registry(registry: &ssj_observe::MetricsRegistry) -> FilterStats {
        use crate::keys;
        FilterStats {
            pairs_considered: registry.counter_get(keys::FILTER_PAIRS_CONSIDERED),
            strl_pruned: registry.counter_get(keys::FILTER_STRL_PRUNED),
            segl_pruned: registry.counter_get(keys::FILTER_SEGL_PRUNED),
            segi_pruned: registry.counter_get(keys::FILTER_SEGI_PRUNED),
            segd_pruned: registry.counter_get(keys::FILTER_SEGD_PRUNED),
            policy_dropped: registry.counter_get(keys::FILTER_POLICY_DROPPED),
            emitted: registry.counter_get(keys::FILTER_EMITTED),
            intersections: registry.counter_get(keys::KERNEL_INTERSECTIONS),
            intersect_tokens: registry.counter_get(keys::KERNEL_INTERSECT_TOKENS),
            bitmap_checks: registry.counter_get(keys::KERNEL_BITMAP_CHECKS),
            bitmap_pruned: registry.counter_get(keys::KERNEL_BITMAP_PRUNED),
        }
    }
}

/// Precomputed bounds for one segment pair, shared by SegL/SegI/SegD.
///
/// * `required_local` — minimum local overlap `c_i` a θ-similar pair must
///   exhibit in this fragment:
///   `minoverlap(θ,|s|,|t|) − min(|s^h|,|t^h|) − min(|s^e|,|t^e|)`
///   (Lemmas 2–3 with the local bounds substituted). May be ≤ 0, in which
///   case SegL/SegI cannot prune.
/// * `max_local_diff` — maximum local symmetric difference
///   `|Seg_s Δ Seg_t|` a θ-similar pair may exhibit:
///   `(|s|+|t|−2·minoverlap) − abs(Δhead) − abs(Δtail)` (Lemma 4,
///   rearranged; see DESIGN.md §4 item 4). May be < 0, in which case the
///   head/tail length gaps alone disprove similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairBounds {
    /// Minimum local overlap for a θ-similar pair.
    pub required_local: i64,
    /// Maximum local symmetric difference for a θ-similar pair.
    pub max_local_diff: i64,
}

impl PairBounds {
    /// Compute the bounds from the two segments' metadata.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        measure: Measure,
        theta: f64,
        len_s: u32,
        head_s: u32,
        tail_s: u32,
        len_t: u32,
        head_t: u32,
        tail_t: u32,
    ) -> Self {
        let alpha = measure.min_overlap(theta, len_s as usize, len_t as usize) as i64;
        let required_local = alpha - i64::from(head_s.min(head_t)) - i64::from(tail_s.min(tail_t));
        let max_total_diff = i64::from(len_s) + i64::from(len_t) - 2 * alpha;
        let max_local_diff = max_total_diff
            - i64::from(head_s.abs_diff(head_t))
            - i64::from(tail_s.abs_diff(tail_t));
        PairBounds {
            required_local,
            max_local_diff,
        }
    }
}

/// StrL-Filter (Lemma 1): prune when the shorter record is below the length
/// window of the longer.
#[inline]
pub fn strl_pass(measure: Measure, theta: f64, len_s: u32, len_t: u32) -> bool {
    let (short, long) = if len_s <= len_t {
        (len_s, len_t)
    } else {
        (len_t, len_s)
    };
    short as usize >= measure.min_partner_len(theta, long as usize)
}

/// SegL-Filter (Lemma 2): prune *before* intersecting when even the shorter
/// segment cannot supply the required local overlap.
#[inline]
pub fn segl_pass(bounds: &PairBounds, seg_len_s: usize, seg_len_t: usize) -> bool {
    seg_len_s.min(seg_len_t) as i64 >= bounds.required_local
}

/// SegI-Filter (Lemma 3): prune *after* intersecting when the local overlap
/// falls short of the required local overlap.
#[inline]
pub fn segi_pass(bounds: &PairBounds, local_overlap: usize) -> bool {
    local_overlap as i64 >= bounds.required_local
}

/// SegD-Filter (Lemma 4): prune when the local symmetric difference exceeds
/// the allowance left by the head/tail length gaps. Can also run before
/// intersection with the lower bound `|seg_len_s − seg_len_t|` — see
/// [`segd_pass_precheck`].
#[inline]
pub fn segd_pass(
    bounds: &PairBounds,
    seg_len_s: usize,
    seg_len_t: usize,
    local_overlap: usize,
) -> bool {
    let diff = (seg_len_s + seg_len_t) as i64 - 2 * local_overlap as i64;
    diff <= bounds.max_local_diff
}

/// SegD pre-intersection check using the minimum possible local symmetric
/// difference (when one segment contains the other).
#[inline]
pub fn segd_pass_precheck(bounds: &PairBounds, seg_len_s: usize, seg_len_t: usize) -> bool {
    (seg_len_s as i64 - seg_len_t as i64).abs() <= bounds.max_local_diff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strl_matches_lemma1() {
        // θ=0.8, |t|=10: partners shorter than 8 are pruned.
        assert!(strl_pass(Measure::Jaccard, 0.8, 8, 10));
        assert!(!strl_pass(Measure::Jaccard, 0.8, 7, 10));
        // Symmetric.
        assert!(!strl_pass(Measure::Jaccard, 0.8, 10, 7));
    }

    #[test]
    fn paper_example2_segl() {
        // Paper Example 2: s = {A,B,D,E,G}, t = {B,D,E,F,K}, θ=0.8,
        // pivots {D,G}. For i=1: Seg1_s={A,B}, Seg1_t={B} ... the paper's
        // own arithmetic is garbled, but the conclusion (pair prunable at
        // θ=0.8) must hold: true Jaccard is 3/7 ≈ 0.43 < 0.8.
        // Segment 1 (< D): s: {A,B} head 0 tail 3; t: {B} head 0 tail 4.
        let b = PairBounds::new(Measure::Jaccard, 0.8, 5, 0, 3, 5, 0, 4);
        // α = ceil(0.8/1.8*10) = 5; required = 5 - 0 - 3 = 2.
        assert_eq!(b.required_local, 2);
        // min(2,1) = 1 < 2 -> SegL prunes this fragment pair.
        assert!(!segl_pass(&b, 2, 1));
    }

    #[test]
    fn bounds_never_prune_similar_pairs() {
        // Construct identical records split anywhere: every fragment of an
        // identical pair must pass all filters.
        for m in Measure::all() {
            for &theta in &[0.6, 0.8, 0.95, 1.0] {
                for len in 1u32..20 {
                    for head in 0..len {
                        for seg in 1..=(len - head) {
                            let tail = len - head - seg;
                            let b = PairBounds::new(m, theta, len, head, tail, len, head, tail);
                            let c = seg as usize; // identical segments
                            assert!(segl_pass(&b, c, c));
                            assert!(segi_pass(&b, c));
                            assert!(segd_pass(&b, c, c, c));
                            assert!(segd_pass_precheck(&b, c, c));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn segi_prunes_small_overlap() {
        // Two length-10 records, θ=0.8 ⇒ α=9. One fragment holds nearly the
        // whole record (head=0, tail=1): required_local = 9-0-1 = 8.
        let b = PairBounds::new(Measure::Jaccard, 0.8, 10, 0, 1, 10, 0, 1);
        assert_eq!(b.required_local, 8);
        assert!(segi_pass(&b, 8));
        assert!(!segi_pass(&b, 7));
    }

    #[test]
    fn segd_prunes_large_difference() {
        // θ=0.8, |s|=|t|=10 ⇒ α=9, max diff = 20-18 = 2. Heads/tails equal.
        let b = PairBounds::new(Measure::Jaccard, 0.8, 10, 2, 3, 10, 2, 3);
        assert_eq!(b.max_local_diff, 2);
        // Segments of len 5 each with overlap 4: diff = 2 -> pass.
        assert!(segd_pass(&b, 5, 5, 4));
        // Overlap 3: diff = 4 -> prune.
        assert!(!segd_pass(&b, 5, 5, 3));
        // Precheck: |5-5|=0 <= 2 passes; |5-9|=4 > 2 prunes early.
        assert!(segd_pass_precheck(&b, 5, 5));
        assert!(!segd_pass_precheck(&b, 5, 9));
    }

    #[test]
    fn head_tail_gaps_tighten_segd() {
        // Same as above but heads differ by 2: allowance shrinks to 0.
        let b = PairBounds::new(Measure::Jaccard, 0.8, 10, 4, 3, 10, 2, 3);
        assert_eq!(b.max_local_diff, 0);
        assert!(!segd_pass(&b, 3, 5, 3)); // diff 2 > 0
        assert!(segd_pass(&b, 4, 4, 4)); // diff 0
    }

    #[test]
    fn negative_required_never_prunes() {
        // Fragment far from the record's mass: head+tail huge.
        let b = PairBounds::new(Measure::Jaccard, 0.8, 100, 50, 45, 100, 50, 45);
        assert!(b.required_local < 0);
        assert!(segl_pass(&b, 0, 0));
        assert!(segi_pass(&b, 0));
    }

    /// Reproduction finding: with the locally available information
    /// (segment lengths, head/tail lengths), Lemma 3 (SegI) and Lemma 4
    /// (SegD) are the *same* predicate. Algebra: the SegD condition
    /// `segΔ ≤ (|s|+|t|−2α) − |Δh| − |Δe|` rewrites, using
    /// `seg_s − |s| = −(h_s+e_s)` and `(h_s+h_t) − |Δh| = 2·min(h)`, to
    /// `c ≥ α − min(h) − min(e)` — exactly SegI's local form. The paper's
    /// Table IV shows different counts for the two, which is only possible
    /// with information a single reducer does not have (e.g. exact
    /// head/tail intersections); see DESIGN.md §4.
    #[test]
    fn segi_and_segd_are_locally_equivalent() {
        for m in Measure::all() {
            for &theta in &[0.6, 0.8, 0.95] {
                for ls in 1u32..15 {
                    for lt in 1u32..15 {
                        for hs in 0..ls {
                            for ht in 0..lt {
                                // One consistent segment split per record.
                                let (ts, tt) = (ls - hs, lt - ht); // tail+seg
                                for seg_s in 1..=ts {
                                    for seg_t in 1..=tt {
                                        let b = PairBounds::new(
                                            m,
                                            theta,
                                            ls,
                                            hs,
                                            ts - seg_s,
                                            lt,
                                            ht,
                                            tt - seg_t,
                                        );
                                        for c in 0..=seg_s.min(seg_t) as usize {
                                            assert_eq!(
                                                segi_pass(&b, c),
                                                segd_pass(&b, seg_s as usize, seg_t as usize, c),
                                                "m={m:?} θ={theta} ls={ls} lt={lt} c={c}"
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn filterset_constants() {
        assert_eq!(FilterSet::default(), FilterSet::ALL);
        const { assert!(FilterSet::STRL_ONLY.strl && !FilterSet::STRL_ONLY.segd) };
        const { assert!(!FilterSet::NONE.strl) };
    }

    #[test]
    fn stats_merge() {
        let mut a = FilterStats {
            pairs_considered: 10,
            strl_pruned: 1,
            segl_pruned: 2,
            segi_pruned: 3,
            segd_pruned: 4,
            policy_dropped: 0,
            emitted: 5,
            intersections: 6,
            intersect_tokens: 60,
            bitmap_checks: 8,
            bitmap_pruned: 2,
        };
        a.merge(&a.clone());
        assert_eq!(a.pairs_considered, 20);
        assert_eq!(a.emitted, 10);
        assert_eq!(a.intersections, 12);
        assert_eq!(a.intersect_tokens, 120);
        assert_eq!(a.bitmap_checks, 16);
        assert_eq!(a.bitmap_pruned, 4);
    }

    #[test]
    fn stats_registry_round_trip() {
        let stats = FilterStats {
            pairs_considered: 100,
            strl_pruned: 7,
            segl_pruned: 11,
            segi_pruned: 13,
            segd_pruned: 17,
            policy_dropped: 19,
            emitted: 23,
            intersections: 29,
            intersect_tokens: 31,
            bitmap_checks: 37,
            bitmap_pruned: 41,
        };
        let reg = ssj_observe::MetricsRegistry::new();
        stats.record_to(&reg);
        assert_eq!(FilterStats::from_registry(&reg), stats);
        // Counters are additive: a second worker's record_to accumulates.
        stats.record_to(&reg);
        let doubled = FilterStats::from_registry(&reg);
        assert_eq!(doubled.pairs_considered, 200);
        assert_eq!(doubled.emitted, 46);
        // An empty registry reads back as zeros.
        let empty = ssj_observe::MetricsRegistry::new();
        assert_eq!(FilterStats::from_registry(&empty), FilterStats::default());
    }
}
