//! The FS-Join driver: wires the filtering and verification MapReduce jobs
//! (paper Algorithm 1 / Figure 3).
//!
//! The ordering phase is performed at encoding time ([`ssj_text::encode`] /
//! [`ssj_text::encode_mr`]); the driver consumes an already-encoded
//! [`Collection`] whose frequency table *is* the global ordering.

use crate::config::FsJoinConfig;
use crate::filters::FilterStats;
use crate::fragment::{join_fragment, PairScope};
use crate::horizontal::{h_partitions_for, num_h_partitions, select_h_pivots, JoinRule};
use crate::pivots::select_pivots;
use crate::segment::Segment;
use crate::vertical::split_record;
use ssj_mapreduce::{
    ChainMetrics, Dataset, DirectPartitioner, Emitter, GroupValues, HashPartitioner,
    IdentityCombiner, Mapper, Plan, PlanRunner, StreamingReducer,
};
use ssj_observe::{span, MetricsRegistry};
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{Collection, PooledRecord, TokenPool};
use std::sync::Arc;

/// Everything an FS-Join run produces.
#[derive(Debug, Clone)]
pub struct FsJoinResult {
    /// The similar pairs with exact scores.
    pub pairs: Vec<SimilarPair>,
    /// Engine metrics for the filtering and verification jobs.
    pub chain: ChainMetrics,
    /// Aggregated pruning counters from the fragment joins.
    pub filter_stats: FilterStats,
    /// Candidate records emitted by the filtering job (the paper's
    /// Table IV quantity).
    pub candidates: usize,
    /// The vertical pivot ranks used.
    pub pivots: Vec<u32>,
    /// The horizontal length pivots used (empty for FS-Join-V).
    pub h_pivots: Vec<u32>,
    /// High-water mark of live intermediate bytes held between stages
    /// (see [`ssj_mapreduce::PlanOutcome::peak_live_bytes`]).
    pub peak_live_bytes: usize,
    /// Shuffle upstreams of each executed plan stage (empty = external
    /// input), in [`ChainMetrics`] job order — the plan shape
    /// [`ssj_mapreduce::ClusterModel::simulate_plan`] consumes alongside
    /// [`Self::chain`].
    pub deps: Vec<Vec<usize>>,
}

impl FsJoinResult {
    /// Total simulated time on a modelled cluster (see
    /// [`ssj_mapreduce::ClusterModel`]).
    pub fn simulated_secs(&self, cluster: &ssj_mapreduce::ClusterModel) -> f64 {
        cluster.simulate_chain(&self.chain).total_secs()
    }
}

/// Self-join a collection. The collection's token pool is shared with the
/// jobs as-is (an `Arc` clone) — no token is copied to set up the join.
pub fn run_self_join(collection: &Collection, cfg: &FsJoinConfig) -> FsJoinResult {
    run_join(
        collection.share_pool(),
        collection.len(),
        0,
        &collection.token_freqs,
        cfg,
        PairScope::SelfJoin,
    )
}

/// R×S join of two collections encoded in the **same token-rank space**
/// (see [`ssj_text::encode::encode_two`]). S-side record ids are offset by
/// `r.len()` in the returned pairs: pair `(a, b)` with `b ≥ offset` refers
/// to S-record `b − offset`.
pub fn run_rs_join(r: &Collection, s: &Collection, cfg: &FsJoinConfig) -> FsJoinResult {
    assert_eq!(
        r.token_freqs, s.token_freqs,
        "R and S must be encoded together (shared global ordering)"
    );
    // One shared arena: R's records keep their offsets, S's follow (ids
    // shift by r.len(), matching the pair-id offset contract above).
    let pool = Arc::new(TokenPool::concat(r.pool(), s.pool()));
    run_join(
        pool,
        r.len(),
        s.len(),
        &r.token_freqs,
        cfg,
        PairScope::CrossSides,
    )
}

/// Filtering-job mapper: vertical + horizontal partitioning of one record
/// (paper Algorithm 1 lines 6–9). Shared with the prefix-discovery variant
/// ([`crate::pf`]). Tokens are resolved against the run's shared pool
/// (shipped to every task over a [`Broadcast`](ssj_mapreduce::StageEdge)
/// edge); segments are `Copy` spans, so the map phase allocates no token
/// storage.
pub(crate) struct PartitionMapper {
    pub(crate) pool: Arc<TokenPool>,
    pub(crate) pivots: Arc<Vec<u32>>,
    pub(crate) h_pivots: Arc<Vec<u32>>,
    pub(crate) num_fragments: usize,
    pub(crate) measure: Measure,
    pub(crate) theta: f64,
}

impl Mapper for PartitionMapper {
    type InKey = u32;
    type InValue = (u8, PooledRecord);
    type OutKey = u32; // cell id = h * num_fragments + v
    type OutValue = Segment;

    fn map(
        &mut self,
        _rid: u32,
        (side, record): (u8, PooledRecord),
        out: &mut Emitter<u32, Segment>,
    ) {
        if record.span.is_empty() {
            return;
        }
        let tokens = self.pool.resolve(record.span);
        let hs = h_partitions_for(tokens.len(), &self.h_pivots, self.measure, self.theta);
        let segments = split_record(record.id, side, tokens, record.span, &self.pivots);
        for &h in &hs {
            for &(v, seg) in &segments {
                out.emit((h * self.num_fragments + v) as u32, seg);
            }
        }
    }
}

/// Filtering-job reducer: joins one fragment cell (paper Algorithm 1
/// lines 10–13). Pruning counters accumulate locally and flow into the
/// run's [`MetricsRegistry`] at task cleanup (registry counters are
/// additive, so concurrent reduce tasks never contend mid-join).
///
/// Implements [`StreamingReducer`] directly: each cell's segments stream
/// off the k-way merge into a scratch buffer reused across cells — the
/// engine allocates nothing per key, and the reducer amortizes its one
/// buffer over the whole task ([`Segment`]s are `Copy` spans, so the copy
/// is 16 bytes/segment with no token movement).
struct FragmentReducer {
    pool: Arc<TokenPool>,
    cfg: FsJoinConfig,
    h_pivots: Arc<Vec<u32>>,
    scope: PairScope,
    local_stats: FilterStats,
    registry: Arc<MetricsRegistry>,
    scratch: Vec<Segment>,
}

impl StreamingReducer for FragmentReducer {
    type InKey = u32;
    type InValue = Segment;
    type OutKey = (u32, u32);
    type OutValue = (u32, u32, u32);

    fn reduce_group(
        &mut self,
        cell: &u32,
        segments: &mut GroupValues<'_, '_, u32, Segment>,
        out: &mut Emitter<(u32, u32), (u32, u32, u32)>,
    ) {
        self.scratch.clear();
        self.scratch.extend(segments.copied());
        let segments = &self.scratch;
        let h = *cell as usize / self.cfg.num_fragments;
        let rule = JoinRule::for_partition(h, &self.h_pivots);
        let before_pairs = self.local_stats.pairs_considered;
        let before_emitted = self.local_stats.emitted;
        let records = join_fragment(
            &self.pool,
            segments,
            rule,
            self.scope,
            self.cfg.measure,
            self.cfg.theta,
            self.cfg.kernel,
            self.cfg.filters,
            self.cfg.emit_policy,
            self.cfg.bitmap_prune,
            &mut self.local_stats,
        );
        // Per-cell load distributions (skew diagnosis for the fragment
        // join, independent of reduce-task packing).
        self.registry.histogram_record(
            crate::keys::FRAGMENT_PAIRS,
            self.local_stats.pairs_considered - before_pairs,
        );
        self.registry.histogram_record(
            crate::keys::FRAGMENT_CANDIDATES,
            self.local_stats.emitted - before_emitted,
        );
        for rec in records {
            out.emit(rec.key(), rec.value());
        }
    }

    fn cleanup(&mut self, _out: &mut Emitter<(u32, u32), (u32, u32, u32)>) {
        self.local_stats.record_to(&self.registry);
        self.local_stats = FilterStats::default();
    }
}

/// Map-side combiner for the verification job: partial counts of the same
/// pair within one map task are summed before the shuffle (Hadoop-style;
/// semantically transparent because verification only ever sums them).
struct VerifyCombiner;

impl ssj_mapreduce::Combiner<(u32, u32), (u32, u32, u32)> for VerifyCombiner {
    fn combine(&self, _pair: &(u32, u32), values: Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
        let mut total = 0u32;
        let (mut la, mut lb) = (0u32, 0u32);
        for (c, a, b) in values {
            total += c;
            la = a;
            lb = b;
        }
        vec![(total, la, lb)]
    }

    /// Fold-style streaming path: sums contributions straight off the
    /// sorted bucket with no per-key `Vec` (see
    /// [`Combiner::combine_into`](ssj_mapreduce::Combiner::combine_into)).
    fn combine_into(
        &self,
        _pair: &(u32, u32),
        values: &mut dyn Iterator<Item = (u32, u32, u32)>,
        out: &mut Vec<(u32, u32, u32)>,
    ) {
        let mut total = 0u32;
        let (mut la, mut lb) = (0u32, 0u32);
        for (c, a, b) in values {
            total += c;
            la = a;
            lb = b;
        }
        out.push((total, la, lb));
    }

    /// Integer-count sum; every contribution for a pair carries the same
    /// record lengths, so the fold is a pure function of the value
    /// multiset. This licenses the engine's unstable map-side bucket sort.
    fn is_commutative(&self) -> bool {
        true
    }
}

/// Verification-job mapper: identity (paper Algorithm 1 lines 15–16).
struct VerifyMapper;

impl Mapper for VerifyMapper {
    type InKey = (u32, u32);
    type InValue = (u32, u32, u32);
    type OutKey = (u32, u32);
    type OutValue = (u32, u32, u32);

    fn map(
        &mut self,
        pair: (u32, u32),
        payload: (u32, u32, u32),
        out: &mut Emitter<(u32, u32), (u32, u32, u32)>,
    ) {
        out.emit(pair, payload);
    }
}

/// Verification-job reducer: sums per-fragment counts and computes the
/// exact score from counts alone (paper §V-B). Streams its group — the
/// sum folds contribution-by-contribution with no buffering anywhere.
struct VerifyReducer {
    measure: Measure,
    theta: f64,
}

impl StreamingReducer for VerifyReducer {
    type InKey = (u32, u32);
    type InValue = (u32, u32, u32);
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        contributions: &mut GroupValues<'_, '_, (u32, u32), (u32, u32, u32)>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        let (mut total, mut len_a, mut len_b) = (0usize, 0usize, 0usize);
        for &(c, la, lb) in contributions {
            total += c as usize;
            len_a = la as usize;
            len_b = lb as usize;
        }
        if self.measure.passes(total, len_a, len_b, self.theta) {
            out.emit(*pair, self.measure.score(total, len_a, len_b));
        }
    }
}

fn run_join(
    pool: Arc<TokenPool>,
    num_r: usize,
    num_s: usize,
    freqs: &[u64],
    cfg: &FsJoinConfig,
    scope: PairScope,
) -> FsJoinResult {
    cfg.validate();
    assert_eq!(pool.len(), num_r + num_s, "pool must hold exactly R ++ S");
    let run_span = span("fsjoin.stage", "run")
        .field("records", num_r + num_s)
        .field("theta", cfg.theta);

    // ---- Setup: pivot selection (Algorithm 1 lines 2–4) ------------------
    let ordering_span = span("fsjoin.stage", "ordering");
    let pivots = Arc::new(select_pivots(
        freqs,
        cfg.num_fragments.saturating_sub(1),
        cfg.pivot_strategy,
        cfg.seed,
    ));
    // Effective fragment count (small domains may yield fewer pivots);
    // the reducer derives the horizontal partition from the cell id, so it
    // must see the *effective* count, not the requested one.
    let num_fragments = pivots.len() + 1;
    let cfg_eff = {
        let mut c = cfg.clone();
        c.num_fragments = num_fragments;
        c
    };

    // Length histogram straight off the pool's CSR offsets — no span
    // resolution, no intermediate Vec.
    let h_pivots = Arc::new(select_h_pivots(pool.lengths(), cfg.horizontal_pivots));
    let num_cells = num_h_partitions(&h_pivots) * num_fragments;
    drop(
        ordering_span
            .field("fragments", num_fragments)
            .field("h_partitions", num_h_partitions(&h_pivots)),
    );

    // ---- Input dataset ----------------------------------------------------
    // Each input record is just (side tag, span) — the tokens stay in the
    // shared pool. Logical input bytes are unchanged: a PooledRecord's
    // ByteSize still counts id + length prefix + tokens.
    let mut input_records: Vec<(u32, (u8, PooledRecord))> = Vec::with_capacity(num_r + num_s);
    for rid in 0..(num_r + num_s) as u32 {
        let side = u8::from(rid as usize >= num_r);
        input_records.push((
            rid,
            (
                side,
                PooledRecord {
                    id: rid,
                    span: pool.span_of(rid),
                },
            ),
        ));
    }
    let input = Dataset::from_records(input_records, cfg.map_tasks);

    // ---- Plan: filtering → verification -----------------------------------
    // One declarative two-stage plan: the filter stage's reduce partitions
    // feed the verify stage's map splits. Under the default pipelined mode
    // each candidate partition is verified the moment its fragment join
    // completes and dropped right after — the verify job overlaps the
    // filter job's reduce tail instead of waiting behind a barrier.
    //
    // Per-run registry: fragment reducers record pruning counters and
    // per-cell histograms here; the aggregate is read back below and also
    // merged into the process-global registry when one is installed.
    let run_registry = Arc::new(MetricsRegistry::new());
    let filter_span = span("fsjoin.stage", "filter-job").field("cells", num_cells);
    let verify_span = span("fsjoin.stage", "verify-job");
    let reduce_tasks = cfg.reduce_tasks.min(num_cells).max(1);

    let mut plan = Plan::new("fsjoin").with_workers(cfg.workers);
    // Ship the token arena to every task over a broadcast edge (the
    // distributed-cache analogue): tasks receive one shared Arc instead of
    // each record carrying an owned token vector, and the runner drops the
    // value the moment its last consumer stage finishes.
    let pool_bcast = plan.broadcast(Arc::clone(&pool));
    let candidates_h = plan.add_full_broadcast(
        "fsjoin-filter",
        input,
        pool_bcast,
        reduce_tasks,
        {
            let pivots = Arc::clone(&pivots);
            let h_pivots = Arc::clone(&h_pivots);
            let (measure, theta) = (cfg.measure, cfg.theta);
            move |_, pool: &Arc<TokenPool>| PartitionMapper {
                pool: Arc::clone(pool),
                pivots: Arc::clone(&pivots),
                h_pivots: Arc::clone(&h_pivots),
                num_fragments,
                measure,
                theta,
            }
        },
        {
            let h_pivots = Arc::clone(&h_pivots);
            let registry = Arc::clone(&run_registry);
            move |_, pool: &Arc<TokenPool>| FragmentReducer {
                pool: Arc::clone(pool),
                cfg: cfg_eff.clone(),
                h_pivots: Arc::clone(&h_pivots),
                scope,
                local_stats: FilterStats::default(),
                registry: Arc::clone(&registry),
                scratch: Vec::new(),
            }
        },
        DirectPartitioner::new(|cell: &u32| *cell as usize),
        None::<IdentityCombiner>,
    );
    let verified_h = plan.add_full(
        "fsjoin-verify",
        candidates_h,
        cfg.reduce_tasks,
        |_| VerifyMapper,
        {
            let (measure, theta) = (cfg.measure, cfg.theta);
            move |_| VerifyReducer { measure, theta }
        },
        HashPartitioner,
        Some(VerifyCombiner),
    );

    // The reducer reads num_fragments from cfg; keep them consistent.
    debug_assert!(num_fragments >= 1);
    let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
    let verified = outcome.take_output(verified_h);
    let peak_live_bytes = outcome.peak_live_bytes;
    let deps = outcome.deps().to_vec();
    let chain = outcome.metrics;
    // The candidate count is the filter stage's reduce output — the same
    // quantity `total_records()` reported on the materialized dataset
    // (which pipelining no longer keeps around).
    let candidates = chain.jobs[0].reduce_output_records();
    drop(filter_span.field("candidates", candidates));

    let mut pairs: Vec<SimilarPair> = verified
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|x| x.ids());
    drop(verify_span.field("pairs", pairs.len()));

    let filter_stats = FilterStats::from_registry(&run_registry);
    run_registry.gauge_set(crate::keys::CANDIDATES, candidates as f64);
    run_registry.gauge_set(crate::keys::PAIRS, pairs.len() as f64);
    if let Some(global) = ssj_observe::global_registry() {
        global.merge_from(&run_registry);
    }
    drop(run_span.field("pairs", pairs.len()));
    FsJoinResult {
        pairs,
        chain,
        filter_stats,
        candidates,
        pivots: Arc::try_unwrap(pivots).unwrap_or_else(|a| (*a).clone()),
        h_pivots: Arc::try_unwrap(h_pivots).unwrap_or_else(|a| (*a).clone()),
        peak_live_bytes,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterSet, JoinKernel};
    use crate::pivots::PivotStrategy;
    use ssj_similarity::naive::naive_self_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::{encode, RawCorpus, Record, Tokenizer};

    fn tiny_collection() -> Collection {
        let corpus = RawCorpus::from_texts(
            &[
                "the quick brown fox jumps over the lazy dog",
                "the quick brown fox jumps over a lazy dog",
                "completely different words here now",
                "another unrelated record",
                "the quick brown fox jumps over the lazy dog today",
            ],
            &Tokenizer::Words,
        );
        encode(&corpus)
    }

    #[test]
    fn finds_near_duplicates() {
        let c = tiny_collection();
        let res = run_self_join(&c, &FsJoinConfig::default().with_theta(0.7));
        let want = naive_self_join(&c.views(), Measure::Jaccard, 0.7);
        compare_results(&res.pairs, &want, 1e-9).unwrap();
        assert!(res.candidates > 0);
        assert_eq!(res.chain.jobs.len(), 2);
        // The declared plan shape rides along: filter ← input, verify ← filter.
        assert_eq!(res.deps, vec![vec![], vec![0]]);
        // Kernel counters flow out with the filter stats.
        assert!(res.filter_stats.intersections > 0);
        assert!(res.filter_stats.intersect_tokens >= res.filter_stats.intersections);
    }

    #[test]
    fn fragmentation_does_not_change_results() {
        let c = tiny_collection();
        let want = naive_self_join(&c.views(), Measure::Jaccard, 0.6);
        for fragments in [1, 2, 4, 32] {
            let cfg = FsJoinConfig::default()
                .with_theta(0.6)
                .with_fragments(fragments);
            let res = run_self_join(&c, &cfg);
            compare_results(&res.pairs, &want, 1e-9)
                .unwrap_or_else(|e| panic!("fragments={fragments}: {e}"));
        }
    }

    #[test]
    fn kernels_filters_and_strategies_agree() {
        let c = tiny_collection();
        let want = naive_self_join(&c.views(), Measure::Jaccard, 0.7);
        for kernel in JoinKernel::all() {
            for filters in [FilterSet::ALL, FilterSet::NONE] {
                for strategy in PivotStrategy::all() {
                    let cfg = FsJoinConfig::default()
                        .with_theta(0.7)
                        .with_kernel(kernel)
                        .with_filters(filters)
                        .with_pivot_strategy(strategy);
                    let res = run_self_join(&c, &cfg);
                    compare_results(&res.pairs, &want, 1e-9)
                        .unwrap_or_else(|e| panic!("{kernel:?} {filters:?} {strategy:?}: {e}"));
                }
            }
        }
    }

    #[test]
    fn horizontal_on_off_agree() {
        let c = tiny_collection();
        let want = naive_self_join(&c.views(), Measure::Jaccard, 0.7);
        for t in [0, 1, 3, 8] {
            let res = run_self_join(
                &c,
                &FsJoinConfig::default().with_theta(0.7).with_horizontal(t),
            );
            compare_results(&res.pairs, &want, 1e-9).unwrap_or_else(|e| panic!("t={t}: {e}"));
        }
    }

    #[test]
    fn vertical_only_has_no_duplication() {
        // FS-Join-V: map emits each token exactly once, so shuffled bytes
        // stay within the segment-metadata overhead of the input bytes and
        // record expansion equals segments-per-record (no token repeats).
        let c = tiny_collection();
        let cfg = FsJoinConfig::default().with_horizontal(0).with_theta(0.8);
        let res = run_self_join(&c, &cfg);
        let filter = res.chain.job("fsjoin-filter").unwrap();
        let total_tokens: usize = c.total_tokens() as usize;
        // Every shuffled record is one segment costing exactly
        // key(4) + rid(4) + side(1) + len/head/tail(12) + vec prefix(4)
        // = 25 bytes of metadata plus 4 bytes per token. Solving for the
        // token payload proves each token crossed the shuffle EXACTLY once.
        let tokens_shuffled = (filter.shuffle_bytes - 25 * filter.shuffle_records) / 4;
        assert_eq!(tokens_shuffled, total_tokens);

        // With horizontal partitioning, boundary windows re-emit some
        // records: tokens may cross more than once (bounded duplication).
        let res_h = run_self_join(&c, &cfg.clone().with_horizontal(2));
        let filter_h = res_h.chain.job("fsjoin-filter").unwrap();
        let tokens_h = (filter_h.shuffle_bytes - 25 * filter_h.shuffle_records) / 4;
        assert!(tokens_h >= total_tokens);
    }

    #[test]
    fn rs_join_matches_oracle() {
        let r_corpus = RawCorpus::from_texts(
            &["alpha beta gamma delta", "one two three four"],
            &Tokenizer::Words,
        );
        let s_corpus = RawCorpus::from_texts(
            &["alpha beta gamma delta epsilon", "five six seven eight"],
            &Tokenizer::Words,
        );
        let (r, s) = ssj_text::encode::encode_two(&r_corpus, &s_corpus);
        let res = run_rs_join(&r, &s, &FsJoinConfig::default().with_theta(0.7));
        // Oracle with offset ids.
        let offset = r.len() as u32;
        let s_shifted: Vec<Record> = s
            .iter()
            .map(|v| Record::from_sorted(v.id + offset, v.tokens.to_vec()))
            .collect();
        let want =
            ssj_similarity::naive::naive_rs_join(&r.views(), &s_shifted, Measure::Jaccard, 0.7);
        compare_results(&res.pairs, &want, 1e-9).unwrap();
        assert_eq!(res.pairs.len(), 1);
        assert_eq!(res.pairs[0].ids(), (0, offset));
    }

    #[test]
    #[should_panic(expected = "encoded together")]
    fn rs_join_requires_shared_ordering() {
        let a = encode(&RawCorpus::from_texts(&["x y"], &Tokenizer::Words));
        let b = encode(&RawCorpus::from_texts(&["x y z"], &Tokenizer::Words));
        let _ = run_rs_join(&a, &b, &FsJoinConfig::default());
    }

    /// The paper-magnitude emission policy (see [`crate::EmitPolicy`])
    /// must slash candidate volume — and, being unsound, lose recall on
    /// fragmented near-duplicates. This test pins down both effects so the
    /// reproduction claim in EXPERIMENTS.md stays backed by code.
    #[test]
    fn positive_bound_policy_trades_recall_for_volume() {
        use crate::config::EmitPolicy;
        // Near-duplicate pairs whose overlap is spread over many fragments:
        // long records, one token changed.
        let mut records = Vec::new();
        for k in 0..30u32 {
            let base: Vec<u32> = (0..60).map(|i| (k * 97 + i * 13) % 4000).collect();
            let mut rec = Record::new(2 * k, base.clone());
            records.push(rec.clone());
            rec.id = 2 * k + 1;
            if let Some(t) = rec.tokens.pop() {
                let _ = t;
            }
            records.push(Record::new(2 * k + 1, rec.tokens));
        }
        let records: Vec<Record> = records
            .into_iter()
            .enumerate()
            .map(|(i, r)| Record::new(i as u32, r.tokens))
            .collect();
        let mut freqs = vec![0u64; 4000];
        for r in &records {
            for &t in &r.tokens {
                freqs[t as usize] += 1;
            }
        }
        let c = Collection::new(records, freqs, None);
        let exact_cfg = FsJoinConfig::default().with_theta(0.9).with_fragments(16);
        let strict_cfg = exact_cfg
            .clone()
            .with_emit_policy(EmitPolicy::PositiveBoundOnly);
        let exact = run_self_join(&c, &exact_cfg);
        let strict = run_self_join(&c, &strict_cfg);
        let oracle = naive_self_join(&c.views(), Measure::Jaccard, 0.9);
        compare_results(&exact.pairs, &oracle, 1e-9).expect("Exact policy must stay exact");
        assert!(
            strict.candidates < exact.candidates,
            "strict emission must shrink the filter-job output: {} vs {}",
            strict.candidates,
            exact.candidates
        );
        assert!(strict.filter_stats.policy_dropped > 0);
        assert!(
            strict.pairs.len() < exact.pairs.len(),
            "the paper-magnitude policy is provably lossy on fragmented \
             near-duplicates (got {} vs {})",
            strict.pairs.len(),
            exact.pairs.len()
        );
    }

    #[test]
    fn empty_collection_yields_no_pairs() {
        let c = Collection::default();
        let res = run_self_join(&c, &FsJoinConfig::default());
        assert!(res.pairs.is_empty());
        assert_eq!(res.candidates, 0);
    }
}
