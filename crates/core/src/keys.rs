//! Canonical `fsjoin.*` metric-key names.
//!
//! Every counter, gauge or histogram the join drivers record in a
//! [`MetricsRegistry`](ssj_observe::MetricsRegistry) uses one of these
//! constants — never an inline string — so the key namespace documented in
//! DESIGN.md §8 ("Profiling") is enforced by the compiler and `ssj-prof`
//! can rely on the names. The engine-side `mr.*` namespace lives in
//! `ssj_mapreduce::telemetry`.

/// Segment pairs considered by the fragment join (counter; post kernel
/// candidate generation, pre filters).
pub const FILTER_PAIRS_CONSIDERED: &str = "fsjoin.filter.pairs_considered";
/// Pairs pruned by the string-length filter, Lemma 1 (counter).
pub const FILTER_STRL_PRUNED: &str = "fsjoin.filter.strl_pruned";
/// Pairs pruned by the segment-length filter, Lemma 2 (counter).
pub const FILTER_SEGL_PRUNED: &str = "fsjoin.filter.segl_pruned";
/// Pairs pruned by the segment-intersection filter, Lemma 3 (counter).
pub const FILTER_SEGI_PRUNED: &str = "fsjoin.filter.segi_pruned";
/// Pairs pruned by the segment-difference filter, Lemma 4 (counter).
pub const FILTER_SEGD_PRUNED: &str = "fsjoin.filter.segd_pruned";
/// Surviving pair-fragments dropped by
/// [`EmitPolicy::PositiveBoundOnly`](crate::EmitPolicy) (counter).
pub const FILTER_POLICY_DROPPED: &str = "fsjoin.filter.policy_dropped";
/// Candidate records emitted by the filter stage (counter).
pub const FILTER_EMITTED: &str = "fsjoin.filter.emitted";

/// Exact merge/gallop intersections executed by a join kernel (counter).
/// The Index kernel accumulates overlaps while probing and never runs an
/// exact intersection, so it legitimately reports 0.
pub const KERNEL_INTERSECTIONS: &str = "fsjoin.kernel.intersections";
/// Tokens fed to those exact intersections — the sum of both input slice
/// lengths per call (counter; the kernels' work measure).
pub const KERNEL_INTERSECT_TOKENS: &str = "fsjoin.kernel.intersect_tokens";

/// Per-cell pair-comparison load of the fragment join (histogram).
pub const FRAGMENT_PAIRS: &str = "fsjoin.fragment.pairs";
/// Per-cell candidate emission of the fragment join (histogram).
pub const FRAGMENT_CANDIDATES: &str = "fsjoin.fragment.candidates";

/// Candidate records produced by the filter/discovery job (gauge; the
/// paper's Table IV quantity).
pub const CANDIDATES: &str = "fsjoin.candidates";
/// Final similar pairs (gauge).
pub const PAIRS: &str = "fsjoin.pairs";
