//! Canonical `fsjoin.*` and `serve.*` metric-key names.
//!
//! Every counter, gauge or histogram the join drivers record in a
//! [`MetricsRegistry`](ssj_observe::MetricsRegistry) uses one of these
//! constants — never an inline string — so the key namespace documented in
//! DESIGN.md §8 ("Profiling") is enforced by the compiler and `ssj-prof`
//! can rely on the names. The engine-side `mr.*` namespace lives in
//! `ssj_mapreduce::telemetry`; the serving plane (`ssj-serve`) records
//! under `serve.*`, declared here alongside the batch keys so the whole
//! application-level namespace sits in one file.

/// Segment pairs considered by the fragment join (counter; post kernel
/// candidate generation, pre filters).
pub const FILTER_PAIRS_CONSIDERED: &str = "fsjoin.filter.pairs_considered";
/// Pairs pruned by the string-length filter, Lemma 1 (counter).
pub const FILTER_STRL_PRUNED: &str = "fsjoin.filter.strl_pruned";
/// Pairs pruned by the segment-length filter, Lemma 2 (counter).
pub const FILTER_SEGL_PRUNED: &str = "fsjoin.filter.segl_pruned";
/// Pairs pruned by the segment-intersection filter, Lemma 3 (counter).
pub const FILTER_SEGI_PRUNED: &str = "fsjoin.filter.segi_pruned";
/// Pairs pruned by the segment-difference filter, Lemma 4 (counter).
pub const FILTER_SEGD_PRUNED: &str = "fsjoin.filter.segd_pruned";
/// Surviving pair-fragments dropped by
/// [`EmitPolicy::PositiveBoundOnly`](crate::EmitPolicy) (counter).
pub const FILTER_POLICY_DROPPED: &str = "fsjoin.filter.policy_dropped";
/// Candidate records emitted by the filter stage (counter).
pub const FILTER_EMITTED: &str = "fsjoin.filter.emitted";

/// Exact merge/gallop/chunked intersections executed by a join kernel
/// (counter). Since the bitmap prune layer (DESIGN.md §12) this counts
/// only the pairs that *survive* the `bitmap_checks` stage — a pair whose
/// bitmap upper bound settles the filter verdict never reaches an exact
/// intersection and is tallied under `bitmap_pruned` instead. The Index
/// kernel accumulates overlaps while probing and never runs an exact
/// intersection, so it legitimately reports 0.
pub const KERNEL_INTERSECTIONS: &str = "fsjoin.kernel.intersections";
/// Tokens fed to those exact intersections — the sum of both input slice
/// lengths per call (counter; the kernels' work measure, and the quantity
/// the bitmap prune exists to shrink).
pub const KERNEL_INTERSECT_TOKENS: &str = "fsjoin.kernel.intersect_tokens";
/// Pairs whose record bitmaps were consulted before exact intersection
/// (counter; the bitmap prune stage's denominator).
pub const KERNEL_BITMAP_CHECKS: &str = "fsjoin.kernel.bitmap_checks";
/// Pairs settled by the bitmap upper bound alone — no exact intersection
/// ran (counter; always ≤ `bitmap_checks`, lossless by construction).
pub const KERNEL_BITMAP_PRUNED: &str = "fsjoin.kernel.bitmap_pruned";

/// Per-cell pair-comparison load of the fragment join (histogram).
pub const FRAGMENT_PAIRS: &str = "fsjoin.fragment.pairs";
/// Per-cell candidate emission of the fragment join (histogram).
pub const FRAGMENT_CANDIDATES: &str = "fsjoin.fragment.candidates";

/// Candidate records produced by the filter/discovery job (gauge; the
/// paper's Table IV quantity).
pub const CANDIDATES: &str = "fsjoin.candidates";
/// Final similar pairs (gauge).
pub const PAIRS: &str = "fsjoin.pairs";

// ---------------------------------------------------------------------------
// Engine per-stage co-group keys (`mr.stage.<job>.*`).
//
// Emitted by `ssj_mapreduce::telemetry::record_job_telemetry` for every
// co-group stage (that crate sits below this one, so it cannot import
// these constants; the suffixes are pinned here — with the builders
// `ssj-prof` uses — so the full application-level namespace stays
// documented in one file and drift breaks a test, not a dashboard).
// ---------------------------------------------------------------------------

/// Suffix of the per-stage co-group marker gauge: `mr.stage.<job>.cogroup`
/// is set to 1 for a stage that consumed its upstreams' sealed reduce
/// partitions in place (no map phase, no fan-in shuffle).
pub const MR_STAGE_COGROUP_SUFFIX: &str = "cogroup";
/// Suffix of the per-stage bytes-saved counter:
/// `mr.stage.<job>.cogroup.shuffle_bytes_saved` accumulates the shuffle
/// volume an identity-rekey fan-in over the same inputs would have
/// re-transferred (= the co-group tasks' input bytes).
pub const MR_STAGE_COGROUP_BYTES_SAVED_SUFFIX: &str = "cogroup.shuffle_bytes_saved";

/// Full name of a stage's co-group marker gauge.
pub fn mr_stage_cogroup_key(stage: &str) -> String {
    format!("mr.stage.{stage}.{MR_STAGE_COGROUP_SUFFIX}")
}

/// Full name of a stage's co-group bytes-saved counter.
pub fn mr_stage_cogroup_bytes_saved_key(stage: &str) -> String {
    format!("mr.stage.{stage}.{MR_STAGE_COGROUP_BYTES_SAVED_SUFFIX}")
}

// ---------------------------------------------------------------------------
// Serving plane (`serve.*`) — recorded by the `ssj-serve` crate.
// ---------------------------------------------------------------------------

/// Point/top-k probes answered (counter).
pub const SERVE_PROBE_QUERIES: &str = "serve.probe.queries";
/// Distinct candidate records that entered a probe's accumulator — i.e.
/// shared at least one probe-prefix token and survived the length window
/// (counter).
pub const SERVE_PROBE_CANDIDATES: &str = "serve.probe.candidates";
/// Postings rejected by the length-window filter before accumulation
/// (counter).
pub const SERVE_PROBE_LENGTH_PRUNED: &str = "serve.probe.length_pruned";
/// Records inside the query's length window that shared **no** probe-prefix
/// token — the prefix filter's pruning power (counter).
pub const SERVE_PROBE_PREFIX_PRUNED: &str = "serve.probe.prefix_pruned";
/// Candidates killed by the positional upper bound before verification
/// (counter).
pub const SERVE_PROBE_POSITION_PRUNED: &str = "serve.probe.position_pruned";
/// Survivors whose bitmaps were consulted before verification (counter).
pub const SERVE_PROBE_BITMAP_CHECKS: &str = "serve.probe.bitmap_checks";
/// Survivors the bitmap upper bound rejected without an exact
/// intersection (counter; lossless — the bound is ≥ the true overlap).
pub const SERVE_PROBE_BITMAP_PRUNED: &str = "serve.probe.bitmap_pruned";
/// Candidates that reached exact verification (counter).
pub const SERVE_PROBE_VERIFIED: &str = "serve.probe.verified";
/// Verified candidates at or above the probe threshold (counter).
pub const SERVE_PROBE_HITS: &str = "serve.probe.hits";
/// End-to-end probe latency in microseconds (histogram) — p50/p99 come
/// from [`LogHistogram::quantile`](ssj_observe::LogHistogram::quantile).
pub const SERVE_PROBE_LATENCY_US: &str = "serve.probe.latency_us";

/// Records accepted into the delta pool (counter).
pub const SERVE_INSERTS: &str = "serve.insert.records";
/// Tokens ingested through delta inserts (counter).
pub const SERVE_INSERT_TOKENS: &str = "serve.insert.tokens";
/// Delta→main compactions executed (counter).
pub const SERVE_COMPACTIONS: &str = "serve.compact.runs";
/// Postings streamed through the loser-tree merge during compactions
/// (counter).
pub const SERVE_COMPACT_POSTINGS: &str = "serve.compact.postings";
/// Records currently servable: main arena + delta pool (gauge).
pub const SERVE_RECORDS: &str = "serve.records";
/// Records currently in the (uncompacted) delta pool (gauge).
pub const SERVE_DELTA_RECORDS: &str = "serve.delta.records";
/// Postings resident in the sealed main index (gauge).
pub const SERVE_MAIN_POSTINGS: &str = "serve.main.postings";

#[cfg(test)]
mod tests {
    use super::*;

    /// The builders must spell the keys exactly as
    /// `ssj_mapreduce::telemetry::record_job_telemetry` emits them (its
    /// own test pins the literal strings from the emitting side).
    #[test]
    fn cogroup_key_builders_match_telemetry_namespace() {
        assert_eq!(
            mr_stage_cogroup_key("rsjoin-join"),
            "mr.stage.rsjoin-join.cogroup"
        );
        assert_eq!(
            mr_stage_cogroup_bytes_saved_key("rsjoin-join"),
            "mr.stage.rsjoin-join.cogroup.shuffle_bytes_saved"
        );
    }
}
