//! **FS-Join** — duplicate-free distributed set similarity join
//! (reproduction of Rong et al., "Fast and Scalable Distributed Set
//! Similarity Joins for Big Data Analytics", ICDE 2017).
//!
//! FS-Join finds all record pairs whose set similarity (Jaccard, Dice or
//! Cosine) is at least a threshold θ, running as a pipeline of MapReduce
//! jobs on [`ssj_mapreduce`]:
//!
//! 1. **Ordering** — tokens are ranked by ascending frequency (done at
//!    encoding time by [`ssj_text`]; the driver reuses the collection's
//!    frequency table).
//! 2. **Filtering** — each record's sorted token vector is split into
//!    disjoint *segments* at a set of pivot ranks ([`vertical`]); segments
//!    of the same vertical partition form a *fragment* that is shuffled —
//!    without duplicating any token — to one reduce task, which joins the
//!    fragment's segments with a pluggable kernel ([`fragment`]:
//!    loop / index / prefix) under four pruning filters ([`filters`]:
//!    StrL / SegL / SegI / SegD). Optional *horizontal* (length-based)
//!    partitioning ([`horizontal`]) further splits fragments into sections.
//! 3. **Verification** — per-fragment common-token counts are aggregated by
//!    record pair and the exact similarity is computed from counts alone
//!    (paper §V-B), never touching the original records.
//!
//! # Quickstart
//!
//! ```
//! use fsjoin::{FsJoinConfig, run_self_join};
//! use ssj_text::{encode, RawCorpus, Tokenizer};
//!
//! let corpus = RawCorpus::from_texts(
//!     &[
//!         "large scale set similarity join processing",
//!         "large scale set similarity join processing engine",
//!         "an unrelated sentence entirely",
//!     ],
//!     &Tokenizer::Words,
//! );
//! let collection = encode(&corpus);
//! let result = run_self_join(&collection, &FsJoinConfig::default().with_theta(0.7));
//! assert_eq!(result.pairs.len(), 1);
//! assert_eq!(result.pairs[0].ids(), (0, 1));
//! ```

pub mod config;
pub mod cost;
pub mod driver;
pub mod filters;
pub mod fragment;
pub mod horizontal;
pub mod keys;
pub mod pf;
pub mod pivots;
pub mod rsjoin;
pub mod segment;
pub mod vertical;

pub use config::{EmitPolicy, FilterSet, FsJoinConfig, JoinKernel};
pub use driver::{run_rs_join, run_self_join, FsJoinResult};
pub use filters::FilterStats;
pub use pf::{run_rs_join_pf, run_self_join_pf};
pub use pivots::PivotStrategy;
pub use rsjoin::run_rs_join_two_input;
pub use segment::Segment;
