//! Vertical pivot selection (paper §IV).
//!
//! Pivots are token *ranks* in the global ordering. `n` pivots split the
//! token domain into `n+1` intervals; every record's sorted token vector is
//! cut at the same ranks, so the segments of all records align into
//! fragments. Three strategies are studied by the paper (Figure 11):
//! Random, Even-Interval, and Even-TF — the last equalizes total token
//! *frequency* per fragment and is FS-Join's default because fragment sizes
//! (and hence reduce-task loads) become uniform.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Pivot-selection strategy (paper §IV "Pivots Selection Methods").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PivotStrategy {
    /// Uniformly random distinct ranks.
    Random,
    /// Equally spaced ranks (equal *distinct-token* count per fragment).
    EvenInterval,
    /// Ranks chosen so each fragment holds an equal share of total token
    /// frequency (equal *occurrence* count per fragment) — the default.
    EvenTf,
}

impl PivotStrategy {
    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            PivotStrategy::Random => "Random",
            PivotStrategy::EvenInterval => "Even-Interval",
            PivotStrategy::EvenTf => "Even-TF",
        }
    }

    /// All strategies in the paper's reporting order.
    pub fn all() -> [PivotStrategy; 3] {
        [
            PivotStrategy::Random,
            PivotStrategy::EvenInterval,
            PivotStrategy::EvenTf,
        ]
    }
}

/// Select up to `n_pivots` strictly ascending pivot ranks for a token
/// domain with the given rank-indexed frequency table. Fewer pivots may be
/// returned when the domain is too small to support `n_pivots` distinct
/// cuts. A pivot rank `b` means "rank `b` starts a new segment".
///
/// Rank 0 is never a pivot (it would create a guaranteed-empty first
/// fragment).
pub fn select_pivots(
    freqs: &[u64],
    n_pivots: usize,
    strategy: PivotStrategy,
    seed: u64,
) -> Vec<u32> {
    let universe = freqs.len();
    if universe <= 1 || n_pivots == 0 {
        return Vec::new();
    }
    let n = n_pivots.min(universe - 1);
    let mut pivots = match strategy {
        PivotStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut candidates: Vec<u32> = (1..universe as u32).collect();
            candidates.shuffle(&mut rng);
            candidates.truncate(n);
            candidates
        }
        PivotStrategy::EvenInterval => (1..=n)
            .map(|k| (k * universe / (n + 1)).max(1) as u32)
            .collect(),
        PivotStrategy::EvenTf => {
            let total: u64 = freqs.iter().sum();
            if total == 0 {
                return select_pivots(freqs, n_pivots, PivotStrategy::EvenInterval, seed);
            }
            let mut pivots = Vec::with_capacity(n);
            let mut cum = 0u64;
            let mut k = 1usize;
            for (rank, &f) in freqs.iter().enumerate() {
                if k > n {
                    break;
                }
                cum += f;
                // Place the k-th cut after the rank where the cumulative
                // frequency first reaches k/(n+1) of the total.
                if cum as u128 * (n as u128 + 1) >= total as u128 * k as u128 {
                    pivots.push((rank + 1) as u32);
                    k += 1;
                }
            }
            pivots.retain(|&b| (b as usize) < universe);
            pivots
        }
    };
    pivots.sort_unstable();
    pivots.dedup();
    pivots
}

/// Sum of token frequencies in each fragment induced by `pivots` — the
/// quantity Even-TF equalizes (used by tests and load-balance reports).
pub fn fragment_loads(freqs: &[u64], pivots: &[u32]) -> Vec<u64> {
    let mut loads = vec![0u64; pivots.len() + 1];
    let mut seg = 0usize;
    for (rank, &f) in freqs.iter().enumerate() {
        while seg < pivots.len() && rank as u32 >= pivots[seg] {
            seg += 1;
        }
        loads[seg] += f;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_common::stats::Summary;

    /// A Zipf-like ascending frequency table (the encoder guarantees
    /// ascending order).
    fn zipf_freqs(n: usize) -> Vec<u64> {
        let mut f: Vec<u64> = (0..n).map(|i| 1 + (1000 / (n - i)) as u64).collect();
        f.sort_unstable();
        f
    }

    #[test]
    fn pivots_are_ascending_distinct_nonzero() {
        let freqs = zipf_freqs(500);
        for s in PivotStrategy::all() {
            let p = select_pivots(&freqs, 9, s, 7);
            assert!(!p.is_empty(), "{s:?}");
            assert!(p.windows(2).all(|w| w[0] < w[1]), "{s:?}");
            assert!(p[0] >= 1, "{s:?}");
            assert!((*p.last().unwrap() as usize) < freqs.len(), "{s:?}");
            assert!(p.len() <= 9);
        }
    }

    #[test]
    fn even_interval_is_equally_spaced() {
        let freqs = zipf_freqs(100);
        let p = select_pivots(&freqs, 4, PivotStrategy::EvenInterval, 0);
        assert_eq!(p, vec![20, 40, 60, 80]);
    }

    #[test]
    fn even_tf_balances_loads_better_than_even_interval() {
        // Strongly skewed: last tokens dominate the mass.
        let freqs = zipf_freqs(2000);
        let tf = select_pivots(&freqs, 9, PivotStrategy::EvenTf, 0);
        let iv = select_pivots(&freqs, 9, PivotStrategy::EvenInterval, 0);
        let skew = |p: &[u32]| {
            Summary::of_counts(fragment_loads(&freqs, p).iter().map(|&l| l as usize)).skew
        };
        assert!(
            skew(&tf) < skew(&iv),
            "Even-TF skew {} should beat Even-Interval {}",
            skew(&tf),
            skew(&iv)
        );
    }

    #[test]
    fn random_is_seed_deterministic() {
        let freqs = zipf_freqs(300);
        let a = select_pivots(&freqs, 5, PivotStrategy::Random, 42);
        let b = select_pivots(&freqs, 5, PivotStrategy::Random, 42);
        let c = select_pivots(&freqs, 5, PivotStrategy::Random, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_domains() {
        assert!(select_pivots(&[], 3, PivotStrategy::EvenTf, 0).is_empty());
        assert!(select_pivots(&[5], 3, PivotStrategy::EvenTf, 0).is_empty());
        assert!(select_pivots(&[1, 2, 3], 0, PivotStrategy::EvenTf, 0).is_empty());
        // More pivots than cuttable positions: clamped.
        let p = select_pivots(&[1, 1, 1], 10, PivotStrategy::EvenInterval, 0);
        assert!(p.len() <= 2);
    }

    #[test]
    fn all_zero_frequencies_fall_back() {
        let p = select_pivots(&[0, 0, 0, 0], 1, PivotStrategy::EvenTf, 0);
        assert_eq!(p, vec![2]);
    }

    #[test]
    fn fragment_loads_partition_total() {
        let freqs = zipf_freqs(100);
        let p = select_pivots(&freqs, 3, PivotStrategy::EvenTf, 0);
        let loads = fragment_loads(&freqs, &p);
        assert_eq!(loads.len(), p.len() + 1);
        assert_eq!(loads.iter().sum::<u64>(), freqs.iter().sum::<u64>());
    }
}
