//! FS-Join-PF — a prefix-discovery variant of FS-Join (our extension).
//!
//! DESIGN.md §4 item 5b establishes that FS-Join's exact count-based
//! verification forces the filter job to emit a record for every co-token
//! pair-fragment no lemma can disprove, which on Zipf-distributed corpora
//! is Ω(#co-token record pairs). This variant repairs the intermediate
//! volume while keeping FS-Join's partitioning and exactness, at the cost
//! of the paper's "verification never touches the original records"
//! property:
//!
//! 1. **Filtering** (same map phase as FS-Join: vertical + horizontal
//!    partitioning): each reduce task discovers candidate pairs only
//!    through tokens in both records' **global prefixes** (the classic
//!    prefix-filter theorem: a θ-similar pair shares a token within its
//!    first `|s| − minoverlap + 1` tokens, and since records are sorted by
//!    the one global ordering, that shared token falls in one fragment
//!    where both segments expose it). Global-prefix tokens are the rarest,
//!    so posting lists are short — candidate volume matches classic
//!    prefix-filter joins instead of growing with frequent-token
//!    co-occurrence.
//! 2. **Dedup** of candidate pairs (a pair may be discovered in several
//!    fragments).
//! 3. **Cached verification**: exact similarity is computed from the
//!    original records, replicated read-only to every task (Hadoop
//!    distributed-cache style, as MassJoin's Light variant does).
//!
//! Completeness: for a θ-similar pair, the shared global-prefix token `t*`
//! lies in exactly one fragment `v*`; both records' segments in `v*`
//! contain `t*` inside their global-prefix portions (a record's global
//! prefix is its first `π` tokens, so segment tokens are prefix tokens iff
//! `head < π`), and the pair co-occurs joinably in exactly one horizontal
//! partition — so it is discovered. Verification is exact, so precision is
//! exact too. Property-tested against the oracle alongside the main
//! driver.

use crate::config::FsJoinConfig;
use crate::driver::{FsJoinResult, PartitionMapper};
use crate::filters::FilterStats;
use crate::fragment::PairScope;
use crate::horizontal::{num_h_partitions, select_h_pivots, JoinRule};
use crate::pivots::select_pivots;
use crate::segment::Segment;
use ssj_common::FxHashMap;
use ssj_mapreduce::{
    Dataset, DirectPartitioner, Emitter, GroupValues, HashPartitioner, IdentityCombiner, Mapper,
    Plan, PlanRunner, StreamingReducer,
};
use ssj_observe::{span, MetricsRegistry};
use ssj_similarity::intersect::intersect_count_adaptive;
use ssj_similarity::{Measure, SimilarPair};
use ssj_text::{Collection, PooledRecord, TokenPool};
use std::sync::Arc;

/// Number of leading tokens of a segment that belong to its record's
/// global prefix: the record's prefix is its first `π` tokens, the segment
/// starts at offset `head`.
#[inline]
fn global_prefix_in_segment(measure: Measure, theta: f64, seg: &Segment) -> usize {
    let pi = measure.probe_prefix_len(theta, seg.len as usize);
    pi.saturating_sub(seg.head as usize).min(seg.seg_len())
}

/// Discovery reducer: index global-prefix tokens, emit candidate pairs.
/// Streams each cell's segments into a scratch buffer reused across cells
/// (segments are `Copy` spans; the engine allocates nothing per key).
/// Pruning counters accumulate locally and flow into the run's
/// [`MetricsRegistry`] under the canonical [`crate::keys`] names at task
/// cleanup, exactly like the main driver's fragment reducer.
struct PrefixDiscoveryReducer {
    pool: Arc<TokenPool>,
    measure: Measure,
    theta: f64,
    num_fragments: usize,
    h_pivots: Arc<Vec<u32>>,
    scope: PairScope,
    scratch: Vec<Segment>,
    local_stats: FilterStats,
    registry: Arc<MetricsRegistry>,
}

impl PrefixDiscoveryReducer {
    fn discover(
        &mut self,
        probe: &Segment,
        index: &FxHashMap<u32, Vec<u32>>,
        pool: &[&Segment],
        out: &mut Emitter<(u32, u32), (u32, u32)>,
    ) {
        let gp = global_prefix_in_segment(self.measure, self.theta, probe);
        let mut seen: Vec<u32> = Vec::new();
        for &t in &probe.tokens(&self.pool)[..gp] {
            if let Some(slots) = index.get(&t) {
                seen.extend_from_slice(slots);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        for slot in seen {
            let other = pool[slot as usize];
            let ok = match self.scope {
                PairScope::SelfJoin => other.rid != probe.rid,
                PairScope::CrossSides => other.side != probe.side,
            };
            if !ok {
                continue;
            }
            self.local_stats.pairs_considered += 1;
            // Cheap length filter before shipping the candidate.
            if !crate::filters::strl_pass(self.measure, self.theta, probe.len, other.len) {
                self.local_stats.strl_pruned += 1;
                continue;
            }
            self.local_stats.emitted += 1;
            let (a, b) = if probe.rid < other.rid {
                (probe, other)
            } else {
                (other, probe)
            };
            out.emit((a.rid, b.rid), (a.len, b.len));
        }
    }
}

impl StreamingReducer for PrefixDiscoveryReducer {
    type InKey = u32;
    type InValue = Segment;
    type OutKey = (u32, u32);
    type OutValue = (u32, u32);

    fn reduce_group(
        &mut self,
        cell: &u32,
        values: &mut GroupValues<'_, '_, u32, Segment>,
        out: &mut Emitter<(u32, u32), (u32, u32)>,
    ) {
        // Take the scratch buffer out of `self` so `discover` (which
        // borrows `&self`) can run while the segments are in use; the
        // buffer goes back at the end, keeping its capacity for the next
        // cell.
        let mut segments = std::mem::take(&mut self.scratch);
        segments.clear();
        segments.extend(values.copied());
        let h = *cell as usize / self.num_fragments;
        let rule = JoinRule::for_partition(h, &self.h_pivots);
        let before_pairs = self.local_stats.pairs_considered;
        let before_emitted = self.local_stats.emitted;
        match rule {
            JoinRule::All => {
                // Scan order: index each segment's global-prefix tokens
                // after probing, so each unordered pair is seen once.
                let pool: Vec<&Segment> = segments.iter().collect();
                let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                for (slot, seg) in pool.iter().enumerate() {
                    self.discover(seg, &index, &pool, out);
                    let gp = global_prefix_in_segment(self.measure, self.theta, seg);
                    for &t in &seg.tokens(&self.pool)[..gp] {
                        index.entry(t).or_default().push(slot as u32);
                    }
                }
            }
            JoinRule::Boundary { lo, pivot } => {
                // Bipartite: index the short band, probe with the longs.
                let short: Vec<&Segment> = segments
                    .iter()
                    .filter(|s| s.len >= lo && s.len < pivot)
                    .collect();
                let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                for (slot, seg) in short.iter().enumerate() {
                    let gp = global_prefix_in_segment(self.measure, self.theta, seg);
                    for &t in &seg.tokens(&self.pool)[..gp] {
                        index.entry(t).or_default().push(slot as u32);
                    }
                }
                for seg in segments.iter().filter(|s| s.len >= pivot) {
                    self.discover(seg, &index, &short, out);
                }
            }
        }
        // Per-cell discovery load, same histograms the exact driver keeps.
        self.registry.histogram_record(
            crate::keys::FRAGMENT_PAIRS,
            self.local_stats.pairs_considered - before_pairs,
        );
        self.registry.histogram_record(
            crate::keys::FRAGMENT_CANDIDATES,
            self.local_stats.emitted - before_emitted,
        );
        self.scratch = segments;
    }

    fn cleanup(&mut self, _out: &mut Emitter<(u32, u32), (u32, u32)>) {
        self.local_stats.record_to(&self.registry);
        self.local_stats = FilterStats::default();
    }
}

/// Candidate-dedup: keep one record per pair.
struct CandidateDedup;

impl Mapper for CandidateDedup {
    type InKey = (u32, u32);
    type InValue = (u32, u32);
    type OutKey = (u32, u32);
    type OutValue = (u32, u32);

    fn map(
        &mut self,
        pair: (u32, u32),
        lens: (u32, u32),
        out: &mut Emitter<(u32, u32), (u32, u32)>,
    ) {
        out.emit(pair, lens);
    }
}

struct KeepFirst;

impl StreamingReducer for KeepFirst {
    type InKey = (u32, u32);
    type InValue = (u32, u32);
    type OutKey = (u32, u32);
    type OutValue = (u32, u32);

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        lens: &mut GroupValues<'_, '_, (u32, u32), (u32, u32)>,
        out: &mut Emitter<(u32, u32), (u32, u32)>,
    ) {
        // Streaming take-first: duplicates beyond the head are skipped by
        // the engine without ever being buffered.
        out.emit(*pair, *lens.next().expect("group has at least one value"));
    }
}

/// Cached verification: exact similarity straight from the shared token
/// pool (the arena *is* the replicated record cache — no second copy of
/// the corpus is materialized for this job). With `bitmap` on, the pool's
/// record bitmaps are consulted first: a pair whose overlap upper bound
/// cannot reach the required α provably fails `measure.passes` and skips
/// the exact intersection — lossless, identical emissions either way.
/// Intersection-kernel work is counted locally and flushed to the run
/// registry at task cleanup under the canonical [`crate::keys`] names.
struct CachedVerify {
    pool: Arc<TokenPool>,
    measure: Measure,
    theta: f64,
    bitmap: bool,
    intersections: u64,
    intersect_tokens: u64,
    bitmap_checks: u64,
    bitmap_pruned: u64,
    registry: Arc<MetricsRegistry>,
}

impl Mapper for CachedVerify {
    type InKey = (u32, u32);
    type InValue = (u32, u32);
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn map(&mut self, (a, b): (u32, u32), _lens: (u32, u32), out: &mut Emitter<(u32, u32), f64>) {
        let s = self.pool.tokens_of(a);
        let t = self.pool.tokens_of(b);
        if self.bitmap {
            let alpha = self.measure.min_overlap(self.theta, s.len(), t.len());
            // Saturation guard: the bound can never fall below
            // `(|s| + |t| - width) / 2`; skip the bitmap reads when even
            // that floor reaches α (long records saturate the bitmap).
            let floor_ub = (s.len() + t.len()).saturating_sub(self.pool.bitmap_bits()) / 2;
            if floor_ub < alpha {
                self.bitmap_checks += 1;
                let ub = ssj_similarity::bitmap::overlap_upper_bound(
                    self.pool.bitmap_of(a),
                    self.pool.bitmap_of(b),
                    s.len(),
                    t.len(),
                );
                if ub < alpha {
                    // measure.passes(c, …) with c ≤ ub < α must be false.
                    self.bitmap_pruned += 1;
                    return;
                }
            }
        }
        self.intersections += 1;
        self.intersect_tokens += (s.len() + t.len()) as u64;
        let c = intersect_count_adaptive(s, t);
        if self.measure.passes(c, s.len(), t.len(), self.theta) {
            out.emit((a, b), self.measure.score(c, s.len(), t.len()));
        }
    }

    fn cleanup(&mut self, _out: &mut Emitter<(u32, u32), f64>) {
        self.registry
            .counter_add(crate::keys::KERNEL_INTERSECTIONS, self.intersections);
        self.registry
            .counter_add(crate::keys::KERNEL_INTERSECT_TOKENS, self.intersect_tokens);
        self.registry
            .counter_add(crate::keys::KERNEL_BITMAP_CHECKS, self.bitmap_checks);
        self.registry
            .counter_add(crate::keys::KERNEL_BITMAP_PRUNED, self.bitmap_pruned);
        self.intersections = 0;
        self.intersect_tokens = 0;
        self.bitmap_checks = 0;
        self.bitmap_pruned = 0;
    }
}

struct PassThrough;

impl StreamingReducer for PassThrough {
    type InKey = (u32, u32);
    type InValue = f64;
    type OutKey = (u32, u32);
    type OutValue = f64;

    fn reduce_group(
        &mut self,
        pair: &(u32, u32),
        sims: &mut GroupValues<'_, '_, (u32, u32), f64>,
        out: &mut Emitter<(u32, u32), f64>,
    ) {
        out.emit(*pair, *sims.next().expect("group has at least one value"));
    }
}

/// Self-join with the prefix-discovery variant. Uses the same
/// configuration as [`crate::run_self_join`] (kernel, filters and
/// emit-policy fields are ignored — discovery is always global-prefix).
pub fn run_self_join_pf(collection: &Collection, cfg: &FsJoinConfig) -> FsJoinResult {
    run_pf(
        collection.share_pool(),
        collection.len(),
        0,
        &collection.token_freqs,
        cfg,
        PairScope::SelfJoin,
    )
}

/// R×S join with the prefix-discovery variant (same conventions as
/// [`crate::run_rs_join`]: shared rank space, S-side ids offset).
pub fn run_rs_join_pf(r: &Collection, s: &Collection, cfg: &FsJoinConfig) -> FsJoinResult {
    assert_eq!(
        r.token_freqs, s.token_freqs,
        "R and S must be encoded together (shared global ordering)"
    );
    let pool = Arc::new(TokenPool::concat(r.pool(), s.pool()));
    run_pf(
        pool,
        r.len(),
        s.len(),
        &r.token_freqs,
        cfg,
        PairScope::CrossSides,
    )
}

fn run_pf(
    pool: Arc<TokenPool>,
    num_r: usize,
    num_s: usize,
    freqs: &[u64],
    cfg: &FsJoinConfig,
    scope: PairScope,
) -> FsJoinResult {
    cfg.validate();
    assert_eq!(pool.len(), num_r + num_s, "pool must hold exactly R ++ S");
    let run_span = span("fsjoin.stage", "run-pf")
        .field("records", num_r + num_s)
        .field("theta", cfg.theta);

    let ordering_span = span("fsjoin.stage", "ordering");
    let pivots = Arc::new(select_pivots(
        freqs,
        cfg.num_fragments.saturating_sub(1),
        cfg.pivot_strategy,
        cfg.seed,
    ));
    let num_fragments = pivots.len() + 1;

    let h_pivots = Arc::new(select_h_pivots(pool.lengths(), cfg.horizontal_pivots));
    let num_cells = num_h_partitions(&h_pivots) * num_fragments;
    drop(
        ordering_span
            .field("fragments", num_fragments)
            .field("h_partitions", num_h_partitions(&h_pivots)),
    );

    let mut input_records: Vec<(u32, (u8, PooledRecord))> = Vec::with_capacity(num_r + num_s);
    for rid in 0..(num_r + num_s) as u32 {
        let side = u8::from(rid as usize >= num_r);
        input_records.push((
            rid,
            (
                side,
                PooledRecord {
                    id: rid,
                    span: pool.span_of(rid),
                },
            ),
        ));
    }
    let input = Dataset::from_records(input_records, cfg.map_tasks);

    // One declarative three-stage plan: discover → dedup → verify. Under
    // the default pipelined mode each discovered candidate partition flows
    // into dedup, and each deduped partition into cached verification, as
    // soon as it is sealed — the three jobs' phases overlap and the
    // candidate intermediates are dropped partition by partition.
    // Per-run registry, same contract as the main driver: discovery and
    // verification tasks record canonical `fsjoin.*` counters here; the
    // aggregate is read back below and merged into the process-global
    // registry when one is installed.
    let run_registry = Arc::new(MetricsRegistry::new());
    let discover_span = span("fsjoin.stage", "discover-job").field("cells", num_cells);
    let dedup_span = span("fsjoin.stage", "dedup-job");
    let verify_span = span("fsjoin.stage", "verify-job");
    let reduce_tasks = cfg.reduce_tasks.min(num_cells).max(1);

    let mut plan = Plan::new("fsjoin-pf").with_workers(cfg.workers);
    // One shared arena shipped over a broadcast edge, consumed by both the
    // discover stage and the verification stage (where it doubles as the
    // record cache); the runner keeps it alive until verify finishes.
    let pool_bcast = plan.broadcast(Arc::clone(&pool));
    let candidates_h = plan.add_full_broadcast(
        "fsjoin-pf-discover",
        input,
        pool_bcast,
        reduce_tasks,
        {
            let pivots = Arc::clone(&pivots);
            let h_pivots = Arc::clone(&h_pivots);
            let (measure, theta) = (cfg.measure, cfg.theta);
            move |_, pool: &Arc<TokenPool>| PartitionMapper {
                pool: Arc::clone(pool),
                pivots: Arc::clone(&pivots),
                h_pivots: Arc::clone(&h_pivots),
                num_fragments,
                measure,
                theta,
            }
        },
        {
            let h_pivots = Arc::clone(&h_pivots);
            let registry = Arc::clone(&run_registry);
            let (measure, theta) = (cfg.measure, cfg.theta);
            move |_, pool: &Arc<TokenPool>| PrefixDiscoveryReducer {
                pool: Arc::clone(pool),
                measure,
                theta,
                num_fragments,
                h_pivots: Arc::clone(&h_pivots),
                scope,
                scratch: Vec::new(),
                local_stats: FilterStats::default(),
                registry: Arc::clone(&registry),
            }
        },
        DirectPartitioner::new(|cell: &u32| *cell as usize),
        None::<IdentityCombiner>,
    );
    let unique_h = plan.add(
        "fsjoin-pf-dedup",
        candidates_h,
        cfg.reduce_tasks,
        |_| CandidateDedup,
        |_| KeepFirst,
    );
    let verified_h = plan.add_full_broadcast(
        "fsjoin-pf-verify",
        unique_h,
        pool_bcast,
        cfg.reduce_tasks,
        {
            let registry = Arc::clone(&run_registry);
            let (measure, theta) = (cfg.measure, cfg.theta);
            let bitmap = cfg.bitmap_prune;
            move |_, pool: &Arc<TokenPool>| CachedVerify {
                pool: Arc::clone(pool),
                measure,
                theta,
                bitmap,
                intersections: 0,
                intersect_tokens: 0,
                bitmap_checks: 0,
                bitmap_pruned: 0,
                registry: Arc::clone(&registry),
            }
        },
        |_, _: &Arc<TokenPool>| PassThrough,
        HashPartitioner,
        None::<IdentityCombiner>,
    );

    let mut outcome = PlanRunner::new(cfg.plan_mode).run(plan);
    let verified = outcome.take_output(verified_h);
    let peak_live_bytes = outcome.peak_live_bytes;
    let deps = outcome.deps().to_vec();
    let chain = outcome.metrics;
    let raw_candidates = chain.jobs[0].reduce_output_records();
    drop(discover_span.field("candidates", raw_candidates));
    drop(dedup_span.field("unique", chain.jobs[1].reduce_output_records()));

    let mut pairs: Vec<SimilarPair> = verified
        .into_records()
        .map(|((a, b), sim)| SimilarPair::new(a, b, sim))
        .collect();
    pairs.sort_unstable_by_key(|x| x.ids());
    drop(verify_span.field("pairs", pairs.len()));

    let filter_stats = FilterStats::from_registry(&run_registry);
    run_registry.gauge_set(crate::keys::CANDIDATES, raw_candidates as f64);
    run_registry.gauge_set(crate::keys::PAIRS, pairs.len() as f64);
    if let Some(global) = ssj_observe::global_registry() {
        global.merge_from(&run_registry);
    }
    drop(run_span.field("pairs", pairs.len()));
    FsJoinResult {
        pairs,
        chain,
        filter_stats,
        candidates: raw_candidates,
        pivots: Arc::try_unwrap(pivots).unwrap_or_else(|a| (*a).clone()),
        h_pivots: Arc::try_unwrap(h_pivots).unwrap_or_else(|a| (*a).clone()),
        peak_live_bytes,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_self_join;
    use ssj_similarity::naive::naive_self_join;
    use ssj_similarity::pair::compare_results;
    use ssj_text::encode;
    use ssj_text::{CorpusProfile, RawCorpus, Tokenizer};

    fn wiki(records: usize) -> Collection {
        encode(
            &CorpusProfile::WikiLike
                .config()
                .with_records(records)
                .generate(),
        )
    }

    #[test]
    fn matches_oracle_across_thetas_and_measures() {
        let c = wiki(150);
        for measure in Measure::all() {
            for &theta in &[0.6, 0.75, 0.9] {
                let want = naive_self_join(&c.views(), measure, theta);
                let got = run_self_join_pf(
                    &c,
                    &FsJoinConfig::default()
                        .with_theta(theta)
                        .with_measure(measure),
                );
                compare_results(&got.pairs, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("{measure:?} θ={theta}: {e}"));
            }
        }
    }

    #[test]
    fn matches_oracle_across_partitioning() {
        let c = wiki(120);
        let want = naive_self_join(&c.views(), Measure::Jaccard, 0.75);
        for fragments in [1usize, 4, 30] {
            for h in [0usize, 3, 20] {
                let cfg = FsJoinConfig::default()
                    .with_theta(0.75)
                    .with_fragments(fragments)
                    .with_horizontal(h);
                let got = run_self_join_pf(&c, &cfg);
                compare_results(&got.pairs, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("fragments={fragments} h={h}: {e}"));
            }
        }
    }

    #[test]
    fn candidate_volume_beats_exact_fsjoin_by_far() {
        // The point of the variant: on Zipf data, prefix discovery ships
        // orders of magnitude fewer intermediates than exact counting.
        let c = wiki(800);
        let cfg = FsJoinConfig::default().with_theta(0.8);
        let exact = run_self_join(&c, &cfg);
        let pf = run_self_join_pf(&c, &cfg);
        assert_eq!(
            exact.pairs.len(),
            pf.pairs.len(),
            "identical results required"
        );
        assert!(
            (pf.candidates as f64) < (exact.candidates as f64) / 5.0,
            "pf candidates {} should be far below exact {}",
            pf.candidates,
            exact.candidates
        );
        assert!(pf.chain.total_shuffle_bytes() < exact.chain.total_shuffle_bytes());
    }

    #[test]
    fn pf_reports_real_filter_stats_and_plan_shape() {
        let c = wiki(120);
        let res = run_self_join_pf(&c, &FsJoinConfig::default().with_theta(0.8));
        // Declared three-stage chain: discover ← input, dedup ← discover,
        // verify ← dedup.
        assert_eq!(res.deps, vec![vec![], vec![0], vec![1]]);
        // Discovery pruning counters and verification kernel counters both
        // flow out through the canonical registry names.
        assert!(res.filter_stats.pairs_considered > 0);
        assert!(res.filter_stats.emitted > 0);
        assert!(res.filter_stats.emitted <= res.filter_stats.pairs_considered);
        assert!(res.filter_stats.intersections > 0);
        assert!(res.filter_stats.intersect_tokens > res.filter_stats.intersections);
    }

    #[test]
    fn rs_join_pf_matches_oracle() {
        let r_corpus = RawCorpus::from_texts(
            &["alpha beta gamma delta", "one two three four"],
            &Tokenizer::Words,
        );
        let s_corpus = RawCorpus::from_texts(
            &["alpha beta gamma delta epsilon", "five six seven eight"],
            &Tokenizer::Words,
        );
        let (r, s) = ssj_text::encode::encode_two(&r_corpus, &s_corpus);
        let got = run_rs_join_pf(&r, &s, &FsJoinConfig::default().with_theta(0.7));
        assert_eq!(got.pairs.len(), 1);
        assert_eq!(got.pairs[0].ids(), (0, r.len() as u32));
    }

    #[test]
    fn global_prefix_in_segment_respects_head() {
        let m = Measure::Jaccard;
        // Record of length 10 at θ=0.8: global prefix π = 3. The prefix
        // arithmetic only reads seg metadata plus the span length, so one
        // throwaway pool per segment suffices.
        let seg = |head: u32, toks: usize| {
            let mut pool = TokenPool::new();
            let span = pool.push(&(0..toks as u32).collect::<Vec<_>>());
            Segment {
                rid: 0,
                side: 0,
                len: 10,
                head,
                tail: 10 - head - toks as u32,
                span,
            }
        };
        assert_eq!(global_prefix_in_segment(m, 0.8, &seg(0, 5)), 3);
        assert_eq!(global_prefix_in_segment(m, 0.8, &seg(2, 5)), 1);
        assert_eq!(global_prefix_in_segment(m, 0.8, &seg(3, 5)), 0);
        assert_eq!(global_prefix_in_segment(m, 0.8, &seg(0, 2)), 2);
    }
}
