//! FS-Join configuration.

pub use crate::filters::{EmitPolicy, FilterSet};
pub use crate::fragment::JoinKernel;
use crate::pivots::PivotStrategy;
use ssj_mapreduce::PlanMode;
use ssj_similarity::Measure;

/// Full configuration of an FS-Join run. Build with the `with_*` methods:
///
/// ```
/// use fsjoin::{FsJoinConfig, JoinKernel, PivotStrategy};
/// use ssj_similarity::Measure;
///
/// let cfg = FsJoinConfig::default()
///     .with_theta(0.9)
///     .with_measure(Measure::Cosine)
///     .with_fragments(20)
///     .with_pivot_strategy(PivotStrategy::EvenTf)
///     .with_kernel(JoinKernel::Prefix)
///     .with_horizontal(6);
/// assert_eq!(cfg.theta, 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FsJoinConfig {
    /// Similarity measure (default Jaccard, as in all paper experiments).
    pub measure: Measure,
    /// Similarity threshold θ ∈ (0, 1].
    pub theta: f64,
    /// Number of vertical fragments (`pivots + 1`; paper's experiments use
    /// 30; scaled default 16).
    pub num_fragments: usize,
    /// Vertical pivot selection strategy (default Even-TF, §IV).
    pub pivot_strategy: PivotStrategy,
    /// Fragment join kernel (default Prefix, §V-A).
    pub kernel: JoinKernel,
    /// Pruning filters (default all, §V-A).
    pub filters: FilterSet,
    /// Candidate emission policy (default [`EmitPolicy::Exact`]; the
    /// alternative reproduces the paper's Table IV magnitudes at the cost
    /// of exactness — see its docs).
    pub emit_policy: EmitPolicy,
    /// Number of horizontal length pivots `t` (0 disables horizontal
    /// partitioning — the paper's FS-Join-V variant).
    pub horizontal_pivots: usize,
    /// Map tasks for the filtering job.
    pub map_tasks: usize,
    /// Reduce tasks per job (the paper uses 3 × node count).
    pub reduce_tasks: usize,
    /// Host worker threads (affects wall-clock only, never results).
    pub workers: usize,
    /// How the execution plan sequences the run's jobs (default
    /// [`PlanMode::Pipelined`]). Affects wall-clock and peak intermediate
    /// memory only — results and logical metrics are mode-invariant.
    pub plan_mode: PlanMode,
    /// Consult the pool's hashed record bitmaps before every exact
    /// intersection (default true; DESIGN.md §12). Lossless: pruning on a
    /// sound upper bound never changes results, candidates, or filter
    /// verdicts — only `fsjoin.kernel.intersections` and wall time. The
    /// `determinism` binary's prune-on/off CI gate pins this invariance.
    pub bitmap_prune: bool,
    /// Run [`crate::run_rs_join_two_input`]'s join stage as a co-group
    /// stage over the sealed co-partitioned prefix partitions (default
    /// true; DESIGN.md §13) instead of the identity-rekey fan-in stage
    /// that re-shuffles every prefix record. Results and pair digests are
    /// identical on both paths — the flag exists for the CI equivalence
    /// gate and A/B shuffle-volume measurements.
    pub rs_cogroup: bool,
    /// Seed for the Random pivot strategy.
    pub seed: u64,
}

impl Default for FsJoinConfig {
    fn default() -> Self {
        FsJoinConfig {
            measure: Measure::Jaccard,
            theta: 0.8,
            num_fragments: 16,
            pivot_strategy: PivotStrategy::EvenTf,
            kernel: JoinKernel::Prefix,
            filters: FilterSet::ALL,
            emit_policy: EmitPolicy::Exact,
            horizontal_pivots: 4,
            map_tasks: 8,
            reduce_tasks: 12,
            workers: ssj_mapreduce::executor::default_workers(),
            plan_mode: PlanMode::default(),
            bitmap_prune: true,
            rs_cogroup: true,
            seed: 42,
        }
    }
}

impl FsJoinConfig {
    /// Set the threshold θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Set the similarity measure.
    pub fn with_measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Set the number of vertical fragments (pivots + 1).
    pub fn with_fragments(mut self, n: usize) -> Self {
        self.num_fragments = n;
        self
    }

    /// Set the vertical pivot strategy.
    pub fn with_pivot_strategy(mut self, s: PivotStrategy) -> Self {
        self.pivot_strategy = s;
        self
    }

    /// Set the fragment join kernel.
    pub fn with_kernel(mut self, k: JoinKernel) -> Self {
        self.kernel = k;
        self
    }

    /// Set the filter set.
    pub fn with_filters(mut self, f: FilterSet) -> Self {
        self.filters = f;
        self
    }

    /// Set the candidate emission policy.
    pub fn with_emit_policy(mut self, p: EmitPolicy) -> Self {
        self.emit_policy = p;
        self
    }

    /// Set the number of horizontal pivots (0 = FS-Join-V).
    pub fn with_horizontal(mut self, t: usize) -> Self {
        self.horizontal_pivots = t;
        self
    }

    /// Set map/reduce task counts.
    pub fn with_tasks(mut self, map: usize, reduce: usize) -> Self {
        self.map_tasks = map;
        self.reduce_tasks = reduce;
        self
    }

    /// Set host worker threads.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Set the plan sequencing mode (pipelined vs stage-barriered).
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// Enable or disable the bitmap prune in front of exact verification.
    /// Off is only useful for equivalence gates and A/B measurements —
    /// results are identical either way.
    pub fn with_bitmap_prune(mut self, on: bool) -> Self {
        self.bitmap_prune = on;
        self
    }

    /// Choose the two-input R×S join-stage execution path: co-group over
    /// sealed prefix partitions (true, default) or identity-rekey fan-in
    /// with a second shuffle (false). Pair digests are identical either
    /// way; only shuffle volume and wall time differ.
    pub fn with_rs_cogroup(mut self, on: bool) -> Self {
        self.rs_cogroup = on;
        self
    }

    /// Set the random-pivot seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics with a description of the invalid field.
    pub fn validate(&self) {
        assert!(
            self.theta > 0.0 && self.theta <= 1.0,
            "θ must be in (0,1], got {}",
            self.theta
        );
        assert!(self.num_fragments >= 1, "need at least one fragment");
        assert!(self.map_tasks >= 1 && self.reduce_tasks >= 1, "need tasks");
        assert!(self.workers >= 1, "need at least one worker");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = FsJoinConfig::default()
            .with_theta(0.75)
            .with_measure(Measure::Dice)
            .with_fragments(8)
            .with_pivot_strategy(PivotStrategy::Random)
            .with_kernel(JoinKernel::Loop)
            .with_filters(FilterSet::NONE)
            .with_horizontal(0)
            .with_tasks(2, 3)
            .with_workers(2)
            .with_seed(7);
        cfg.validate();
        assert_eq!(cfg.theta, 0.75);
        assert_eq!(cfg.measure, Measure::Dice);
        assert_eq!(cfg.num_fragments, 8);
        assert_eq!(cfg.kernel, JoinKernel::Loop);
        assert_eq!(cfg.horizontal_pivots, 0);
        assert_eq!((cfg.map_tasks, cfg.reduce_tasks), (2, 3));
    }

    #[test]
    #[should_panic(expected = "θ must be in")]
    fn invalid_theta_rejected() {
        FsJoinConfig::default().with_theta(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "at least one fragment")]
    fn zero_fragments_rejected() {
        FsJoinConfig::default().with_fragments(0).validate();
    }
}
