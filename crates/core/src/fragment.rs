//! Reduce-side fragment joins (paper §V-A "Join Algorithms").
//!
//! A reduce task receives every segment of one `(horizontal, vertical)`
//! cell and must produce, for each surviving record pair, the number of
//! common tokens *within this fragment*. Three kernels are compared by the
//! paper (Figure 12):
//!
//! * **Loop** — nested loop over segment pairs, merge-intersecting each;
//! * **Index** — a full inverted index over segment tokens; overlap counts
//!   accumulate while probing, so no per-pair intersection is needed;
//! * **Prefix** — index only each segment's *local prefix* (long enough to
//!   be complete for θ-similar pairs — DESIGN.md §4 item 2); candidates
//!   then verify with an exact merge intersection. FS-Join's default.
//!
//! All kernels apply the same [`FilterSet`] and produce identical output
//! (property-tested); they differ only in work. Segments carry spans into
//! the collection's shared [`TokenPool`], so every kernel takes the pool
//! and resolves token slices on the fly (a bounds-checked slice of the
//! flat arena — contiguous, cache-friendly, and allocation-free).

use crate::filters::{
    segd_pass, segd_pass_precheck, segi_pass, segl_pass, strl_pass, EmitPolicy, FilterSet,
    FilterStats, PairBounds,
};
use crate::horizontal::JoinRule;
use crate::segment::Segment;
use ssj_common::FxHashMap;
use ssj_similarity::bitmap::overlap_upper_bound;
use ssj_similarity::intersect::intersect_count_adaptive;
use ssj_similarity::Measure;
use ssj_text::TokenPool;

/// Which record pairs a join considers, besides the horizontal rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairScope {
    /// Self-join: all distinct record pairs.
    SelfJoin,
    /// R×S join: only pairs from different sides.
    CrossSides,
}

/// Join kernel choice (paper Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKernel {
    /// Nested-loop with merge intersections.
    Loop,
    /// Full inverted index with count accumulation.
    Index,
    /// Prefix-filtered inverted index (default).
    Prefix,
}

impl JoinKernel {
    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            JoinKernel::Loop => "Loop",
            JoinKernel::Index => "Index",
            JoinKernel::Prefix => "Prefix",
        }
    }

    /// All kernels in the paper's reporting order.
    pub fn all() -> [JoinKernel; 3] {
        [JoinKernel::Loop, JoinKernel::Index, JoinKernel::Prefix]
    }
}

/// One candidate record emitted by a fragment join: a record pair
/// (`rid_a < rid_b`) with its local overlap and both record lengths.
///
/// The field order (`rid_a`, `rid_b`, `common`, `len_a`, `len_b`) matches
/// the former `((u32, u32), (u32, u32, u32))` tuple encoding, so the
/// derived `Ord` sorts exactly as the tuples did and the MapReduce wire
/// format `((rid_a, rid_b), (common, len_a, len_b))` round-trips
/// losslessly through [`CandidateRecord::key`] / [`CandidateRecord::value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CandidateRecord {
    /// Smaller record id of the pair.
    pub rid_a: u32,
    /// Larger record id of the pair.
    pub rid_b: u32,
    /// Common tokens within this fragment.
    pub common: u32,
    /// Full length of record `rid_a`.
    pub len_a: u32,
    /// Full length of record `rid_b`.
    pub len_b: u32,
}

impl CandidateRecord {
    /// The shuffle key: the record-id pair.
    #[inline]
    pub fn key(&self) -> (u32, u32) {
        (self.rid_a, self.rid_b)
    }

    /// The shuffle value: `(common, len_a, len_b)`.
    #[inline]
    pub fn value(&self) -> (u32, u32, u32) {
        (self.common, self.len_a, self.len_b)
    }
}

/// Join all segments of one fragment cell. `segments` may contain at most
/// one segment per `(rid, side)` (guaranteed by vertical partitioning);
/// their spans resolve against `pool`.
///
/// Base cells (rule [`JoinRule::All`]) join all admissible pairs; boundary
/// cells join **bipartitely** — segments are split at the pivot into the
/// short band `[lo, pivot)` and the long group `[pivot, ∞)`, and only
/// cross-group pairs are considered, so the join never spends discovery
/// work on pairs the boundary rule would reject.
/// `bitmap` enables the lossless bitmap prune in front of every exact
/// segment intersection (see [`bitmap_settles`]); pass the driver's
/// `FsJoinConfig::bitmap_prune`. All counters pinned by the
/// `columnar_equivalence` goldens are bit-identical with it on or off —
/// only `bitmap_checks`/`bitmap_pruned`/`intersections`/`intersect_tokens`
/// move.
#[allow(clippy::too_many_arguments)]
pub fn join_fragment(
    pool: &TokenPool,
    segments: &[Segment],
    rule: JoinRule,
    scope: PairScope,
    measure: Measure,
    theta: f64,
    kernel: JoinKernel,
    filters: FilterSet,
    policy: EmitPolicy,
    bitmap: bool,
    stats: &mut FilterStats,
) -> Vec<CandidateRecord> {
    match rule {
        JoinRule::All => match kernel {
            JoinKernel::Loop => loop_join(
                pool, segments, scope, measure, theta, filters, policy, bitmap, stats,
            ),
            JoinKernel::Index => index_join(
                pool, segments, scope, measure, theta, filters, policy, stats,
            ),
            JoinKernel::Prefix => prefix_join(
                pool, segments, scope, measure, theta, filters, policy, bitmap, stats,
            ),
        },
        JoinRule::Boundary { lo, pivot } => {
            let mut short: Vec<&Segment> = Vec::new();
            let mut long: Vec<&Segment> = Vec::new();
            for s in segments {
                if s.len >= pivot {
                    long.push(s);
                } else if s.len >= lo {
                    short.push(s);
                }
                // Segments below `lo` can never satisfy the boundary rule.
            }
            bipartite_join(
                pool, &short, &long, scope, measure, theta, kernel, filters, policy, bitmap, stats,
            )
        }
    }
}

/// Pair admissibility within a group layout (scope only; the horizontal
/// rule is enforced structurally by the caller's grouping).
#[inline]
fn admissible(a: &Segment, b: &Segment, scope: PairScope) -> bool {
    match scope {
        PairScope::SelfJoin => a.rid != b.rid,
        PairScope::CrossSides => a.side != b.side,
    }
}

/// Run the filter pipeline on a pair whose local overlap is already known;
/// returns the candidate record if it survives.
#[inline]
#[allow(clippy::too_many_arguments)]
fn finish_pair(
    a: &Segment,
    b: &Segment,
    overlap: usize,
    measure: Measure,
    theta: f64,
    filters: FilterSet,
    policy: EmitPolicy,
    stats: &mut FilterStats,
) -> Option<CandidateRecord> {
    let bounds = PairBounds::new(measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail);
    if filters.segi && !segi_pass(&bounds, overlap) {
        stats.segi_pruned += 1;
        return None;
    }
    if filters.segd && !segd_pass(&bounds, a.seg_len(), b.seg_len(), overlap) {
        stats.segd_pruned += 1;
        return None;
    }
    if overlap == 0 {
        // Nothing to contribute to the verification sum.
        return None;
    }
    if policy == EmitPolicy::PositiveBoundOnly && bounds.required_local < 1 {
        // Paper-magnitude mode: drop contributions no lemma can demand.
        // NOT exact — see EmitPolicy docs.
        stats.policy_dropped += 1;
        return None;
    }
    stats.emitted += 1;
    let (x, y) = if a.rid < b.rid { (a, b) } else { (b, a) };
    Some(CandidateRecord {
        rid_a: x.rid,
        rid_b: y.rid,
        common: overlap as u32,
        len_a: x.len,
        len_b: y.len,
    })
}

/// Consult the two records' hashed bitmaps before paying for an exact
/// segment intersection. Returns `true` when the bitmap verdict settles
/// the pair — counters are then updated exactly as the exact path would
/// have, and the caller skips intersection and `finish_pair` entirely.
/// Returns `false` when the exact intersection must run.
///
/// Soundness: a segment is a subset of its record, so the record-level
/// overlap upper bound also bounds the *local* (segment) overlap. Two
/// rules, both counter-exact so every counter pinned by the
/// `columnar_equivalence` goldens stays bit-identical to the no-prune run:
///
/// * **zero rule** — a bound of 0 proves the local overlap is exactly 0;
///   emulate `finish_pair(overlap = 0)` verbatim: SegI verdict first,
///   then SegD at overlap 0, else the silent zero-overlap drop.
/// * **SegI rule** — with SegI on and `required_local ≥ 1`, a bound below
///   `required_local` proves the exact path would take the SegI branch
///   (local overlap ≤ record overlap ≤ bound < required), and
///   `finish_pair` checks SegI before everything else.
#[inline]
fn bitmap_settles(
    pool: &TokenPool,
    a: &Segment,
    b: &Segment,
    bounds: &PairBounds,
    filters: FilterSet,
    stats: &mut FilterStats,
) -> bool {
    // Saturation guard: the XOR-Hamming distance is at most the bitmap
    // width, so the bound can never fall below
    // `(len_a + len_b - width) / 2`. When that floor already rules out
    // both prune rules, skip the bitmap reads entirely — long records
    // saturate fixed-width bitmaps and would otherwise pay the popcount
    // for a verdict that cannot prune.
    let floor_ub = (a.len as usize + b.len as usize).saturating_sub(pool.bitmap_bits()) / 2;
    if floor_ub >= 1 && (!filters.segi || bounds.required_local <= floor_ub as i64) {
        return false;
    }
    stats.bitmap_checks += 1;
    let ub = overlap_upper_bound(
        pool.bitmap_of(a.rid),
        pool.bitmap_of(b.rid),
        a.len as usize,
        b.len as usize,
    );
    if ub == 0 {
        stats.bitmap_pruned += 1;
        if filters.segi && !segi_pass(bounds, 0) {
            stats.segi_pruned += 1;
        } else if filters.segd && !segd_pass(bounds, a.seg_len(), b.seg_len(), 0) {
            stats.segd_pruned += 1;
        }
        // else: finish_pair's silent zero-overlap drop — no counter.
        return true;
    }
    if filters.segi && bounds.required_local >= 1 && (ub as i64) < bounds.required_local {
        stats.bitmap_pruned += 1;
        stats.segi_pruned += 1;
        return true;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn loop_join(
    pool: &TokenPool,
    segments: &[Segment],
    scope: PairScope,
    measure: Measure,
    theta: f64,
    filters: FilterSet,
    policy: EmitPolicy,
    bitmap: bool,
    stats: &mut FilterStats,
) -> Vec<CandidateRecord> {
    let mut out = Vec::new();
    for i in 0..segments.len() {
        let a = &segments[i];
        for b in &segments[i + 1..] {
            if !admissible(a, b, scope) {
                continue;
            }
            stats.pairs_considered += 1;
            if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                stats.strl_pruned += 1;
                continue;
            }
            let bounds =
                PairBounds::new(measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail);
            if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                stats.segl_pruned += 1;
                continue;
            }
            if filters.segd && !segd_pass_precheck(&bounds, a.seg_len(), b.seg_len()) {
                stats.segd_pruned += 1;
                continue;
            }
            if bitmap && bitmap_settles(pool, a, b, &bounds, filters, stats) {
                continue;
            }
            stats.count_intersection(a.seg_len(), b.seg_len());
            let c = intersect_count_adaptive(a.tokens(pool), b.tokens(pool));
            if let Some(rec) = finish_pair(a, b, c, measure, theta, filters, policy, stats) {
                out.push(rec);
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn index_join(
    pool: &TokenPool,
    segments: &[Segment],
    scope: PairScope,
    measure: Measure,
    theta: f64,
    filters: FilterSet,
    policy: EmitPolicy,
    stats: &mut FilterStats,
) -> Vec<CandidateRecord> {
    let mut out = Vec::new();
    // token -> slots of already-indexed segments containing it.
    let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
    for (slot, a) in segments.iter().enumerate() {
        counts.clear();
        for &t in a.tokens(pool) {
            if let Some(slots) = index.get(&t) {
                for &s in slots {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
        }
        for (&slot_b, &c) in &counts {
            let b = &segments[slot_b as usize];
            if !admissible(a, b, scope) {
                continue;
            }
            stats.pairs_considered += 1;
            if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                stats.strl_pruned += 1;
                continue;
            }
            let bounds =
                PairBounds::new(measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail);
            if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                stats.segl_pruned += 1;
                continue;
            }
            if let Some(rec) = finish_pair(a, b, c as usize, measure, theta, filters, policy, stats)
            {
                out.push(rec);
            }
        }
        for &t in a.tokens(pool) {
            index.entry(t).or_default().push(slot as u32);
        }
    }
    out
}

/// Minimum local overlap a θ-similar pair must exhibit in this fragment,
/// from one record's own metadata (DESIGN.md §4 item 2):
/// `max(1, minoverlap_any(θ,|s|) − |s^h| − |s^e|)`.
#[inline]
fn local_alpha(measure: Measure, theta: f64, seg: &Segment) -> usize {
    (measure.min_overlap_any(theta, seg.len as usize) as i64
        - i64::from(seg.head)
        - i64::from(seg.tail))
    .max(1) as usize
}

/// Local prefix length of a segment: long enough that θ-similar pairs are
/// guaranteed to collide (completeness proof in DESIGN.md §4 item 2).
#[inline]
fn local_prefix_len(measure: Measure, theta: f64, seg: &Segment) -> usize {
    let alpha = local_alpha(measure, theta, seg);
    debug_assert!(alpha <= seg.seg_len().max(1));
    seg.seg_len() - alpha.min(seg.seg_len()) + 1
}

#[allow(clippy::too_many_arguments)]
fn prefix_join(
    pool: &TokenPool,
    segments: &[Segment],
    scope: PairScope,
    measure: Measure,
    theta: f64,
    filters: FilterSet,
    policy: EmitPolicy,
    bitmap: bool,
    stats: &mut FilterStats,
) -> Vec<CandidateRecord> {
    let mut out = Vec::new();
    let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
    for (slot, a) in segments.iter().enumerate() {
        seen.clear();
        let a_tokens = a.tokens(pool);
        let prefix = local_prefix_len(measure, theta, a);
        for &t in &a_tokens[..prefix] {
            if let Some(slots) = index.get(&t) {
                for &s in slots {
                    seen.entry(s).or_insert(());
                }
            }
        }
        for &slot_b in seen.keys() {
            let b = &segments[slot_b as usize];
            if !admissible(a, b, scope) {
                continue;
            }
            stats.pairs_considered += 1;
            if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                stats.strl_pruned += 1;
                continue;
            }
            let bounds =
                PairBounds::new(measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail);
            if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                stats.segl_pruned += 1;
                continue;
            }
            if filters.segd && !segd_pass_precheck(&bounds, a.seg_len(), b.seg_len()) {
                stats.segd_pruned += 1;
                continue;
            }
            if bitmap && bitmap_settles(pool, a, b, &bounds, filters, stats) {
                continue;
            }
            stats.count_intersection(a.seg_len(), b.seg_len());
            let c = intersect_count_adaptive(a_tokens, b.tokens(pool));
            if let Some(rec) = finish_pair(a, b, c, measure, theta, filters, policy, stats) {
                out.push(rec);
            }
        }
        for (pos, &t) in a_tokens.iter().enumerate().take(prefix) {
            let _ = pos;
            index.entry(t).or_default().push(slot as u32);
        }
    }
    out
}

/// Boundary-cell join: only short × long pairs are considered (the groups
/// structurally satisfy the boundary rule), so discovery work is bounded
/// by cross-group token incidences.
#[allow(clippy::too_many_arguments)]
fn bipartite_join(
    pool: &TokenPool,
    short: &[&Segment],
    long: &[&Segment],
    scope: PairScope,
    measure: Measure,
    theta: f64,
    kernel: JoinKernel,
    filters: FilterSet,
    policy: EmitPolicy,
    bitmap: bool,
    stats: &mut FilterStats,
) -> Vec<CandidateRecord> {
    let mut out = Vec::new();
    if short.is_empty() || long.is_empty() {
        return out;
    }
    match kernel {
        JoinKernel::Loop => {
            for a in short {
                for b in long {
                    if !admissible(a, b, scope) {
                        continue;
                    }
                    stats.pairs_considered += 1;
                    if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                        stats.strl_pruned += 1;
                        continue;
                    }
                    let bounds = PairBounds::new(
                        measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail,
                    );
                    if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                        stats.segl_pruned += 1;
                        continue;
                    }
                    if filters.segd && !segd_pass_precheck(&bounds, a.seg_len(), b.seg_len()) {
                        stats.segd_pruned += 1;
                        continue;
                    }
                    if bitmap && bitmap_settles(pool, a, b, &bounds, filters, stats) {
                        continue;
                    }
                    stats.count_intersection(a.seg_len(), b.seg_len());
                    let c = intersect_count_adaptive(a.tokens(pool), b.tokens(pool));
                    if let Some(rec) = finish_pair(a, b, c, measure, theta, filters, policy, stats)
                    {
                        out.push(rec);
                    }
                }
            }
        }
        JoinKernel::Index => {
            // Full inverted index over the (usually narrower) short group;
            // probe with the long group, accumulating exact local overlaps.
            let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for (slot, a) in short.iter().enumerate() {
                for &t in a.tokens(pool) {
                    index.entry(t).or_default().push(slot as u32);
                }
            }
            let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
            for b in long {
                counts.clear();
                for &t in b.tokens(pool) {
                    if let Some(slots) = index.get(&t) {
                        for &s in slots {
                            *counts.entry(s).or_insert(0) += 1;
                        }
                    }
                }
                for (&slot_a, &c) in &counts {
                    let a = short[slot_a as usize];
                    if !admissible(a, b, scope) {
                        continue;
                    }
                    stats.pairs_considered += 1;
                    if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                        stats.strl_pruned += 1;
                        continue;
                    }
                    let bounds = PairBounds::new(
                        measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail,
                    );
                    if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                        stats.segl_pruned += 1;
                        continue;
                    }
                    if let Some(rec) =
                        finish_pair(a, b, c as usize, measure, theta, filters, policy, stats)
                    {
                        out.push(rec);
                    }
                }
            }
        }
        JoinKernel::Prefix => {
            // Index the short group's local prefixes, probe with the long
            // group's local prefixes; completeness argument as in
            // `prefix_join` (it is pairwise, not scan-order-dependent).
            let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for (slot, a) in short.iter().enumerate() {
                let prefix = local_prefix_len(measure, theta, a);
                for &t in &a.tokens(pool)[..prefix] {
                    index.entry(t).or_default().push(slot as u32);
                }
            }
            let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
            for b in long {
                seen.clear();
                let b_tokens = b.tokens(pool);
                let prefix = local_prefix_len(measure, theta, b);
                for &t in &b_tokens[..prefix] {
                    if let Some(slots) = index.get(&t) {
                        for &s in slots {
                            seen.entry(s).or_insert(());
                        }
                    }
                }
                for &slot_a in seen.keys() {
                    let a = short[slot_a as usize];
                    if !admissible(a, b, scope) {
                        continue;
                    }
                    stats.pairs_considered += 1;
                    if filters.strl && !strl_pass(measure, theta, a.len, b.len) {
                        stats.strl_pruned += 1;
                        continue;
                    }
                    let bounds = PairBounds::new(
                        measure, theta, a.len, a.head, a.tail, b.len, b.head, b.tail,
                    );
                    if filters.segl && !segl_pass(&bounds, a.seg_len(), b.seg_len()) {
                        stats.segl_pruned += 1;
                        continue;
                    }
                    if filters.segd && !segd_pass_precheck(&bounds, a.seg_len(), b.seg_len()) {
                        stats.segd_pruned += 1;
                        continue;
                    }
                    if bitmap && bitmap_settles(pool, a, b, &bounds, filters, stats) {
                        continue;
                    }
                    stats.count_intersection(a.seg_len(), b.seg_len());
                    let c = intersect_count_adaptive(a.tokens(pool), b_tokens);
                    if let Some(rec) = finish_pair(a, b, c, measure, theta, filters, policy, stats)
                    {
                        out.push(rec);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(pool: &mut TokenPool, rid: u32, len: u32, head: u32, tokens: &[u32]) -> Segment {
        let tail = len - head - tokens.len() as u32;
        Segment {
            rid,
            side: 0,
            len,
            head,
            tail,
            span: pool.push(tokens),
        }
    }

    fn cand(rid_a: u32, rid_b: u32, common: u32, len_a: u32, len_b: u32) -> CandidateRecord {
        CandidateRecord {
            rid_a,
            rid_b,
            common,
            len_a,
            len_b,
        }
    }

    fn run(
        pool: &TokenPool,
        segments: &[Segment],
        kernel: JoinKernel,
        theta: f64,
        filters: FilterSet,
    ) -> (Vec<CandidateRecord>, FilterStats) {
        let mut stats = FilterStats::default();
        let mut out = join_fragment(
            pool,
            segments,
            JoinRule::All,
            PairScope::SelfJoin,
            Measure::Jaccard,
            theta,
            kernel,
            filters,
            EmitPolicy::Exact,
            true,
            &mut stats,
        );
        out.sort_unstable();
        (out, stats)
    }

    #[test]
    fn identical_segments_emit_full_overlap() {
        // Whole records in one fragment (no pivots case).
        let mut pool = TokenPool::new();
        let segs = vec![
            seg(&mut pool, 0, 3, 0, &[1, 2, 3]),
            seg(&mut pool, 1, 3, 0, &[1, 2, 3]),
        ];
        for k in JoinKernel::all() {
            let (out, _) = run(&pool, &segs, k, 0.9, FilterSet::ALL);
            assert_eq!(out, vec![cand(0, 1, 3, 3, 3)], "{k:?}");
        }
    }

    #[test]
    fn kernels_agree_on_pseudorandom_fragments() {
        // Build a plausible fragment: many segments with shared metadata
        // consistency, compare all kernels under all filter sets.
        let mut state = 77u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        let mut pool = TokenPool::new();
        let mut segments = Vec::new();
        for rid in 0..60u32 {
            let seg_len = 1 + next(8);
            let head = next(10);
            let tail = next(10);
            let mut toks: Vec<u32> = (0..seg_len).map(|_| next(40)).collect();
            toks.sort_unstable();
            toks.dedup();
            let len = head + tail + toks.len() as u32;
            segments.push(Segment {
                rid,
                side: 0,
                len,
                head,
                tail,
                span: pool.push(&toks),
            });
        }
        for &theta in &[0.5, 0.7, 0.9] {
            for filters in [FilterSet::ALL, FilterSet::NONE, FilterSet::STRL_ONLY] {
                let (loop_out, _) = run(&pool, &segments, JoinKernel::Loop, theta, filters);
                let (index_out, _) = run(&pool, &segments, JoinKernel::Index, theta, filters);
                assert_eq!(loop_out, index_out, "index θ={theta} {filters:?}");
                // Prefix may legitimately emit a SUBSET (it skips pairs that
                // provably cannot be θ-similar), but must contain every pair
                // whose local overlap meets both records' local alphas.
                let (prefix_out, _) = run(&pool, &segments, JoinKernel::Prefix, theta, filters);
                for rec in &prefix_out {
                    assert!(loop_out.contains(rec), "prefix emitted non-loop record");
                }
                let m = Measure::Jaccard;
                for rec in &loop_out {
                    let sa = segments.iter().find(|s| s.rid == rec.rid_a).unwrap();
                    let sb = segments.iter().find(|s| s.rid == rec.rid_b).unwrap();
                    let need = local_alpha(m, theta, sa).max(local_alpha(m, theta, sb));
                    if (rec.common as usize) >= need {
                        assert!(
                            prefix_out.contains(rec),
                            "prefix missed a qualifying record {rec:?} (θ={theta})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cross_sides_scope_only_pairs_across() {
        let mut pool = TokenPool::new();
        let segs = vec![
            seg(&mut pool, 0, 3, 0, &[1, 2, 3]),
            Segment {
                side: 1,
                ..seg(&mut pool, 10, 3, 0, &[1, 2, 3])
            },
            Segment {
                side: 1,
                ..seg(&mut pool, 11, 3, 0, &[1, 2, 3])
            },
        ];
        let mut stats = FilterStats::default();
        // bitmap off: these test rids (10, 11) are not pool indices, so
        // the rid→bitmap lookup the prune relies on does not apply here.
        let mut out = join_fragment(
            &pool,
            &segs,
            JoinRule::All,
            PairScope::CrossSides,
            Measure::Jaccard,
            0.9,
            JoinKernel::Loop,
            FilterSet::ALL,
            EmitPolicy::Exact,
            false,
            &mut stats,
        );
        out.sort_unstable();
        assert_eq!(
            out,
            vec![cand(0, 10, 3, 3, 3), cand(0, 11, 3, 3, 3)],
            "identical S-side records must not pair"
        );
    }

    #[test]
    fn boundary_rule_suppresses_same_side_pairs() {
        let mut pool = TokenPool::new();
        let segs = vec![
            seg(&mut pool, 0, 8, 0, &[1, 2, 3]),
            seg(&mut pool, 1, 8, 0, &[1, 2, 3]),
            seg(&mut pool, 2, 12, 0, &[1, 2, 3]),
        ];
        let rule = JoinRule::Boundary { lo: 0, pivot: 10 };
        let mut stats = FilterStats::default();
        let mut out = join_fragment(
            &pool,
            &segs,
            rule,
            PairScope::SelfJoin,
            Measure::Jaccard,
            0.5,
            JoinKernel::Loop,
            FilterSet::NONE,
            EmitPolicy::Exact,
            true,
            &mut stats,
        );
        out.sort_unstable();
        // Only (0,2) and (1,2) straddle the pivot.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key(), (0, 2));
        assert_eq!(out[1].key(), (1, 2));
    }

    #[test]
    fn filters_reduce_emission_monotonically() {
        let mut pool = TokenPool::new();
        let mut segments = Vec::new();
        let mut state = 5u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        for rid in 0..50u32 {
            let mut toks: Vec<u32> = (0..(2 + next(6))).map(|_| next(30)).collect();
            toks.sort_unstable();
            toks.dedup();
            let head = next(12);
            let tail = next(12);
            segments.push(Segment {
                rid,
                side: 0,
                len: head + tail + toks.len() as u32,
                head,
                tail,
                span: pool.push(&toks),
            });
        }
        let (none, _) = run(&pool, &segments, JoinKernel::Loop, 0.8, FilterSet::NONE);
        let (all, stats) = run(&pool, &segments, JoinKernel::Loop, 0.8, FilterSet::ALL);
        assert!(all.len() <= none.len());
        assert!(stats.strl_pruned + stats.segl_pruned + stats.segi_pruned + stats.segd_pruned > 0);
    }

    #[test]
    fn zero_overlap_pairs_never_emitted() {
        let mut pool = TokenPool::new();
        let segs = vec![
            seg(&mut pool, 0, 3, 0, &[1, 2, 3]),
            seg(&mut pool, 1, 3, 0, &[7, 8, 9]),
        ];
        for k in JoinKernel::all() {
            let (out, _) = run(&pool, &segs, k, 0.5, FilterSet::NONE);
            assert!(out.is_empty(), "{k:?}");
        }
    }

    #[test]
    fn bitmap_prune_is_counter_exact() {
        // The prune may only move work between `bitmap_pruned` and
        // `intersections`: outputs and every golden-pinned counter must
        // be bit-identical with the bitmap on or off, for every kernel
        // and filter set.
        let mut state = 123u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        let mut pool = TokenPool::new();
        let mut segments = Vec::new();
        for rid in 0..80u32 {
            let mut toks: Vec<u32> = (0..(1 + next(10))).map(|_| next(60)).collect();
            toks.sort_unstable();
            toks.dedup();
            let head = next(6);
            let tail = next(6);
            segments.push(Segment {
                rid,
                side: 0,
                len: head + tail + toks.len() as u32,
                head,
                tail,
                span: pool.push(&toks),
            });
        }
        for kernel in JoinKernel::all() {
            for filters in [FilterSet::ALL, FilterSet::NONE, FilterSet::STRL_ONLY] {
                for &theta in &[0.6, 0.8, 0.95] {
                    let mut on = FilterStats::default();
                    let mut with_bitmap = join_fragment(
                        &pool,
                        &segments,
                        JoinRule::All,
                        PairScope::SelfJoin,
                        Measure::Jaccard,
                        theta,
                        kernel,
                        filters,
                        EmitPolicy::Exact,
                        true,
                        &mut on,
                    );
                    let mut off = FilterStats::default();
                    let mut without = join_fragment(
                        &pool,
                        &segments,
                        JoinRule::All,
                        PairScope::SelfJoin,
                        Measure::Jaccard,
                        theta,
                        kernel,
                        filters,
                        EmitPolicy::Exact,
                        false,
                        &mut off,
                    );
                    with_bitmap.sort_unstable();
                    without.sort_unstable();
                    assert_eq!(with_bitmap, without, "{kernel:?} {filters:?} θ={theta}");
                    // Golden-pinned counters are identical...
                    assert_eq!(on.pairs_considered, off.pairs_considered);
                    assert_eq!(on.strl_pruned, off.strl_pruned);
                    assert_eq!(on.segl_pruned, off.segl_pruned);
                    assert_eq!(on.segi_pruned, off.segi_pruned);
                    assert_eq!(on.segd_pruned, off.segd_pruned);
                    assert_eq!(on.policy_dropped, off.policy_dropped);
                    assert_eq!(on.emitted, off.emitted);
                    // ...while each settled pair skips exactly one
                    // intersection, and the off-run touches no bitmaps.
                    assert_eq!(on.intersections + on.bitmap_pruned, off.intersections);
                    assert!(on.bitmap_pruned <= on.bitmap_checks);
                    assert_eq!(off.bitmap_checks, 0);
                    assert_eq!(off.bitmap_pruned, 0);
                }
            }
        }
    }

    #[test]
    fn candidate_record_orders_like_the_old_tuple_encoding() {
        let records = [
            cand(0, 1, 2, 3, 4),
            cand(0, 1, 1, 9, 9),
            cand(1, 0, 0, 0, 0),
            cand(0, 2, 0, 0, 0),
        ];
        let mut by_struct = records;
        by_struct.sort_unstable();
        let mut by_tuple = records;
        by_tuple.sort_unstable_by_key(|r| (r.key(), r.value()));
        assert_eq!(by_struct, by_tuple);
    }

    #[test]
    fn local_prefix_len_bounds() {
        let m = Measure::Jaccard;
        let mut pool = TokenPool::new();
        // Whole record as one segment: local alpha = ceil(θ|s|).
        let s = seg(&mut pool, 0, 10, 0, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(local_alpha(m, 0.8, &s), 8);
        assert_eq!(local_prefix_len(m, 0.8, &s), 3);
        // A tiny middle segment: alpha clamps to 1, prefix = full segment.
        let s = seg(&mut pool, 0, 20, 9, &[100, 101]);
        assert_eq!(local_alpha(m, 0.8, &s), 1);
        assert_eq!(local_prefix_len(m, 0.8, &s), 2);
    }
}
