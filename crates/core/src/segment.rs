//! The unit of FS-Join's shuffle: a record segment with its metadata.

use ssj_common::ByteSize;

/// One vertical segment of a record, as emitted by the map phase
/// (paper §V-A: each segment travels with `|s|`, `|s^h|`, `|s^e|` so the
/// reduce-side filters can run without seeing the rest of the record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Record id.
    pub rid: u32,
    /// Relation tag: 0 for self-join / R-side, 1 for S-side of an R×S join.
    pub side: u8,
    /// Full record length `|s|`.
    pub len: u32,
    /// Tokens before this segment, `|s^h|`.
    pub head: u32,
    /// Tokens after this segment, `|s^e|`.
    pub tail: u32,
    /// The segment's tokens (ascending ranks).
    pub tokens: Vec<u32>,
}

impl Segment {
    /// Number of tokens in the segment.
    #[inline]
    pub fn seg_len(&self) -> usize {
        self.tokens.len()
    }

    /// Internal consistency: head + segment + tail must equal the record.
    pub fn is_consistent(&self) -> bool {
        self.head as usize + self.tokens.len() + self.tail as usize == self.len as usize
    }
}

impl ByteSize for Segment {
    fn byte_size(&self) -> usize {
        // rid + side + len + head + tail + tokens
        4 + 1 + 4 + 4 + 4 + self.tokens.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check() {
        let s = Segment {
            rid: 1,
            side: 0,
            len: 10,
            head: 3,
            tail: 5,
            tokens: vec![4, 5],
        };
        assert!(s.is_consistent());
        assert_eq!(s.seg_len(), 2);
        let bad = Segment { tail: 6, ..s };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn byte_size_accounts_metadata_and_tokens() {
        let s = Segment {
            rid: 1,
            side: 0,
            len: 2,
            head: 0,
            tail: 0,
            tokens: vec![1, 2],
        };
        assert_eq!(s.byte_size(), 17 + 4 + 8);
    }
}
