//! The unit of FS-Join's shuffle: a record segment with its metadata.

use ssj_common::ByteSize;
use ssj_text::{TokenId, TokenPool, TokenSpan};

/// One vertical segment of a record, as emitted by the map phase
/// (paper §V-A: each segment travels with `|s|`, `|s^h|`, `|s^e|` so the
/// reduce-side filters can run without seeing the rest of the record).
///
/// Since the columnar refactor a segment does not own its tokens: it
/// carries a [`TokenSpan`] into the collection's shared [`TokenPool`]
/// (distributed as read-only job side data), which makes segments `Copy` —
/// map-side vertical partitioning allocates nothing per segment. The
/// *logical* serialized size still includes the tokens (see
/// [`ByteSize`] impl below): on a real cluster the span would be
/// materialized on the wire, so shuffle accounting is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Record id.
    pub rid: u32,
    /// Relation tag: 0 for self-join / R-side, 1 for S-side of an R×S join.
    pub side: u8,
    /// Full record length `|s|`.
    pub len: u32,
    /// Tokens before this segment, `|s^h|`.
    pub head: u32,
    /// Tokens after this segment, `|s^e|`.
    pub tail: u32,
    /// The segment's tokens (ascending ranks), as a span into the
    /// collection's token pool.
    pub span: TokenSpan,
}

impl Segment {
    /// Number of tokens in the segment.
    #[inline]
    pub fn seg_len(&self) -> usize {
        self.span.len as usize
    }

    /// The segment's tokens, resolved against the collection pool.
    #[inline]
    pub fn tokens<'p>(&self, pool: &'p TokenPool) -> &'p [TokenId] {
        pool.resolve(self.span)
    }

    /// Internal consistency: head + segment + tail must equal the record.
    pub fn is_consistent(&self) -> bool {
        self.head as usize + self.seg_len() + self.tail as usize == self.len as usize
    }
}

impl ByteSize for Segment {
    fn byte_size(&self) -> usize {
        // Logical serialized size: rid + side + len + head + tail + tokens
        // (length prefix + 4 bytes each) — identical to the pre-columnar
        // owned-Vec layout, so shuffle-volume metrics are unchanged.
        4 + 1 + 4 + 4 + 4 + (4 + 4 * self.span.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check() {
        let mut pool = TokenPool::new();
        let span = pool.push(&[4, 5]);
        let s = Segment {
            rid: 1,
            side: 0,
            len: 10,
            head: 3,
            tail: 5,
            span,
        };
        assert!(s.is_consistent());
        assert_eq!(s.seg_len(), 2);
        assert_eq!(s.tokens(&pool), &[4, 5]);
        let bad = Segment { tail: 6, ..s };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn byte_size_accounts_metadata_and_tokens() {
        let mut pool = TokenPool::new();
        let span = pool.push(&[1, 2]);
        let s = Segment {
            rid: 1,
            side: 0,
            len: 2,
            head: 0,
            tail: 0,
            span,
        };
        assert_eq!(s.byte_size(), 17 + 4 + 8);
    }
}
