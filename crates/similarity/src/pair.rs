//! Join results: similar record pairs.

use ssj_common::ByteSize;
use ssj_text::RecordId;

/// A record pair that met the similarity threshold, with its exact score.
/// Canonical form: `a < b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarPair {
    /// Smaller record id.
    pub a: RecordId,
    /// Larger record id.
    pub b: RecordId,
    /// Exact similarity score.
    pub sim: f64,
}

impl SimilarPair {
    /// Build in canonical order.
    ///
    /// # Panics
    /// Panics if `x == y` (self-pairs are never results).
    pub fn new(x: RecordId, y: RecordId, sim: f64) -> Self {
        assert_ne!(x, y, "self-pair is not a join result");
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        SimilarPair { a, b, sim }
    }

    /// The id pair as a tuple (for set comparisons in tests).
    pub fn ids(&self) -> (RecordId, RecordId) {
        (self.a, self.b)
    }
}

impl ByteSize for SimilarPair {
    fn byte_size(&self) -> usize {
        4 + 4 + 8
    }
}

/// Extract the sorted id-pair set from a result list — the canonical form
/// for comparing algorithm outputs (scores are compared separately since
/// they are floats).
pub fn id_pairs(pairs: &[SimilarPair]) -> Vec<(RecordId, RecordId)> {
    let mut ids: Vec<(RecordId, RecordId)> = pairs.iter().map(SimilarPair::ids).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Assert two result lists contain the same pairs with scores agreeing to
/// `tol`; returns an error description instead of panicking so callers can
/// add context.
pub fn compare_results(got: &[SimilarPair], want: &[SimilarPair], tol: f64) -> Result<(), String> {
    let gi = id_pairs(got);
    let wi = id_pairs(want);
    if gi != wi {
        let missing: Vec<_> = wi.iter().filter(|p| !gi.contains(p)).take(5).collect();
        let extra: Vec<_> = gi.iter().filter(|p| !wi.contains(p)).take(5).collect();
        return Err(format!(
            "pair sets differ: got {}, want {}; missing {missing:?}, extra {extra:?}",
            gi.len(),
            wi.len()
        ));
    }
    let mut scores: ssj_common::FxHashMap<(RecordId, RecordId), f64> = Default::default();
    for p in want {
        scores.insert(p.ids(), p.sim);
    }
    for p in got {
        let w = scores[&p.ids()];
        if (p.sim - w).abs() > tol {
            return Err(format!(
                "score mismatch for {:?}: got {} want {}",
                p.ids(),
                p.sim,
                w
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let p = SimilarPair::new(9, 3, 0.8);
        assert_eq!(p.ids(), (3, 9));
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        let _ = SimilarPair::new(3, 3, 1.0);
    }

    #[test]
    fn compare_results_catches_differences() {
        let a = vec![SimilarPair::new(1, 2, 0.9)];
        let b = vec![SimilarPair::new(1, 2, 0.9), SimilarPair::new(2, 3, 0.8)];
        assert!(compare_results(&a, &a, 1e-9).is_ok());
        assert!(compare_results(&a, &b, 1e-9).is_err());
        let c = vec![SimilarPair::new(1, 2, 0.7)];
        let err = compare_results(&a, &c, 1e-9).unwrap_err();
        assert!(err.contains("score mismatch"));
    }

    #[test]
    fn id_pairs_sorted_dedup() {
        let pairs = vec![
            SimilarPair::new(5, 1, 0.9),
            SimilarPair::new(1, 5, 0.9),
            SimilarPair::new(2, 3, 0.8),
        ];
        assert_eq!(id_pairs(&pairs), vec![(1, 5), (2, 3)]);
    }
}
