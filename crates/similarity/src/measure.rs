//! Similarity measures and the bounds derived from them.
//!
//! Everything here is phrased in terms of the overlap `c = |s ∩ t|` and the
//! set sizes `|s|`, `|t|`, because that is all FS-Join's verification phase
//! has (paper §V-B computes exact scores from aggregated common-token
//! counts, never touching the original records).
//!
//! Floating-point robustness: thresholds are applied with a small epsilon
//! so that e.g. Jaccard exactly equal to θ passes and `ceil` of an exact
//! integer does not round up; all bounds remain *sound* (never prune a pair
//! at or above the threshold).

/// Epsilon for floating-point threshold comparisons.
const EPS: f64 = 1e-9;

/// Ceil with protection against `ceil(k + tiny-float-error) = k + 1`.
#[inline]
fn ceil_eps(x: f64) -> usize {
    (x - EPS).ceil().max(0.0) as usize
}

/// Floor with protection against `floor(k − tiny-float-error) = k − 1`.
#[inline]
fn floor_eps(x: f64) -> usize {
    (x + EPS).floor().max(0.0) as usize
}

/// A normalized set-similarity measure (paper §V-B supports all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// `|s∩t| / |s∪t|`.
    Jaccard,
    /// `2|s∩t| / (|s|+|t|)`.
    Dice,
    /// `|s∩t| / √(|s|·|t|)`.
    Cosine,
}

impl Measure {
    /// Similarity score from an overlap count. Returns 0 when either set is
    /// empty (two empty sets are defined as similarity 0: they carry no
    /// information and every algorithm skips them).
    pub fn score(self, overlap: usize, len_s: usize, len_t: usize) -> f64 {
        if len_s == 0 || len_t == 0 {
            return 0.0;
        }
        let c = overlap as f64;
        match self {
            Measure::Jaccard => c / (len_s + len_t - overlap) as f64,
            Measure::Dice => 2.0 * c / (len_s + len_t) as f64,
            Measure::Cosine => c / ((len_s as f64) * (len_t as f64)).sqrt(),
        }
    }

    /// Exact threshold test from counts (the verification-phase predicate):
    /// `score(overlap, |s|, |t|) ≥ θ`, evaluated without dividing.
    pub fn passes(self, overlap: usize, len_s: usize, len_t: usize, theta: f64) -> bool {
        if len_s == 0 || len_t == 0 {
            return false;
        }
        let c = overlap as f64;
        match self {
            Measure::Jaccard => c * (1.0 + theta) + EPS >= theta * (len_s + len_t) as f64,
            Measure::Dice => 2.0 * c + EPS >= theta * (len_s + len_t) as f64,
            Measure::Cosine => c + EPS >= theta * ((len_s as f64) * (len_t as f64)).sqrt(),
        }
    }

    /// Minimum overlap a pair with these exact lengths needs to reach θ
    /// (the paper's `θ/(1+θ)(|s|+|t|)` bound for Jaccard, Lemmas 2–4).
    pub fn min_overlap(self, theta: f64, len_s: usize, len_t: usize) -> usize {
        let sum = (len_s + len_t) as f64;
        match self {
            Measure::Jaccard => ceil_eps(theta / (1.0 + theta) * sum),
            Measure::Dice => ceil_eps(theta * sum / 2.0),
            Measure::Cosine => ceil_eps(theta * ((len_s as f64) * (len_t as f64)).sqrt()),
        }
    }

    /// Minimum overlap over *any* admissible partner of a record with
    /// length `len` (partner may be shorter, down to the length window's
    /// lower edge). This is the probe-side bound: for Jaccard it is
    /// `⌈θ·len⌉`.
    pub fn min_overlap_any(self, theta: f64, len: usize) -> usize {
        let l = len as f64;
        match self {
            Measure::Jaccard => ceil_eps(theta * l),
            Measure::Dice => ceil_eps(theta * l / (2.0 - theta)),
            Measure::Cosine => ceil_eps(theta * theta * l),
        }
    }

    /// Minimum overlap over admissible partners that are *longer or equal*
    /// (the index-side bound: the minimizing partner has the same length).
    pub fn min_overlap_longer(self, theta: f64, len: usize) -> usize {
        let l = len as f64;
        match self {
            Measure::Jaccard => ceil_eps(2.0 * theta / (1.0 + theta) * l),
            Measure::Dice => ceil_eps(theta * l),
            Measure::Cosine => ceil_eps(theta * l),
        }
    }

    /// Smallest partner length that can reach θ with a record of length
    /// `len` (the string-length filter, Lemma 1: shorter partners are
    /// pruned).
    pub fn min_partner_len(self, theta: f64, len: usize) -> usize {
        let l = len as f64;
        match self {
            Measure::Jaccard => ceil_eps(theta * l),
            Measure::Dice => ceil_eps(theta * l / (2.0 - theta)),
            Measure::Cosine => ceil_eps(theta * theta * l),
        }
    }

    /// Largest partner length that can reach θ with a record of length
    /// `len`.
    pub fn max_partner_len(self, theta: f64, len: usize) -> usize {
        let l = len as f64;
        match self {
            Measure::Jaccard => floor_eps(l / theta),
            Measure::Dice => floor_eps((2.0 - theta) * l / theta),
            Measure::Cosine => floor_eps(l / (theta * theta)),
        }
    }

    /// Probe-prefix length: a record of length `len` shares at least one of
    /// its first `probe_prefix_len` tokens with every admissible partner.
    pub fn probe_prefix_len(self, theta: f64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        len - self.min_overlap_any(theta, len).min(len) + 1
    }

    /// Index-prefix length: sufficient when all probing partners are longer
    /// or equal (ascending-length scan order), hence shorter than the probe
    /// prefix.
    pub fn index_prefix_len(self, theta: f64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        len - self.min_overlap_longer(theta, len).min(len) + 1
    }

    /// All measures, for sweep-style tests.
    pub fn all() -> [Measure; 3] {
        [Measure::Jaccard, Measure::Dice, Measure::Cosine]
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Measure::Jaccard => "jaccard",
            Measure::Dice => "dice",
            Measure::Cosine => "cosine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_match_definitions() {
        // s,t with |s|=4, |t|=6, overlap 3 -> union 7.
        assert!((Measure::Jaccard.score(3, 4, 6) - 3.0 / 7.0).abs() < 1e-12);
        assert!((Measure::Dice.score(3, 4, 6) - 0.6).abs() < 1e-12);
        assert!((Measure::Cosine.score(3, 4, 6) - 3.0 / 24f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_score_zero_and_fail() {
        for m in Measure::all() {
            assert_eq!(m.score(0, 0, 5), 0.0);
            assert!(!m.passes(0, 0, 5, 0.1));
        }
    }

    #[test]
    fn passes_is_exact_at_threshold() {
        // Jaccard = 3/(4+5-3) = 0.5 exactly.
        assert!(Measure::Jaccard.passes(3, 4, 5, 0.5));
        assert!(!Measure::Jaccard.passes(2, 4, 5, 0.5));
        // Dice = 2*3/(4+2) = 1.0
        assert!(Measure::Dice.passes(3, 4, 2, 1.0));
        // Cosine = 2/sqrt(16) = 0.5 exactly.
        assert!(Measure::Cosine.passes(2, 4, 4, 0.5));
    }

    #[test]
    fn min_overlap_is_tight_for_jaccard() {
        // θ=0.8, |s|=|t|=10 -> need c >= 0.8/1.8*20 = 8.888 -> 9.
        assert_eq!(Measure::Jaccard.min_overlap(0.8, 10, 10), 9);
        // c=9: jac = 9/11 = 0.818 >= 0.8 ✓; c=8: 8/12 = 0.66 ✗.
        assert!(Measure::Jaccard.passes(9, 10, 10, 0.8));
        assert!(!Measure::Jaccard.passes(8, 10, 10, 0.8));
    }

    #[test]
    fn min_overlap_never_exceeds_what_passes_needs() {
        // Soundness: for any overlap c >= 0 that passes, c >= min_overlap.
        for m in Measure::all() {
            for &theta in &[0.5, 0.7, 0.8, 0.9, 0.95] {
                for ls in 1usize..30 {
                    for lt in 1usize..30 {
                        let alpha = m.min_overlap(theta, ls, lt);
                        for c in 0..=ls.min(lt) {
                            if m.passes(c, ls, lt, theta) {
                                assert!(
                                    c >= alpha,
                                    "{m:?} θ={theta} ls={ls} lt={lt} c={c} alpha={alpha}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn length_window_is_sound() {
        // Any pair passing θ must have partner length within the window.
        for m in Measure::all() {
            for &theta in &[0.6, 0.8, 0.9] {
                for ls in 1usize..25 {
                    for lt in 1usize..25 {
                        let c_max = ls.min(lt);
                        if m.passes(c_max, ls, lt, theta) {
                            assert!(lt >= m.min_partner_len(theta, ls));
                            assert!(lt <= m.max_partner_len(theta, ls));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partner_free_bounds_lower_bound_pairwise() {
        for m in Measure::all() {
            for &theta in &[0.6, 0.8, 0.9] {
                for ls in 1usize..25 {
                    let any = m.min_overlap_any(theta, ls);
                    let longer = m.min_overlap_longer(theta, ls);
                    for lt in
                        m.min_partner_len(theta, ls).max(1)..=m.max_partner_len(theta, ls).min(60)
                    {
                        assert!(m.min_overlap(theta, ls, lt) >= any);
                        if lt >= ls {
                            assert!(m.min_overlap(theta, ls, lt) >= longer);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_lengths_within_record() {
        for m in Measure::all() {
            for &theta in &[0.5, 0.8, 0.95] {
                for len in 0usize..40 {
                    let p = m.probe_prefix_len(theta, len);
                    let i = m.index_prefix_len(theta, len);
                    assert!(p <= len.max(1).min(len + 1));
                    assert!(p <= len || len == 0);
                    assert!(i <= p, "index prefix must not exceed probe prefix");
                    if len > 0 {
                        assert!(p >= 1);
                        assert!(i >= 1);
                    } else {
                        assert_eq!(p, 0);
                        assert_eq!(i, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn jaccard_prefix_matches_classic_formula() {
        // Classic: probe prefix = |x| − ⌈θ|x|⌉ + 1.
        for len in 1usize..50 {
            for &theta in &[0.7, 0.8, 0.9] {
                let expect = len - (theta * len as f64 - EPS).ceil() as usize + 1;
                assert_eq!(Measure::Jaccard.probe_prefix_len(theta, len), expect);
            }
        }
    }

    #[test]
    fn theta_one_requires_identity() {
        // θ=1: only c=min(ls,lt)=ls=lt passes.
        assert!(Measure::Jaccard.passes(5, 5, 5, 1.0));
        assert!(!Measure::Jaccard.passes(4, 5, 5, 1.0));
        assert_eq!(Measure::Jaccard.probe_prefix_len(1.0, 5), 1);
        assert_eq!(Measure::Jaccard.min_partner_len(1.0, 5), 5);
        assert_eq!(Measure::Jaccard.max_partner_len(1.0, 5), 5);
    }

    #[test]
    fn names_and_all() {
        assert_eq!(
            Measure::all().map(|m| m.name()),
            ["jaccard", "dice", "cosine"]
        );
    }
}
