//! PPJoin (Xiao et al., WWW'08): prefix filter + position filter.
//!
//! Extends AllPairs with the positional upper bound: while accumulating
//! prefix-token matches for a candidate, the final overlap can be bounded
//! by `matches_so_far + 1 + min(remaining_x, remaining_y)`; candidates that
//! can no longer reach the required overlap are pruned before verification.
//! This is the in-memory kernel RIDPairsPPJoin runs inside each reduce
//! group (paper §II-C), and also FS-Join's "PPJoin-style" comparison point.

use crate::index::InvertedIndex;
use crate::intersect::intersect_count_at_least;
use crate::measure::Measure;
use crate::pair::SimilarPair;
use ssj_common::FxHashMap;
use ssj_text::TokenSet;

/// Candidate accumulator state: matches seen, or pruned.
const PRUNED: u32 = u32::MAX;

/// Statistics from one PPJoin run, for filter-power reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PPJoinStats {
    /// Candidates that reached verification.
    pub verified: usize,
    /// Candidates killed by the position filter.
    pub position_pruned: usize,
    /// Result pairs.
    pub results: usize,
}

/// PPJoin self-join.
pub fn ppjoin_self_join<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> Vec<SimilarPair> {
    ppjoin_self_join_stats(records, measure, theta).0
}

/// PPJoin self-join, also returning pruning statistics.
pub fn ppjoin_self_join_stats<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> (Vec<SimilarPair>, PPJoinStats) {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    let mut order: Vec<&R> = records.iter().filter(|r| !r.tokens().is_empty()).collect();
    order.sort_unstable_by(|a, b| a.size().cmp(&b.size()).then(a.id().cmp(&b.id())));

    let mut index = InvertedIndex::new();
    let mut out = Vec::new();
    let mut stats = PPJoinStats::default();
    // candidate slot -> prefix-match count (or PRUNED).
    let mut acc: FxHashMap<u32, u32> = FxHashMap::default();

    for (slot, x) in order.iter().enumerate() {
        acc.clear();
        let min_len = measure.min_partner_len(theta, x.size());
        let probe = measure.probe_prefix_len(theta, x.size());
        for (i, &w) in x.tokens()[..probe].iter().enumerate() {
            for p in index.get(w) {
                let y = order[p.slot as usize];
                if y.size() < min_len {
                    continue;
                }
                let entry = acc.entry(p.slot).or_insert(0);
                if *entry == PRUNED {
                    continue;
                }
                let alpha = measure.min_overlap(theta, x.size(), y.size()) as u32;
                // Position filter: best-possible final overlap.
                let remaining = (x.size() - i - 1).min(y.size() - p.pos as usize - 1) as u32;
                if *entry + 1 + remaining >= alpha {
                    *entry += 1;
                } else {
                    *entry = PRUNED;
                    stats.position_pruned += 1;
                }
            }
        }
        for (&slot_y, &count) in &acc {
            if count == 0 || count == PRUNED {
                continue;
            }
            let y = order[slot_y as usize];
            let alpha = measure.min_overlap(theta, x.size(), y.size());
            stats.verified += 1;
            if let Some(c) = intersect_count_at_least(x.tokens(), y.tokens(), alpha) {
                if measure.passes(c, x.size(), y.size(), theta) {
                    out.push(SimilarPair::new(
                        x.id(),
                        y.id(),
                        measure.score(c, x.size(), y.size()),
                    ));
                }
            }
        }
        let index_prefix = measure.index_prefix_len(theta, x.size());
        for (pos, &w) in x.tokens()[..index_prefix].iter().enumerate() {
            index.push(w, slot as u32, pos as u32);
        }
    }
    stats.results = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allpairs::allpairs_self_join;
    use crate::naive::naive_self_join;
    use crate::pair::compare_results;
    use ssj_text::Record;

    fn rec(id: u32, tokens: &[u32]) -> Record {
        Record::new(id, tokens.to_vec())
    }

    fn random_records(n: u32, vocab: u32, max_len: u32, seed: u64) -> Vec<Record> {
        let mut state = seed;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        (0..n)
            .map(|id| {
                let len = 2 + next(max_len);
                rec(id, &(0..len).map(|_| next(vocab)).collect::<Vec<_>>())
            })
            .collect()
    }

    #[test]
    fn agrees_with_oracle_and_allpairs() {
        let records = random_records(150, 80, 24, 999);
        for m in Measure::all() {
            for &theta in &[0.5, 0.7, 0.85, 0.95] {
                let want = naive_self_join(&records, m, theta);
                let (got, _) = ppjoin_self_join_stats(&records, m, theta);
                compare_results(&got, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("ppjoin {m:?} θ={theta}: {e}"));
                let ap = allpairs_self_join(&records, m, theta);
                compare_results(&ap, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("allpairs {m:?} θ={theta}: {e}"));
            }
        }
    }

    #[test]
    fn position_filter_prunes_late_prefix_matches() {
        // θ=0.5, both length 20 ⇒ α = ⌈0.5/1.5·40⌉ = 14, probe prefix 11,
        // index prefix 7. The single shared token sits at index position 6
        // of y and probe position 9 of x, so on the first (only) match the
        // positional bound is 1 + min(20−10, 20−7) = 11 < 14 ⇒ prune.
        let y_toks: Vec<u32> = (1000..1006u32)
            .chain([50_000])
            .chain(60_000..60_013)
            .collect();
        let x_toks: Vec<u32> = (2000..2009u32)
            .chain([50_000])
            .chain(70_000..70_010)
            .collect();
        let records = vec![rec(0, &y_toks), rec(1, &x_toks)];
        let (out, stats) = ppjoin_self_join_stats(&records, Measure::Jaccard, 0.5);
        assert!(out.is_empty());
        assert_eq!(stats.position_pruned, 1, "{stats:?}");
        assert_eq!(stats.verified, 0, "{stats:?}");
    }

    #[test]
    fn near_duplicates_found_with_scores() {
        let recs = vec![
            rec(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            rec(1, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 11]),
        ];
        let out = ppjoin_self_join(&recs, Measure::Jaccard, 0.8);
        assert_eq!(out.len(), 1);
        assert!((out[0].sim - 9.0 / 11.0).abs() < 1e-12);
    }
}
