//! MinHash signatures and LSH-banded approximate joins.
//!
//! The paper's conclusion names "approximate approaches" as future work;
//! this module provides the standard construction: `k` min-wise hashes per
//! record, banded into `b` bands of `r = k/b` rows. Records colliding in
//! at least one band become candidates; candidates are verified *exactly*,
//! so the result has perfect precision and tunable recall
//! (`P(candidate) = 1 − (1 − s^r)^b` for true similarity `s`).

use crate::intersect::intersect_count_merge;
use crate::measure::Measure;
use crate::pair::SimilarPair;
use ssj_common::hash::fx_hash_one;
use ssj_common::{FxHashMap, FxHashSet};
use ssj_text::TokenSet;

/// A family of `k` min-wise hash functions.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Create `k` hash functions, derived deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        MinHasher {
            seeds: (0..k as u64).map(|i| fx_hash_one(&(seed, i))).collect(),
        }
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// MinHash signature of a token set.
    pub fn signature(&self, tokens: &[u32]) -> Vec<u64> {
        self.seeds
            .iter()
            .map(|&s| {
                tokens
                    .iter()
                    .map(|&t| fx_hash_one(&(s, t)))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Estimate Jaccard similarity from two signatures.
    pub fn estimate(&self, a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "signatures from different families");
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

/// Configuration of the LSH join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Total hash functions `k = bands × rows`.
    pub bands: usize,
    /// Rows per band.
    pub rows: usize,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for LshConfig {
    /// 32 bands × 4 rows: recall > 99% at s = 0.8.
    fn default() -> Self {
        LshConfig {
            bands: 32,
            rows: 4,
            seed: 0x5EED,
        }
    }
}

impl LshConfig {
    /// Probability that a pair with true Jaccard `s` becomes a candidate.
    pub fn candidate_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

/// Approximate self-join: LSH-banded candidate generation with exact
/// verification. Every returned pair truly satisfies `sim ≥ θ` (perfect
/// precision); some qualifying pairs may be missed with probability
/// `1 − candidate_probability(sim)`.
pub fn lsh_self_join<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
    cfg: &LshConfig,
) -> Vec<SimilarPair> {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    let hasher = MinHasher::new(cfg.bands * cfg.rows, cfg.seed);
    let live: Vec<&R> = records.iter().filter(|r| !r.tokens().is_empty()).collect();
    let signatures: Vec<Vec<u64>> = live.iter().map(|r| hasher.signature(r.tokens())).collect();

    let mut candidates: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for band in 0..cfg.bands {
        buckets.clear();
        let lo = band * cfg.rows;
        for (slot, sig) in signatures.iter().enumerate() {
            let key = fx_hash_one(&(band as u64, &sig[lo..lo + cfg.rows]));
            buckets.entry(key).or_default().push(slot as u32);
        }
        for slots in buckets.values() {
            for i in 0..slots.len() {
                for &j in &slots[i + 1..] {
                    let (a, b) = (slots[i].min(j), slots[i].max(j));
                    candidates.insert((a, b));
                }
            }
        }
    }

    let mut out = Vec::new();
    for &(i, j) in &candidates {
        let (x, y) = (live[i as usize], live[j as usize]);
        let c = intersect_count_merge(x.tokens(), y.tokens());
        if measure.passes(c, x.size(), y.size(), theta) {
            out.push(SimilarPair::new(
                x.id(),
                y.id(),
                measure.score(c, x.size(), y.size()),
            ));
        }
    }
    out.sort_unstable_by_key(|p| p.ids());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_self_join;
    use crate::pair::id_pairs;
    use ssj_text::Record;

    fn rec(id: u32, tokens: &[u32]) -> Record {
        Record::new(id, tokens.to_vec())
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let h = MinHasher::new(16, 1);
        let a = h.signature(&[1, 5, 9]);
        let b = h.signature(&[1, 5, 9]);
        assert_eq!(a, b);
        assert_eq!(h.estimate(&a, &b), 1.0);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(512, 7);
        // |a∩b| = 50, |a∪b| = 100 -> jaccard 0.5.
        let a: Vec<u32> = (0..75).collect();
        let b: Vec<u32> = (25..100).collect();
        let est = h.estimate(&h.signature(&a), &h.signature(&b));
        assert!((est - 0.5).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 3);
        let est = h.estimate(
            &h.signature(&(0..50).collect::<Vec<_>>()),
            &h.signature(&(100..150).collect::<Vec<_>>()),
        );
        assert!(est < 0.1, "estimate {est}");
    }

    #[test]
    fn candidate_probability_is_sharp() {
        let cfg = LshConfig::default();
        assert!(cfg.candidate_probability(0.9) > 0.999);
        assert!(cfg.candidate_probability(0.8) > 0.99);
        assert!(cfg.candidate_probability(0.2) < 0.06);
    }

    #[test]
    fn lsh_join_has_perfect_precision() {
        // Random records: everything returned must pass the threshold
        // (verified), i.e. be a subset of the oracle.
        let mut state = 11u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        let records: Vec<Record> = (0..150)
            .map(|id| {
                rec(
                    id,
                    &(0..(3 + next(15))).map(|_| next(60)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let exact = id_pairs(&naive_self_join(&records, Measure::Jaccard, 0.7));
        let approx = id_pairs(&lsh_self_join(
            &records,
            Measure::Jaccard,
            0.7,
            &LshConfig::default(),
        ));
        for p in &approx {
            assert!(exact.contains(p), "false positive {p:?}");
        }
    }

    #[test]
    fn lsh_join_recall_is_high_at_default_config() {
        // Planted near-duplicates well above θ: recall should be ~100%.
        let mut records = Vec::new();
        for k in 0..40u32 {
            let base: Vec<u32> = (k * 100..k * 100 + 20).collect();
            records.push(rec(2 * k, &base));
            let mut copy = base.clone();
            copy[0] = 90_000 + k; // jaccard 19/21 ≈ 0.905
            records.push(rec(2 * k + 1, &copy));
        }
        let exact = id_pairs(&naive_self_join(&records, Measure::Jaccard, 0.85));
        assert_eq!(exact.len(), 40);
        let approx = id_pairs(&lsh_self_join(
            &records,
            Measure::Jaccard,
            0.85,
            &LshConfig::default(),
        ));
        let recall = approx.len() as f64 / exact.len() as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        let _ = MinHasher::new(0, 1);
    }
}
