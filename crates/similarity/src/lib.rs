//! Set-similarity measures and in-memory join algorithms.
//!
//! This crate is the single source of truth for the similarity math used by
//! FS-Join and all baselines:
//!
//! * [`measure`] — Jaccard / Dice / Cosine with exact threshold tests,
//!   minimum-overlap bounds (pairwise and partner-free), length windows,
//!   and probe/index prefix lengths;
//! * [`intersect`] — sorted-set intersection kernels (merge, galloping,
//!   hash, chunked branch-free) and symmetric-difference counting;
//! * [`bitmap`] — sound overlap upper bounds over the `TokenPool`'s
//!   hashed-bitmap plane, the lossless prune in front of every exact
//!   intersection (DESIGN.md §12);
//! * [`index`] — a positional inverted index over record prefixes;
//! * [`naive`] — the brute-force oracle every other algorithm is tested
//!   against;
//! * [`allpairs`], [`ppjoin`] — the classic prefix-filter joins; PPJoin
//!   (with the position filter) is also what RIDPairsPPJoin runs inside its
//!   reducers (paper §II-C).

pub mod allpairs;
pub mod bitmap;
pub mod index;
pub mod intersect;
pub mod measure;
pub mod minhash;
pub mod naive;
pub mod pair;
pub mod ppjoin;
pub mod ppjoin_plus;

pub use measure::Measure;
pub use pair::SimilarPair;
