//! PPJoin+ (Xiao, Wang, Lin, Yu — WWW'08): PPJoin extended with the
//! suffix filter.
//!
//! After the prefix + position filters admit a candidate, the suffix
//! filter probes the two records' *suffixes* (tokens after the matched
//! prefix position) with a recursive divide-and-conquer that lower-bounds
//! their Hamming distance; candidates whose bound already exceeds the
//! allowance `|s| + |t| − 2·minoverlap` are pruned before the (relatively
//! expensive) full verification. The filter is estimation-only — it never
//! changes results, which the oracle tests assert.

use crate::index::InvertedIndex;
use crate::intersect::intersect_count_at_least;
use crate::measure::Measure;
use crate::pair::SimilarPair;
use crate::ppjoin::PPJoinStats;
use ssj_common::FxHashMap;
use ssj_text::TokenSet;

/// Candidate accumulator state: matches seen, or pruned.
const PRUNED: u32 = u32::MAX;

/// Recursion depth for the suffix filter (the paper uses small depths;
/// deeper probes prune more but cost more).
const MAX_DEPTH: usize = 2;

/// Lower bound on the Hamming distance (symmetric difference) of two
/// sorted token arrays, by divide-and-conquer around the probe token
/// of the longer side's middle.
fn suffix_hamming_lower_bound(a: &[u32], b: &[u32], hmax: i64, depth: usize) -> i64 {
    let diff = (a.len() as i64 - b.len() as i64).abs();
    if depth == 0 || a.is_empty() || b.is_empty() || diff > hmax {
        return diff;
    }
    // Probe the middle token of the shorter array inside the longer one.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mid = short.len() / 2;
    let w = short[mid];
    let (sl, sr) = (&short[..mid], &short[mid + 1..]);
    // Position of w (or insertion point) in the long array.
    let pos = long.partition_point(|&t| t < w);
    let found = pos < long.len() && long[pos] == w;
    let (ll, lr) = if found {
        (&long[..pos], &long[pos + 1..])
    } else {
        (&long[..pos], &long[pos..])
    };
    let self_cost = i64::from(!found);
    // Recurse on both halves with a shared budget.
    let left = suffix_hamming_lower_bound(sl, ll, hmax - self_cost, depth - 1);
    let right = suffix_hamming_lower_bound(sr, lr, hmax - self_cost - left, depth - 1);
    left + right + self_cost
}

/// PPJoin+ self-join.
pub fn ppjoin_plus_self_join<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> Vec<SimilarPair> {
    ppjoin_plus_self_join_stats(records, measure, theta).0
}

/// PPJoin+ self-join, also returning pruning statistics (the
/// `position_pruned` field counts both position- and suffix-filter kills).
pub fn ppjoin_plus_self_join_stats<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> (Vec<SimilarPair>, PPJoinStats) {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    let mut order: Vec<&R> = records.iter().filter(|r| !r.tokens().is_empty()).collect();
    order.sort_unstable_by(|a, b| a.size().cmp(&b.size()).then(a.id().cmp(&b.id())));

    let mut index = InvertedIndex::new();
    let mut out = Vec::new();
    let mut stats = PPJoinStats::default();
    // candidate slot -> (prefix matches, probe position of last match in x,
    // position of last match in y).
    let mut acc: FxHashMap<u32, (u32, u32, u32)> = FxHashMap::default();

    for (slot, x) in order.iter().enumerate() {
        acc.clear();
        let min_len = measure.min_partner_len(theta, x.size());
        let probe = measure.probe_prefix_len(theta, x.size());
        for (i, &w) in x.tokens()[..probe].iter().enumerate() {
            for p in index.get(w) {
                let y = order[p.slot as usize];
                if y.size() < min_len {
                    continue;
                }
                let entry = acc.entry(p.slot).or_insert((0, 0, 0));
                if entry.0 == PRUNED {
                    continue;
                }
                let alpha = measure.min_overlap(theta, x.size(), y.size()) as u32;
                let remaining = (x.size() - i - 1).min(y.size() - p.pos as usize - 1) as u32;
                if entry.0 + 1 + remaining >= alpha {
                    *entry = (entry.0 + 1, i as u32, p.pos);
                } else {
                    entry.0 = PRUNED;
                    stats.position_pruned += 1;
                }
            }
        }
        for (&slot_y, &(count, xpos, ypos)) in &acc {
            if count == 0 || count == PRUNED {
                continue;
            }
            let y = order[slot_y as usize];
            let alpha = measure.min_overlap(theta, x.size(), y.size());
            // Suffix filter on the tokens after the last matched prefix
            // positions: a θ-pair's total Hamming distance is bounded by
            // |x|+|y|−2α; the prefixes account for some of it already.
            let hmax = (x.size() + y.size()) as i64 - 2 * alpha as i64;
            if hmax >= 0 {
                let xs = &x.tokens()[xpos as usize + 1..];
                let ys = &y.tokens()[ypos as usize + 1..];
                let bound = suffix_hamming_lower_bound(xs, ys, hmax, MAX_DEPTH);
                if bound > hmax {
                    stats.position_pruned += 1;
                    continue;
                }
            }
            stats.verified += 1;
            if let Some(c) = intersect_count_at_least(x.tokens(), y.tokens(), alpha) {
                if measure.passes(c, x.size(), y.size(), theta) {
                    out.push(SimilarPair::new(
                        x.id(),
                        y.id(),
                        measure.score(c, x.size(), y.size()),
                    ));
                }
            }
        }
        let index_prefix = measure.index_prefix_len(theta, x.size());
        for (pos, &w) in x.tokens()[..index_prefix].iter().enumerate() {
            index.push(w, slot as u32, pos as u32);
        }
    }
    stats.results = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_self_join;
    use crate::pair::compare_results;
    use crate::ppjoin::ppjoin_self_join_stats;
    use ssj_text::Record;

    fn rec(id: u32, tokens: &[u32]) -> Record {
        Record::new(id, tokens.to_vec())
    }

    fn random_records(n: u32, vocab: u32, max_len: u32, seed: u64) -> Vec<Record> {
        let mut state = seed;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        (0..n)
            .map(|id| {
                let len = 2 + next(max_len);
                rec(id, &(0..len).map(|_| next(vocab)).collect::<Vec<_>>())
            })
            .collect()
    }

    #[test]
    fn hamming_bound_is_sound_and_exact_on_leaves() {
        // Lower bound must never exceed the true symmetric difference.
        let mut state = 4u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        for _ in 0..300 {
            let mut a: Vec<u32> = (0..next(20)).map(|_| next(40)).collect();
            let mut b: Vec<u32> = (0..next(20)).map(|_| next(40)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let truth = crate::intersect::symmetric_difference_count(&a, &b) as i64;
            for depth in 0..4 {
                let bound = suffix_hamming_lower_bound(&a, &b, 1_000, depth);
                assert!(bound <= truth, "depth={depth} bound={bound} truth={truth}");
            }
        }
    }

    #[test]
    fn identical_suffixes_bound_zero() {
        let a = [1, 2, 3, 4, 5];
        assert_eq!(suffix_hamming_lower_bound(&a, &a, 100, 3), 0);
    }

    #[test]
    fn agrees_with_oracle_and_plain_ppjoin() {
        let records = random_records(150, 70, 22, 31);
        for m in Measure::all() {
            for &theta in &[0.6, 0.8, 0.9] {
                let want = naive_self_join(&records, m, theta);
                let (got, plus_stats) = ppjoin_plus_self_join_stats(&records, m, theta);
                compare_results(&got, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("ppjoin+ {m:?} θ={theta}: {e}"));
                // Suffix filter must only shrink the verified set.
                let (_, base_stats) = ppjoin_self_join_stats(&records, m, theta);
                assert!(
                    plus_stats.verified <= base_stats.verified,
                    "{m:?} θ={theta}: {} vs {}",
                    plus_stats.verified,
                    base_stats.verified
                );
            }
        }
    }

    #[test]
    fn suffix_filter_actually_prunes() {
        // Records sharing a rare leading token but with wildly different
        // suffixes: position filter admits, suffix filter should kill.
        let mut records = Vec::new();
        for k in 0..60u32 {
            let mut toks = vec![0u32, 1];
            toks.extend((0..10).map(|i| 100 + k * 50 + i));
            records.push(rec(k, &toks));
        }
        let (out, plus_stats) = ppjoin_plus_self_join_stats(&records, Measure::Jaccard, 0.6);
        let (out_base, base_stats) = ppjoin_self_join_stats(&records, Measure::Jaccard, 0.6);
        assert_eq!(out.len(), out_base.len());
        assert!(
            plus_stats.verified < base_stats.verified,
            "suffix filter should cut verifications: {} vs {}",
            plus_stats.verified,
            base_stats.verified
        );
    }
}
