//! AllPairs (Bayardo et al., WWW'07): the basic prefix-filter join.
//!
//! Scan records in ascending length order; each probe record looks up its
//! probe-prefix tokens in an inverted index of previously seen records'
//! index prefixes, applies the length filter, and verifies candidates
//! exactly. No position filter — that is PPJoin's addition
//! ([`crate::ppjoin`]).

use crate::index::InvertedIndex;
use crate::intersect::intersect_count_merge;
use crate::measure::Measure;
use crate::pair::SimilarPair;
use ssj_common::FxHashSet;
use ssj_text::TokenSet;

/// Prefix-filter self-join, AllPairs style.
pub fn allpairs_self_join<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> Vec<SimilarPair> {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    // Scan order: ascending length, ties by id for determinism.
    let mut order: Vec<&R> = records.iter().filter(|r| !r.tokens().is_empty()).collect();
    order.sort_unstable_by(|a, b| a.size().cmp(&b.size()).then(a.id().cmp(&b.id())));

    let mut index = InvertedIndex::new();
    let mut out = Vec::new();
    let mut candidates: FxHashSet<u32> = FxHashSet::default();

    for (slot, x) in order.iter().enumerate() {
        candidates.clear();
        let min_len = measure.min_partner_len(theta, x.size());
        let probe = measure.probe_prefix_len(theta, x.size());
        for &w in &x.tokens()[..probe] {
            for p in index.get(w) {
                let y = order[p.slot as usize];
                // Indexed records are shorter or equal; only the lower
                // length bound needs checking.
                if y.size() >= min_len {
                    candidates.insert(p.slot);
                }
            }
        }
        for &slot_y in &candidates {
            let y = order[slot_y as usize];
            let c = intersect_count_merge(x.tokens(), y.tokens());
            if measure.passes(c, x.size(), y.size(), theta) {
                out.push(SimilarPair::new(
                    x.id(),
                    y.id(),
                    measure.score(c, x.size(), y.size()),
                ));
            }
        }
        let index_prefix = measure.index_prefix_len(theta, x.size());
        for (pos, &w) in x.tokens()[..index_prefix].iter().enumerate() {
            index.push(w, slot as u32, pos as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_self_join;
    use crate::pair::{compare_results, id_pairs};
    use ssj_text::Record;

    fn rec(id: u32, tokens: &[u32]) -> Record {
        Record::new(id, tokens.to_vec())
    }

    #[test]
    fn matches_basics() {
        let recs = vec![
            rec(0, &[1, 2, 3, 4, 5]),
            rec(1, &[1, 2, 3, 4, 6]),
            rec(2, &[10, 11, 12]),
            rec(3, &[]),
        ];
        let out = allpairs_self_join(&recs, Measure::Jaccard, 0.6);
        assert_eq!(id_pairs(&out), vec![(0, 1)]);
    }

    #[test]
    fn agrees_with_oracle_on_grid() {
        // Deterministic pseudo-random records; all measures and thresholds.
        let mut state = 12345u64;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        let records: Vec<Record> = (0..120)
            .map(|id| {
                let len = 2 + next(20);
                rec(id, &(0..len).map(|_| next(60)).collect::<Vec<_>>())
            })
            .collect();
        for m in Measure::all() {
            for &theta in &[0.5, 0.7, 0.8, 0.9] {
                let want = naive_self_join(&records, m, theta);
                let got = allpairs_self_join(&records, m, theta);
                compare_results(&got, &want, 1e-9)
                    .unwrap_or_else(|e| panic!("{m:?} θ={theta}: {e}"));
            }
        }
    }
}
