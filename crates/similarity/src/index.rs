//! A positional inverted index over token prefixes.
//!
//! Maps a token to the postings `(record slot, position)` of records whose
//! *indexed prefix* contains the token. Positions enable PPJoin's position
//! filter; slots are indices into whatever record array the caller scans.

use ssj_common::FxHashMap;

/// One posting: which record, and where in that record the token sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Caller-defined record slot (index into the scan order).
    pub slot: u32,
    /// 0-based token position within the record.
    pub pos: u32,
}

/// Token → postings map.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    lists: FxHashMap<u32, Vec<Posting>>,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posting for `token` (callers append in scan order, so lists
    /// stay sorted by slot).
    #[inline]
    pub fn push(&mut self, token: u32, slot: u32, pos: u32) {
        self.lists
            .entry(token)
            .or_default()
            .push(Posting { slot, pos });
    }

    /// Postings for a token (empty slice when unseen).
    #[inline]
    pub fn get(&self, token: u32) -> &[Posting] {
        self.lists.get(&token).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct indexed tokens.
    pub fn distinct_tokens(&self) -> usize {
        self.lists.len()
    }

    /// Total number of postings.
    pub fn total_postings(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut idx = InvertedIndex::new();
        idx.push(7, 0, 0);
        idx.push(7, 3, 1);
        idx.push(9, 1, 0);
        assert_eq!(
            idx.get(7),
            &[Posting { slot: 0, pos: 0 }, Posting { slot: 3, pos: 1 }]
        );
        assert_eq!(idx.get(9).len(), 1);
        assert!(idx.get(42).is_empty());
        assert_eq!(idx.distinct_tokens(), 2);
        assert_eq!(idx.total_postings(), 3);
    }
}
