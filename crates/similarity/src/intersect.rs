//! Sorted-set intersection kernels.
//!
//! All records are strictly ascending token-rank vectors, so overlap counts
//! reduce to sorted-list intersection. Several kernels are provided; the
//! joins default to [`intersect_count_adaptive`], which picks galloping or
//! the chunked branch-free merge by size ratio (the perf-book's "know your
//! access pattern" advice — galloping wins when one list is much shorter).
//! Call sites additionally consult the bitmap bound
//! (`crate::bitmap::overlap_upper_bound`) *before* any exact kernel runs,
//! so the kernels here only see pairs the bitmap verdict could not settle
//! (DESIGN.md §12).

/// Linear merge intersection count.
pub fn intersect_count_merge(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping (exponential-search) intersection count; efficient when
/// `a.len() << b.len()`.
pub fn intersect_count_gallop(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0;
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe for the first index with large[idx] >= x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        let hi = hi.min(large.len());
        let idx = lo + large[lo..hi].partition_point(|&y| y < x);
        if idx < large.len() && large[idx] == x {
            count += 1;
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

/// Hash-probe intersection count (no order requirement on `b`); used as a
/// baseline in micro-benchmarks.
pub fn intersect_count_hash(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let set: ssj_common::FxHashSet<u32> = small.iter().copied().collect();
    large.iter().filter(|t| set.contains(t)).count()
}

/// Merge-step window for the chunked kernels: small enough that a skipped
/// chunk always fits in one cache line of `u32`s, large enough to amortize
/// the chunk-boundary comparisons.
const CHUNK: usize = 16;

/// Chunked branch-free intersection count.
///
/// Two ideas over the classic three-way merge:
///
/// * **chunk skipping** — when an entire [`CHUNK`]-element window of one
///   side sits strictly below the other side's cursor element, the window
///   is skipped with a single comparison instead of `CHUNK` merge steps
///   (this is where sparse-overlap pairs win big);
/// * **branch-free stepping** — inside overlapping windows the cursors
///   advance by comparison *results* (`i += (x <= y) as usize`), not by a
///   three-way branch, so the hot loop has no unpredictable branches and
///   autovectorizes into flag-arithmetic sequences.
pub fn intersect_count_chunked(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0usize;
    while i < a.len() && j < b.len() {
        // Chunk skip: hop over whole runs that end before the other
        // cursor's value. Checked once per burst, not per element.
        while i + CHUNK <= a.len() && a[i + CHUNK - 1] < b[j] {
            i += CHUNK;
        }
        while i < a.len() && j + CHUNK <= b.len() && b[j + CHUNK - 1] < a[i] {
            j += CHUNK;
        }
        // Bounded burst: up to CHUNK merge steps without re-testing the
        // skip conditions. (A fully branchless compare-and-advance step
        // was measured 2.4× slower here than the three-way compare —
        // LLVM already lowers this merge well; the win is the skip.)
        let mut k = CHUNK;
        while k > 0 && i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
            k -= 1;
        }
    }
    count
}

/// Size-ratio-adaptive intersection: galloping when one side is ≥ 16×
/// shorter, the chunked branch-free merge otherwise. Bitmap dispatch
/// happens *above* this function: call sites consult
/// `crate::bitmap::overlap_upper_bound` first and only fall through here
/// when the bound cannot settle the pair.
#[inline]
pub fn intersect_count_adaptive(a: &[u32], b: &[u32]) -> usize {
    let (min, max) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if min * 16 < max {
        intersect_count_gallop(a, b)
    } else {
        intersect_count_chunked(a, b)
    }
}

/// Chunked intersection with early exit: returns `None` as soon as the
/// overlap provably cannot reach `required` (the positional-upper-bound
/// trick used in PPJoin verification), otherwise the exact count — the
/// verdict is identical to running the full merge and comparing, only
/// cheaper. The remaining-possible bound is re-checked once per
/// [`CHUNK`]-step burst rather than per element, keeping the inner loop
/// branch-free.
pub fn intersect_count_at_least(a: &[u32], b: &[u32], required: usize) -> Option<usize> {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0usize;
    while i < a.len() && j < b.len() {
        // Upper bound on the final overlap from the remaining suffixes.
        let remaining = (a.len() - i).min(b.len() - j);
        if count + remaining < required {
            return None;
        }
        if i + CHUNK <= a.len() && a[i + CHUNK - 1] < b[j] {
            i += CHUNK;
            continue;
        }
        if j + CHUNK <= b.len() && b[j + CHUNK - 1] < a[i] {
            j += CHUNK;
            continue;
        }
        // Branch-free burst: up to CHUNK merge steps between bound checks.
        let mut steps = 0;
        while i < a.len() && j < b.len() && steps < CHUNK {
            let (x, y) = (a[i], b[j]);
            count += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
            steps += 1;
        }
    }
    if count >= required {
        Some(count)
    } else {
        None
    }
}

/// Symmetric-difference size `|a − b| + |b − a|` of two sorted sets
/// (the quantity in the paper's SegD-Filter, Lemma 4), via the chunked
/// kernel. When record bitmaps are at hand, check
/// `crate::bitmap::symmetric_difference_lower_bound` first — if the
/// lower bound already exceeds an allowed difference, the exact count
/// is unnecessary.
pub fn symmetric_difference_count(a: &[u32], b: &[u32]) -> usize {
    a.len() + b.len() - 2 * intersect_count_chunked(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Kernel = fn(&[u32], &[u32]) -> usize;

    const KERNELS: [(&str, Kernel); 5] = [
        ("merge", intersect_count_merge),
        ("gallop", intersect_count_gallop),
        ("hash", intersect_count_hash),
        ("chunked", intersect_count_chunked),
        ("adaptive", intersect_count_adaptive),
    ];

    #[test]
    fn kernels_agree_on_basics() {
        let cases: &[(&[u32], &[u32], usize)] = &[
            (&[], &[], 0),
            (&[1], &[], 0),
            (&[1, 2, 3], &[2, 3, 4], 2),
            (&[1, 5, 9], &[2, 6, 10], 0),
            (&[1, 2, 3], &[1, 2, 3], 3),
            (&[1], &[0, 1, 2, 3, 4, 5, 6, 7, 8], 1),
        ];
        for (name, f) in KERNELS {
            for (a, b, want) in cases {
                assert_eq!(f(a, b), *want, "{name} on {a:?} ∩ {b:?}");
                assert_eq!(f(b, a), *want, "{name} symmetric");
            }
        }
    }

    #[test]
    fn gallop_skewed_sizes() {
        let small: Vec<u32> = vec![100, 5000, 99999];
        let large: Vec<u32> = (0..100_000).collect();
        assert_eq!(intersect_count_gallop(&small, &large), 3);
        assert_eq!(intersect_count_gallop(&large, &small), 3);
    }

    #[test]
    fn at_least_early_exit_and_exact() {
        let a = [1, 2, 3, 4, 5];
        let b = [2, 4, 6, 8, 10];
        assert_eq!(intersect_count_at_least(&a, &b, 2), Some(2));
        assert_eq!(intersect_count_at_least(&a, &b, 1), Some(2));
        assert_eq!(intersect_count_at_least(&a, &b, 3), None);
        assert_eq!(intersect_count_at_least(&a, &b, 0), Some(2));
        assert_eq!(intersect_count_at_least(&[], &b, 1), None);
        assert_eq!(intersect_count_at_least(&[], &[], 0), Some(0));
    }

    #[test]
    fn symmetric_difference() {
        assert_eq!(symmetric_difference_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(symmetric_difference_count(&[1, 2], &[1, 2]), 0);
        assert_eq!(symmetric_difference_count(&[], &[7]), 1);
    }

    #[test]
    fn randomized_cross_check() {
        // Pseudo-random sets via a simple LCG; all kernels must agree.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for _ in 0..200 {
            let mut a: Vec<u32> = (0..next(50)).map(|_| next(200)).collect();
            let mut b: Vec<u32> = (0..next(50)).map(|_| next(200)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let want = intersect_count_merge(&a, &b);
            assert_eq!(intersect_count_gallop(&a, &b), want);
            assert_eq!(intersect_count_hash(&a, &b), want);
            assert_eq!(intersect_count_chunked(&a, &b), want);
            assert_eq!(intersect_count_adaptive(&a, &b), want);
            assert_eq!(intersect_count_at_least(&a, &b, want), Some(want));
            if want > 0 {
                assert_eq!(intersect_count_at_least(&a, &b, want + 1), None);
            }
        }
    }

    #[test]
    fn chunked_agrees_on_chunk_boundary_shapes() {
        // Exactly one chunk, one-past, disjoint whole-chunk skips, and
        // identical multi-chunk inputs — the shapes where chunk-boundary
        // arithmetic can go wrong.
        let chunk: Vec<u32> = (0..16).collect();
        let chunk_plus: Vec<u32> = (0..17).collect();
        let high: Vec<u32> = (1000..1033).collect();
        let long: Vec<u32> = (0..4096).map(|i| i * 3).collect();
        let cases: [(&[u32], &[u32]); 6] = [
            (&chunk, &chunk),
            (&chunk, &chunk_plus),
            (&chunk, &high),
            (&long, &long),
            (&long, &chunk),
            (&long, &high),
        ];
        for (a, b) in cases {
            let want = intersect_count_merge(a, b);
            assert_eq!(
                intersect_count_chunked(a, b),
                want,
                "{}∩{}",
                a.len(),
                b.len()
            );
            assert_eq!(intersect_count_chunked(b, a), want);
            assert_eq!(intersect_count_at_least(a, b, want), Some(want));
            assert_eq!(
                symmetric_difference_count(a, b),
                a.len() + b.len() - 2 * want
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
            // Deliberately includes very short and moderately long sets so
            // the adaptive heuristic exercises both of its branches.
            prop::collection::vec(0u32..500, 0..120).prop_map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
        }

        /// Long sorted sets (up to >4096 tokens) with tunable density, so
        /// the chunk-skip fast path actually fires on disjoint stretches.
        fn long_sorted_set() -> impl Strategy<Value = Vec<u32>> {
            (0u32..4, 4096usize..5000)
                .prop_map(|(offset, len)| (0..len as u32).map(|i| i * 7 + offset).collect())
        }

        proptest! {
            #[test]
            fn merge_and_gallop_agree(a in sorted_set(), b in sorted_set()) {
                let want = intersect_count_merge(&a, &b);
                prop_assert_eq!(intersect_count_gallop(&a, &b), want);
                prop_assert_eq!(intersect_count_gallop(&b, &a), want);
                prop_assert_eq!(intersect_count_adaptive(&a, &b), want);
            }

            /// The chunked kernels are drop-in replacements for the scalar
            /// merge: identical counts, identical at-least verdicts —
            /// including empty, disjoint, and identical inputs (the
            /// strategy generates empties; disjoint and identical pairs are
            /// checked explicitly for every sample).
            #[test]
            fn chunked_kernels_agree_with_scalar_merge(
                a in sorted_set(),
                b in sorted_set(),
                required in 0usize..130,
            ) {
                let want = intersect_count_merge(&a, &b);
                prop_assert_eq!(intersect_count_chunked(&a, &b), want);
                prop_assert_eq!(intersect_count_chunked(&b, &a), want);
                prop_assert_eq!(
                    symmetric_difference_count(&a, &b),
                    a.len() + b.len() - 2 * want
                );
                let verdict = intersect_count_at_least(&a, &b, required);
                prop_assert_eq!(
                    verdict,
                    if want >= required { Some(want) } else { None }
                );
                // Identical inputs.
                prop_assert_eq!(intersect_count_chunked(&a, &a), a.len());
                // Provably disjoint inputs (shift b past a's universe).
                let shifted: Vec<u32> = b.iter().map(|&t| t + 1000).collect();
                prop_assert_eq!(intersect_count_chunked(&a, &shifted), 0);
            }

            /// Same agreement on ≥4096-token inputs, where chunk skipping
            /// and the burst loop dominate.
            #[test]
            fn chunked_kernels_agree_on_large_inputs(
                a in long_sorted_set(),
                b in long_sorted_set(),
            ) {
                let want = intersect_count_merge(&a, &b);
                prop_assert_eq!(intersect_count_chunked(&a, &b), want);
                prop_assert_eq!(intersect_count_at_least(&a, &b, want), Some(want));
                if want > 0 {
                    prop_assert_eq!(intersect_count_at_least(&a, &b, want + 1), None);
                }
            }
        }
    }
}
