//! Bitmap prune bounds over the `TokenPool`'s hashed-bitmap plane.
//!
//! Every verify hot path in the workspace bottoms out in an exact sorted
//! intersection; these kernels compute a *sound upper bound* on that
//! intersection from two fixed-width hashed token bitmaps first, so the
//! caller can skip the exact merge whenever the bound already falls below
//! the required overlap (PPJoin's α). Pruning on an upper bound is
//! lossless by construction: every surviving pair still runs the exact
//! kernel, so results, digests, and goldens are bit-identical with the
//! prune on or off.
//!
//! ## Why XOR, not AND
//!
//! The obvious bound — `popcount(a & b)` — is **not** an upper bound on
//! `|A ∩ B|`: hashing is lossy, so several shared tokens can collide into
//! one bit and the AND-popcount undercounts (two identical 50-token sets
//! in 128 bits share ~41 bits, not 50). The sound form, per the Bitmap
//! Filter paper (arXiv 1711.07295), goes through the symmetric
//! difference: a bit set in `a ^ b` is set in exactly one of the two
//! maps, so at least one token hashes there from exactly one of the two
//! sets — a token of `A Δ B` — and distinct bits witness distinct tokens
//! (each token sets exactly one bit). Hence
//!
//! ```text
//! popcount(a ^ b) ≤ |A Δ B|
//! |A ∩ B| = (|A| + |B| − |A Δ B|) / 2 ≤ (|A| + |B| − popcount(a ^ b)) / 2
//! ```
//!
//! The loops below are plain `u64` lane walks (no `unsafe`, fixed small
//! trip counts known at the call site) that the autovectorizer turns into
//! wide XOR + popcount sequences.

/// Sound upper bound on `|A ∩ B|` from the two records' hashed bitmaps
/// and exact lengths. Both slices must come from pools (or
/// `fill_bitmap`) of the same width; unequal widths panic in debug via
/// the `zip` length mismatch being silently truncating — callers uphold
/// equal widths (the pool fixes width at construction).
///
/// Guarantee: `overlap_upper_bound(..) >= intersect_count(A, B)` for any
/// token→bit hash, any width. `0` means the records provably share no
/// token.
#[inline]
pub fn overlap_upper_bound(a: &[u64], b: &[u64], len_a: usize, len_b: usize) -> usize {
    let hamming = symmetric_difference_lower_bound(a, b);
    // len_a + len_b ≥ |AΔB| ≥ hamming, so the subtraction cannot wrap.
    (len_a + len_b - hamming) / 2
}

/// Sound lower bound on `|A Δ B|`: the Hamming distance of the two
/// bitmaps (see module docs for why each differing bit witnesses a
/// distinct symmetric-difference token).
#[inline]
pub fn symmetric_difference_lower_bound(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len(), "bitmap widths must match");
    let mut ones = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        ones += (x ^ y).count_ones();
    }
    ones as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::intersect_count_merge;
    use proptest::prelude::*;
    use ssj_text::TokenPool;

    fn sorted_set(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(0u32..10_000, 0..max_len).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    #[test]
    fn identical_sets_bound_is_exact_length() {
        // The collision regime that breaks AND-popcount: 50 tokens in 128
        // bits. XOR of identical bitmaps is zero, so the bound is the
        // exact overlap — never below it.
        let tokens: Vec<u32> = (0..50).map(|i| i * 37).collect();
        let mut pool = TokenPool::with_bitmap_bits(128).unwrap();
        pool.push(&tokens);
        let ub = overlap_upper_bound(pool.bitmap_of(0), pool.bitmap_of(0), 50, 50);
        assert_eq!(ub, 50);
        assert_eq!(
            symmetric_difference_lower_bound(pool.bitmap_of(0), pool.bitmap_of(0)),
            0
        );
    }

    #[test]
    fn disjoint_small_sets_prune_to_zero_at_wide_width() {
        // Two disjoint 3-token sets in 512 bits almost surely hash to 6
        // distinct bits; the bound then equals the true overlap, 0.
        let mut pool = TokenPool::with_bitmap_bits(512).unwrap();
        pool.push(&[1, 2, 3]);
        pool.push(&[1000, 2000, 3000]);
        let ub = overlap_upper_bound(pool.bitmap_of(0), pool.bitmap_of(1), 3, 3);
        assert_eq!(ub, 0, "6 distinct bits → (3 + 3 − 6) / 2 = 0");
    }

    proptest! {
        /// The hard invariant the whole prune layer rests on: the bitmap
        /// bound never falls below the exact overlap, at any width, on
        /// the production pool hash.
        #[test]
        fn upper_bound_dominates_exact_overlap(
            a in sorted_set(200),
            b in sorted_set(200),
            width_words in 1usize..8,
        ) {
            let mut pool = TokenPool::with_bitmap_bits(width_words * 64).unwrap();
            pool.push(&a);
            pool.push(&b);
            let exact = intersect_count_merge(&a, &b);
            let ub = overlap_upper_bound(
                pool.bitmap_of(0), pool.bitmap_of(1), a.len(), b.len(),
            );
            prop_assert!(
                ub >= exact,
                "bound {ub} < exact {exact} (|a|={}, |b|={}, width={})",
                a.len(), b.len(), width_words * 64,
            );
            // And the Hamming form never overestimates the symmetric
            // difference.
            let sym = a.len() + b.len() - 2 * exact;
            let lb = symmetric_difference_lower_bound(pool.bitmap_of(0), pool.bitmap_of(1));
            prop_assert!(lb <= sym, "hamming {lb} > |AΔB| {sym}");
        }
    }
}
