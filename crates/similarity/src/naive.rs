//! The brute-force oracle: exact all-pairs join.
//!
//! Quadratic in the number of records; it exists to define ground truth for
//! every other algorithm's tests and for the filter-power measurements
//! (paper Table IV counts survivors relative to it).

use crate::intersect::intersect_count_merge;
use crate::measure::Measure;
use crate::pair::SimilarPair;
use ssj_text::TokenSet;

/// Exact self-join by exhaustive pairwise comparison (with only the trivial
/// length-window skip, which never changes results). Generic over the
/// record representation: owned [`ssj_text::Record`]s and pooled
/// [`ssj_text::RecordView`]s join identically.
pub fn naive_self_join<R: TokenSet>(
    records: &[R],
    measure: Measure,
    theta: f64,
) -> Vec<SimilarPair> {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    let mut out = Vec::new();
    for i in 0..records.len() {
        let s = &records[i];
        if s.tokens().is_empty() {
            continue;
        }
        for t in &records[i + 1..] {
            if t.tokens().is_empty() {
                continue;
            }
            let (short, long) = if s.size() <= t.size() { (s, t) } else { (t, s) };
            if short.size() < measure.min_partner_len(theta, long.size()) {
                continue;
            }
            let c = intersect_count_merge(s.tokens(), t.tokens());
            if measure.passes(c, s.size(), t.size(), theta) {
                out.push(SimilarPair::new(
                    s.id(),
                    t.id(),
                    measure.score(c, s.size(), t.size()),
                ));
            }
        }
    }
    out
}

/// Exact R×S join (records from different collections; ids must not clash —
/// callers offset one side's ids).
pub fn naive_rs_join<R: TokenSet, S: TokenSet>(
    r: &[R],
    s: &[S],
    measure: Measure,
    theta: f64,
) -> Vec<SimilarPair> {
    assert!(
        (0.0..=1.0).contains(&theta) && theta > 0.0,
        "θ must be in (0,1]"
    );
    let mut out = Vec::new();
    for x in r {
        if x.tokens().is_empty() {
            continue;
        }
        for y in s {
            if y.tokens().is_empty() {
                continue;
            }
            assert_ne!(x.id(), y.id(), "R and S record ids must be disjoint");
            let (short, long) = if x.size() <= y.size() {
                (x.size(), y.size())
            } else {
                (y.size(), x.size())
            };
            if short < measure.min_partner_len(theta, long) {
                continue;
            }
            let c = intersect_count_merge(x.tokens(), y.tokens());
            if measure.passes(c, x.size(), y.size(), theta) {
                out.push(SimilarPair::new(
                    x.id(),
                    y.id(),
                    measure.score(c, x.size(), y.size()),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::id_pairs;
    use ssj_text::Record;

    fn rec(id: u32, tokens: &[u32]) -> Record {
        Record::new(id, tokens.to_vec())
    }

    #[test]
    fn finds_exact_duplicates() {
        let recs = vec![rec(0, &[1, 2, 3]), rec(1, &[1, 2, 3]), rec(2, &[9, 10, 11])];
        let out = naive_self_join(&recs, Measure::Jaccard, 0.99);
        assert_eq!(id_pairs(&out), vec![(0, 1)]);
        assert!((out[0].sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_separates() {
        // jac({1,2,3,4},{2,3,4,5}) = 3/5 = 0.6
        let recs = vec![rec(0, &[1, 2, 3, 4]), rec(1, &[2, 3, 4, 5])];
        assert_eq!(naive_self_join(&recs, Measure::Jaccard, 0.6).len(), 1);
        assert_eq!(naive_self_join(&recs, Measure::Jaccard, 0.61).len(), 0);
    }

    #[test]
    fn empty_records_never_match() {
        let recs = vec![rec(0, &[]), rec(1, &[]), rec(2, &[1])];
        assert!(naive_self_join(&recs, Measure::Jaccard, 0.5).is_empty());
    }

    #[test]
    fn measures_differ() {
        // |s|=2,|t|=4,c=2: jac=0.5, dice=2*2/6=0.667, cos=2/sqrt(8)=0.707
        let recs = vec![rec(0, &[1, 2]), rec(1, &[1, 2, 3, 4])];
        assert_eq!(naive_self_join(&recs, Measure::Jaccard, 0.6).len(), 0);
        assert_eq!(naive_self_join(&recs, Measure::Dice, 0.6).len(), 1);
        assert_eq!(naive_self_join(&recs, Measure::Cosine, 0.7).len(), 1);
    }

    #[test]
    fn rs_join_crosses_only() {
        let r = vec![rec(0, &[1, 2, 3])];
        let s = vec![rec(10, &[1, 2, 3]), rec(11, &[1, 2, 3])];
        // The two identical s-records must NOT pair with each other.
        let out = naive_rs_join(&r, &s, Measure::Jaccard, 0.9);
        assert_eq!(id_pairs(&out), vec![(0, 10), (0, 11)]);
    }

    #[test]
    #[should_panic(expected = "θ must be in")]
    fn zero_theta_rejected() {
        let _ = naive_self_join::<Record>(&[], Measure::Jaccard, 0.0);
    }
}
