//! The acceptance bar for "near-zero cost when disabled": creating and
//! dropping spans (including attaching fields) with no collector installed
//! must perform zero heap allocations.
//!
//! This file intentionally holds a single test: the counting allocator is
//! process-global, and a sibling test running on another harness thread
//! would pollute the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_allocate_nothing() {
    assert!(ssj_observe::uninstall_collector().is_none());

    // Warm up any lazy statics on the span path (the collector-slot
    // OnceLock initializes its Mutex on first touch).
    drop(ssj_observe::span("warmup", "warmup"));

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let s = ssj_observe::span("mr.task", "map")
            .field("index", i)
            .field("records", 12345u64);
        drop(s);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled span path must not touch the heap"
    );

    // Sanity check the counter actually counts.
    let before = ALLOCS.load(Ordering::Relaxed);
    let v: Vec<u8> = Vec::with_capacity(64);
    drop(v);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(after > before, "counting allocator is wired in");
}
