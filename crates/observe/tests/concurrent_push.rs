//! Concurrency coverage for `Collector::push` → Chrome export ordering.
//!
//! The collector's event buffer is append-ordered by whichever thread won
//! the lock, so the raw vector order is nondeterministic under concurrent
//! `push`. The exported trace must not be: `ChromeTrace::to_json` has to
//! produce monotonic timestamps per (pid, tid) lane and a byte-identical
//! document no matter how the pushes interleaved.

use std::sync::{Arc, Barrier, Mutex};

use ssj_observe::json::Value;
use ssj_observe::{
    install_collector, span, uninstall_collector, ChromeTrace, Collector, TraceEvent,
};

fn ev(name: String, cat: &'static str, pid: u32, tid: u32, ts: u64, dur: u64) -> TraceEvent {
    TraceEvent {
        name,
        cat,
        pid,
        tid,
        ts_us: ts,
        dur_us: dur,
        args: vec![],
    }
}

/// Push the same logical event set from `threads` racing threads and
/// return the exported JSON.
fn racing_export(threads: usize, per_thread: usize) -> String {
    let c = Arc::new(Collector::new());
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    // Several threads share each (pid, tid) lane, and the
                    // final event of every thread collides exactly on
                    // (pid, tid, ts, dur) so only the cat/name tie-break
                    // can order it.
                    let lane = (t % 3) as u32;
                    c.push(ev(format!("e-{t}-{i}"), "race", 1, lane, (i * 7) as u64, 3));
                }
                c.push(ev(format!("tail-{t}"), "race", 1, 0, 999, 1));
            });
        }
    });
    ChromeTrace::from_collector(&c).to_json()
}

#[test]
fn concurrent_push_exports_deterministically() {
    let reference = racing_export(8, 200);
    // Re-run the race several times: whatever interleaving the scheduler
    // picks, the export must be byte-identical.
    for round in 0..5 {
        let json = racing_export(8, 200);
        assert_eq!(json, reference, "export diverged on round {round}");
    }
}

#[test]
fn concurrent_push_exports_monotonic_lanes() {
    let json = racing_export(6, 150);
    let doc = Value::parse(&json).expect("export parses as JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut last: std::collections::BTreeMap<(u64, u64), u64> = std::collections::BTreeMap::new();
    let mut seen = 0usize;
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let lane = (
            e.get("pid").unwrap().as_u64().unwrap(),
            e.get("tid").unwrap().as_u64().unwrap(),
        );
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        let prev = last.insert(lane, ts).unwrap_or(0);
        assert!(ts >= prev, "lane {lane:?} went backwards: {prev} -> {ts}");
        seen += 1;
    }
    assert_eq!(seen, 6 * 150 + 6, "all pushed events exported");
}

#[test]
fn concurrent_real_spans_export_monotonic_lanes() {
    // Same property through the full span API against the global
    // collector: worker threads opening/closing spans concurrently.
    static GLOBAL: Mutex<()> = Mutex::new(());
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());

    let c = install_collector();
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                for i in 0..50 {
                    let _sp = span("test.race", "work").field("t", t as u64).field("i", i);
                    std::hint::black_box(i * t);
                }
            });
        }
    });
    uninstall_collector();

    let json = ChromeTrace::from_collector(&c).to_json();
    let doc = Value::parse(&json).expect("export parses as JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut last: std::collections::BTreeMap<(u64, u64), u64> = std::collections::BTreeMap::new();
    let mut spans = 0usize;
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let lane = (
            e.get("pid").unwrap().as_u64().unwrap(),
            e.get("tid").unwrap().as_u64().unwrap(),
        );
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        let prev = last.insert(lane, ts).unwrap_or(0);
        assert!(ts >= prev, "lane {lane:?} went backwards: {prev} -> {ts}");
        spans += 1;
    }
    assert_eq!(spans, 4 * 50);
}
