//! Plan-aware profile analysis: DAG reconstruction, critical path, slack
//! and concurrency from a task-level trace.
//!
//! Input is a flat span list — either live [`TraceEvent`]s from a
//! [`Collector`] or a re-parsed `trace.json` — in which the plan layers
//! tag every task span with `(plan, run, stage, partition, attempt)` and
//! every stage/job span with `(plan, run, stage, upstream)`. Real
//! `PlanRunner` traces (cat `mr.*`, pid `HOST_PID`) and simulated
//! `ClusterModel::simulate_plan` timelines (cat `sim.*`, synthetic pids)
//! use the same arg names, so one analysis works on both.
//!
//! **Critical path.** Walk backward from the task with the latest end.
//! A task's predecessors are its *logical* dependencies (a reduce depends
//! on every map of its stage; a map on partition `p` of a stage with
//! upstream `u` depends on reduce `p` of stage `u`) plus its *resource*
//! predecessor (the latest-ending earlier task on the same `(pid, tid)`
//! execution lane). Taking the latest-ending predecessor at every step
//! yields the chain that bounds wall-clock: whenever a task was not
//! waiting on data it was waiting on its lane, so the chain extends back
//! to the first task and `end(last) − start(first)` equals the makespan
//! up to scheduler gaps.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::trace::{FieldValue, TraceEvent};

/// Trace-source-independent span (owned strings so parsed JSON traces and
/// live collector events normalize to the same type).
#[derive(Debug, Clone)]
pub struct ProfSpan {
    pub name: String,
    pub cat: String,
    pub pid: u32,
    pub tid: u32,
    pub ts_us: u64,
    pub dur_us: u64,
    pub args: Vec<(String, FieldValue)>,
}

impl ProfSpan {
    fn arg(&self, key: &str) -> Option<&FieldValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn arg_u64(&self, key: &str) -> Option<u64> {
        match self.arg(key)? {
            FieldValue::UInt(v) => Some(*v),
            FieldValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    fn arg_i64(&self, key: &str) -> Option<i64> {
        match self.arg(key)? {
            FieldValue::Int(v) => Some(*v),
            FieldValue::UInt(v) => Some(*v as i64),
            _ => None,
        }
    }

    fn arg_str(&self, key: &str) -> Option<&str> {
        match self.arg(key)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&TraceEvent> for ProfSpan {
    fn from(e: &TraceEvent) -> Self {
        ProfSpan {
            name: e.name.clone(),
            cat: e.cat.to_string(),
            pid: e.pid,
            tid: e.tid,
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            args: e
                .args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Normalize a collector's events.
pub fn spans_from_events(events: &[TraceEvent]) -> Vec<ProfSpan> {
    events.iter().map(ProfSpan::from).collect()
}

/// Parse an exported Chrome `trace.json` document back into spans (only
/// `"X"` complete events; metadata rows are dropped).
pub fn spans_from_chrome_json(doc: &str) -> Result<Vec<ProfSpan>, String> {
    let v = Value::parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("no traceEvents array")?;
    let mut out = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let field = |k: &str| -> Result<u64, String> {
            e.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event missing {k}"))
        };
        let mut args = Vec::new();
        if let Some(obj) = e.get("args").and_then(Value::as_obj) {
            for (k, v) in obj {
                let fv = match v {
                    Value::Num(n) if n.fract() == 0.0 && *n < 0.0 => FieldValue::Int(*n as i64),
                    Value::Num(n) if n.fract() == 0.0 => FieldValue::UInt(*n as u64),
                    Value::Num(n) => FieldValue::Float(*n),
                    Value::Str(s) => FieldValue::Str(s.clone()),
                    Value::Bool(b) => FieldValue::Bool(*b),
                    _ => continue,
                };
                args.push((k.clone(), fv));
            }
        }
        out.push(ProfSpan {
            name: e
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            cat: e
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            pid: field("pid")? as u32,
            tid: field("tid")? as u32,
            ts_us: field("ts")?,
            dur_us: field("dur")?,
            args,
        });
    }
    Ok(out)
}

/// Encode a stage's shuffle-upstream list for the job-span `upstream` arg:
/// `"-"` for an external-input stage, else comma-joined indices (`"0"`,
/// `"0,1"`). A string survives the Chrome JSON round trip losslessly,
/// which a variable-length integer list would not.
pub fn encode_upstreams(ups: &[usize]) -> String {
    if ups.is_empty() {
        return "-".to_string();
    }
    let mut s = String::new();
    for (i, u) in ups.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&u.to_string());
    }
    s
}

/// Inverse of [`encode_upstreams`]; unparseable tokens are skipped.
pub fn decode_upstreams(s: &str) -> Vec<usize> {
    if s == "-" || s.is_empty() {
        return Vec::new();
    }
    s.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// Task flavor within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Map,
    Reduce,
    /// Reduce side of a co-group stage: consumes the same-index sealed
    /// reduce partition of every upstream directly (like a fan-in map)
    /// and produces a sealed output partition (like a reduce).
    CoGroup,
}

/// One plan-tagged task occurrence.
#[derive(Debug, Clone)]
pub struct TaskRec {
    pub stage: usize,
    pub kind: TaskKind,
    pub partition: usize,
    pub attempt: u32,
    pub pid: u32,
    pub tid: u32,
    pub start_us: u64,
    pub end_us: u64,
}

impl TaskRec {
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Declared shape of one stage, reconstructed from its job span.
#[derive(Debug, Clone)]
pub struct StageInfo {
    pub index: usize,
    pub name: String,
    /// Shuffle-upstream stage indices whose reduce outputs this stage maps
    /// over (empty = external input). Multi-input stages list every
    /// upstream in edge order.
    pub upstreams: Vec<usize>,
}

/// All tasks of one `(plan, run, pid)` instance plus its stage DAG.
#[derive(Debug, Clone)]
pub struct PlanProfile {
    pub plan: String,
    pub run: u64,
    pub pid: u32,
    pub stages: Vec<StageInfo>,
    pub tasks: Vec<TaskRec>,
}

impl PlanProfile {
    /// Group plan-tagged task/job spans by `(plan, run, pid)`. A real
    /// trace and its simulated timeline in the same file come back as
    /// separate profiles (different pids).
    pub fn from_spans(spans: &[ProfSpan]) -> Vec<PlanProfile> {
        type Key = (String, u64, u32);
        let mut stages: BTreeMap<Key, BTreeMap<usize, StageInfo>> = BTreeMap::new();
        let mut tasks: BTreeMap<Key, Vec<TaskRec>> = BTreeMap::new();

        for s in spans {
            let Some(plan) = s.arg_str("plan") else {
                continue;
            };
            let run = s.arg_u64("run").unwrap_or(0);
            let key = (plan.to_string(), run, s.pid);
            let is_job = s.cat.ends_with(".job");
            let is_task = s.cat.ends_with(".task");
            if is_job {
                let Some(stage) = s.arg_u64("stage") else {
                    continue;
                };
                // New traces encode the upstream list as a string
                // ("-", "0", "0,1"); pre-fan-in traces recorded a single
                // i64 with −1 for external input.
                let upstreams = match s.arg_str("upstream") {
                    Some(list) => decode_upstreams(list),
                    None => match s.arg_i64("upstream") {
                        Some(u) if u >= 0 => vec![u as usize],
                        _ => Vec::new(),
                    },
                };
                stages.entry(key).or_default().insert(
                    stage as usize,
                    StageInfo {
                        index: stage as usize,
                        name: s.name.clone(),
                        upstreams,
                    },
                );
            } else if is_task {
                let (Some(stage), Some(partition)) = (s.arg_u64("stage"), s.arg_u64("partition"))
                else {
                    continue;
                };
                let kind = match s.arg_str("kind").or(Some(s.name.as_str())) {
                    Some("map") => TaskKind::Map,
                    Some("reduce") => TaskKind::Reduce,
                    Some("cogroup") => TaskKind::CoGroup,
                    _ => continue,
                };
                tasks.entry(key).or_default().push(TaskRec {
                    stage: stage as usize,
                    kind,
                    partition: partition as usize,
                    attempt: s.arg_u64("attempt").unwrap_or(0) as u32,
                    pid: s.pid,
                    tid: s.tid,
                    start_us: s.ts_us,
                    end_us: s.ts_us + s.dur_us,
                });
            }
        }

        let mut out = Vec::new();
        for ((plan, run, pid), mut ts) in tasks {
            ts.sort_by_key(|t| (t.start_us, t.end_us, t.stage, t.partition, t.attempt));
            let st = stages
                .remove(&(plan.clone(), run, pid))
                .unwrap_or_default()
                .into_values()
                .collect();
            out.push(PlanProfile {
                plan,
                run,
                pid,
                stages: st,
                tasks: ts,
            });
        }
        out
    }

    /// `(stage index, upstream list)` pairs — the reconstructed DAG shape,
    /// for comparison against a declared `Plan` (empty list = external
    /// input; fan-in stages list every shuffle upstream).
    pub fn dag(&self) -> Vec<(usize, Vec<usize>)> {
        self.stages
            .iter()
            .map(|s| (s.index, s.upstreams.clone()))
            .collect()
    }

    /// Earliest task start.
    pub fn start_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.start_us).min().unwrap_or(0)
    }

    /// Latest task end.
    pub fn end_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.end_us).max().unwrap_or(0)
    }

    /// Wall-clock between first task start and last task end.
    pub fn makespan_us(&self) -> u64 {
        self.end_us().saturating_sub(self.start_us())
    }

    /// Shuffle upstream stage indices of `stage` (empty when the stage
    /// reads external input or is unknown).
    pub fn upstreams_of(&self, stage: usize) -> &[usize] {
        self.stages
            .iter()
            .find(|s| s.index == stage)
            .map(|s| s.upstreams.as_slice())
            .unwrap_or(&[])
    }

    /// Logical predecessors of task `i` (indices into `self.tasks`): all
    /// maps of the same stage for a reduce; the same-partition sealed
    /// output (reduce *or* co-group) of *every* upstream stage for a map
    /// or co-group task (a fan-in split waits on all of its
    /// co-partitioned inputs; a co-group task is that wait with no map
    /// phase in front).
    fn logical_preds(&self, i: usize) -> Vec<usize> {
        let t = &self.tasks[i];
        match t.kind {
            TaskKind::Reduce => self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, p)| p.stage == t.stage && p.kind == TaskKind::Map)
                .map(|(j, _)| j)
                .collect(),
            TaskKind::Map | TaskKind::CoGroup => {
                let ups = self.upstreams_of(t.stage);
                if ups.is_empty() {
                    return Vec::new();
                }
                self.tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        ups.contains(&p.stage)
                            && matches!(p.kind, TaskKind::Reduce | TaskKind::CoGroup)
                            && p.partition == t.partition
                    })
                    .map(|(j, _)| j)
                    .collect()
            }
        }
    }

    /// Logical successors of task `i` (inverse of [`logical_preds`]).
    /// A co-group task appears on both sides: it consumes sealed
    /// partitions like a fan-in map and seals an output partition like a
    /// reduce.
    fn logical_succs(&self, i: usize) -> Vec<usize> {
        let t = &self.tasks[i];
        match t.kind {
            TaskKind::Map => self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, s)| s.stage == t.stage && s.kind == TaskKind::Reduce)
                .map(|(j, _)| j)
                .collect(),
            TaskKind::Reduce | TaskKind::CoGroup => self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    matches!(s.kind, TaskKind::Map | TaskKind::CoGroup)
                        && s.partition == t.partition
                        && self.upstreams_of(s.stage).contains(&t.stage)
                })
                .map(|(j, _)| j)
                .collect(),
        }
    }

    /// The latest-ending task on the same `(pid, tid)` lane that ended at
    /// or before task `i` started.
    fn resource_pred(&self, i: usize) -> Option<usize> {
        let t = &self.tasks[i];
        self.tasks
            .iter()
            .enumerate()
            .filter(|(j, p)| *j != i && p.pid == t.pid && p.tid == t.tid && p.end_us <= t.start_us)
            .max_by_key(|(_, p)| (p.end_us, p.start_us))
            .map(|(j, _)| j)
    }

    /// Critical path as task indices in chronological order. Empty when
    /// the profile has no tasks.
    pub fn critical_path(&self) -> Vec<usize> {
        let Some(mut cur) = self
            .tasks
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| (t.end_us, t.start_us))
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        let mut path = vec![cur];
        loop {
            let start = self.tasks[cur].start_us;
            let mut preds: Vec<usize> = self
                .logical_preds(cur)
                .into_iter()
                .filter(|&j| self.tasks[j].end_us <= start)
                .collect();
            if let Some(r) = self.resource_pred(cur) {
                preds.push(r);
            }
            let Some(next) = preds
                .into_iter()
                .max_by_key(|&j| (self.tasks[j].end_us, self.tasks[j].start_us))
            else {
                break;
            };
            cur = next;
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// `end(last) − start(first)` of the critical path — the wall-clock
    /// interval the chain covers, comparable to [`makespan_us`].
    pub fn critical_path_span_us(&self) -> u64 {
        let path = self.critical_path();
        match (path.first(), path.last()) {
            (Some(&f), Some(&l)) => self.tasks[l].end_us.saturating_sub(self.tasks[f].start_us),
            _ => 0,
        }
    }

    /// Sum of task durations along the critical path (busy time of the
    /// bounding chain; the remainder of the span is wait/gap).
    pub fn critical_path_busy_us(&self) -> u64 {
        self.critical_path()
            .iter()
            .map(|&i| self.tasks[i].dur_us())
            .sum()
    }

    /// Classic CPM slack over the *logical* DAG: how much later each task
    /// could have finished without moving the makespan, ignoring resource
    /// (lane) limits. Critical-path tasks have zero-ish slack.
    pub fn slack_us(&self) -> Vec<u64> {
        let n = self.tasks.len();
        // latest_finish computed in reverse topological order; task starts
        // are a valid topological order because a successor can only start
        // after its predecessor ended (tasks are pre-sorted by start).
        let mut latest_finish = vec![self.end_us(); n];
        for i in (0..n).rev() {
            let succs = self.logical_succs(i);
            for s in succs {
                let ls = latest_finish[s].saturating_sub(self.tasks[s].dur_us());
                latest_finish[i] = latest_finish[i].min(ls);
            }
        }
        (0..n)
            .map(|i| latest_finish[i].saturating_sub(self.tasks[i].end_us))
            .collect()
    }

    /// Per-stage `(stage index, first start, last end, busy µs, peak
    /// concurrency)` in stage order — the data behind a waterfall view.
    pub fn stage_waterfall(&self) -> Vec<StageSummary> {
        let mut by_stage: BTreeMap<usize, Vec<&TaskRec>> = BTreeMap::new();
        for t in &self.tasks {
            by_stage.entry(t.stage).or_default().push(t);
        }
        by_stage
            .into_iter()
            .map(|(stage, ts)| {
                let name = self
                    .stages
                    .iter()
                    .find(|s| s.index == stage)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| format!("stage-{stage}"));
                StageSummary {
                    stage,
                    name,
                    tasks: ts.len(),
                    start_us: ts.iter().map(|t| t.start_us).min().unwrap_or(0),
                    end_us: ts.iter().map(|t| t.end_us).max().unwrap_or(0),
                    busy_us: ts.iter().map(|t| t.dur_us()).sum(),
                    peak_concurrency: peak_concurrency(&ts),
                }
            })
            .collect()
    }
}

/// Aggregate of one stage's tasks.
#[derive(Debug, Clone)]
pub struct StageSummary {
    pub stage: usize,
    pub name: String,
    pub tasks: usize,
    pub start_us: u64,
    pub end_us: u64,
    pub busy_us: u64,
    pub peak_concurrency: usize,
}

fn peak_concurrency(tasks: &[&TaskRec]) -> usize {
    let mut deltas: Vec<(u64, i32)> = Vec::with_capacity(tasks.len() * 2);
    for t in tasks {
        deltas.push((t.start_us, 1));
        deltas.push((t.end_us, -1));
    }
    // Ends sort before starts at equal timestamps so back-to-back tasks
    // don't double-count.
    deltas.sort_by_key(|&(ts, d)| (ts, d));
    let mut cur = 0i32;
    let mut peak = 0i32;
    for (_, d) in deltas {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn task_span(
        plan: &str,
        run: u64,
        stage: u64,
        kind: &str,
        partition: u64,
        tid: u32,
        ts: u64,
        dur: u64,
    ) -> ProfSpan {
        ProfSpan {
            name: kind.to_string(),
            cat: "mr.task".to_string(),
            pid: 1,
            tid,
            ts_us: ts,
            dur_us: dur,
            args: vec![
                ("plan".into(), FieldValue::Str(plan.into())),
                ("run".into(), FieldValue::UInt(run)),
                ("stage".into(), FieldValue::UInt(stage)),
                ("partition".into(), FieldValue::UInt(partition)),
                ("attempt".into(), FieldValue::UInt(0)),
            ],
        }
    }

    fn job_span(plan: &str, run: u64, stage: u64, upstream: &str, name: &str) -> ProfSpan {
        ProfSpan {
            name: name.to_string(),
            cat: "mr.job".to_string(),
            pid: 1,
            tid: 0,
            ts_us: 0,
            dur_us: 1000,
            args: vec![
                ("plan".into(), FieldValue::Str(plan.into())),
                ("run".into(), FieldValue::UInt(run)),
                ("stage".into(), FieldValue::UInt(stage)),
                ("upstream".into(), FieldValue::Str(upstream.into())),
            ],
        }
    }

    /// Two-stage chain, 2 lanes: stage 0 = 2 maps + 2 reduces, stage 1
    /// (upstream 0) = 2 maps + 2 reduces. Lane-packed with no idle gaps.
    fn two_stage_spans() -> Vec<ProfSpan> {
        let mut spans = vec![
            job_span("p", 7, 0, "-", "filter"),
            job_span("p", 7, 1, "0", "verify"),
        ];
        // stage 0: maps [0,10) on both lanes, reduces [10,30) lane 0 /
        // [10,20) lane 1.
        spans.push(task_span("p", 7, 0, "map", 0, 0, 0, 10));
        spans.push(task_span("p", 7, 0, "map", 1, 1, 0, 10));
        spans.push(task_span("p", 7, 0, "reduce", 0, 0, 10, 20));
        spans.push(task_span("p", 7, 0, "reduce", 1, 1, 10, 10));
        // stage 1: map of partition 1 can start at 20 (its upstream reduce
        // ended at 20); map 0 at 30.
        spans.push(task_span("p", 7, 1, "map", 1, 1, 20, 10));
        spans.push(task_span("p", 7, 1, "map", 0, 0, 30, 10));
        spans.push(task_span("p", 7, 1, "reduce", 0, 0, 40, 15));
        spans.push(task_span("p", 7, 1, "reduce", 1, 1, 40, 5));
        spans
    }

    #[test]
    fn groups_by_plan_run_pid_and_rebuilds_dag() {
        let mut spans = two_stage_spans();
        // A second run of the same plan must come back as its own profile.
        spans.push(job_span("p", 8, 0, "-", "filter"));
        spans.push(task_span("p", 8, 0, "map", 0, 0, 500, 10));
        let profiles = PlanProfile::from_spans(&spans);
        assert_eq!(profiles.len(), 2);
        let p7 = profiles.iter().find(|p| p.run == 7).unwrap();
        assert_eq!(p7.tasks.len(), 8);
        assert_eq!(p7.dag(), vec![(0, vec![]), (1, vec![0])]);
        assert_eq!(p7.stages[0].name, "filter");
        let p8 = profiles.iter().find(|p| p.run == 8).unwrap();
        assert_eq!(p8.tasks.len(), 1);
    }

    #[test]
    fn upstream_list_round_trips() {
        assert_eq!(encode_upstreams(&[]), "-");
        assert_eq!(encode_upstreams(&[3]), "3");
        assert_eq!(encode_upstreams(&[0, 1]), "0,1");
        assert_eq!(decode_upstreams("-"), Vec::<usize>::new());
        assert_eq!(decode_upstreams(""), Vec::<usize>::new());
        assert_eq!(decode_upstreams("0,1"), vec![0, 1]);
        for ups in [vec![], vec![2], vec![0, 1], vec![5, 3, 5]] {
            assert_eq!(decode_upstreams(&encode_upstreams(&ups)), ups);
        }
    }

    #[test]
    fn legacy_integer_upstream_tag_still_parses() {
        // Pre-fan-in traces recorded `upstream` as a single i64 (−1 =
        // external); the profiler must keep reading them.
        let mut spans = vec![
            job_span("p", 9, 0, "-", "filter"),
            task_span("p", 9, 0, "map", 0, 0, 0, 10),
        ];
        spans[0].args.retain(|(k, _)| k != "upstream");
        spans[0].args.push(("upstream".into(), FieldValue::Int(-1)));
        let mut legacy_up = job_span("p", 9, 1, "-", "verify");
        legacy_up.args.retain(|(k, _)| k != "upstream");
        legacy_up.args.push(("upstream".into(), FieldValue::Int(0)));
        spans.push(legacy_up);
        spans.push(task_span("p", 9, 1, "map", 0, 0, 10, 10));
        let profiles = PlanProfile::from_spans(&spans);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].dag(), vec![(0, vec![]), (1, vec![0])]);
    }

    /// Fan-in: stages 0 and 1 are external, stage 2 joins both. One lane
    /// per stage so logical deps, not lanes, bound the schedule.
    fn fan_in_spans() -> Vec<ProfSpan> {
        let mut spans = vec![
            job_span("j", 4, 0, "-", "r-prefix"),
            job_span("j", 4, 1, "-", "s-prefix"),
            job_span("j", 4, 2, "0,1", "join"),
        ];
        for stage in 0..2u64 {
            spans.push(task_span("j", 4, stage, "map", 0, stage as u32, 0, 10));
            spans.push(task_span(
                "j",
                4,
                stage,
                "reduce",
                0,
                stage as u32,
                10,
                10 + 10 * stage,
            ));
        }
        // The join map can only start once BOTH upstream reduces sealed
        // partition 0 — i.e. at 30 (stage 1's reduce ends at 30).
        spans.push(task_span("j", 4, 2, "map", 0, 2, 30, 10));
        spans.push(task_span("j", 4, 2, "reduce", 0, 2, 40, 10));
        spans
    }

    #[test]
    fn fan_in_dag_and_critical_path() {
        let profiles = PlanProfile::from_spans(&fan_in_spans());
        let p = &profiles[0];
        assert_eq!(p.dag(), vec![(0, vec![]), (1, vec![]), (2, vec![0, 1])]);
        // The join map's logical preds are the sealed reduces of BOTH
        // upstream stages.
        let join_map = p
            .tasks
            .iter()
            .position(|t| t.stage == 2 && t.kind == TaskKind::Map)
            .unwrap();
        let preds = p.logical_preds(join_map);
        let pred_stages: Vec<usize> = preds.iter().map(|&j| p.tasks[j].stage).collect();
        assert_eq!(preds.len(), 2);
        assert!(pred_stages.contains(&0) && pred_stages.contains(&1));
        // The critical path must route through the slower upstream
        // (stage 1, reduce ends at 30), spanning the whole makespan.
        assert_eq!(p.makespan_us(), 50);
        assert_eq!(p.critical_path_span_us(), 50);
        let path = p.critical_path();
        assert!(path.iter().any(|&i| p.tasks[i].stage == 1));
        // Both upstream reduces are logical successors' predecessors: the
        // faster one (ends at 20) has slack, the slower none.
        let slack = p.slack_us();
        let fast = p
            .tasks
            .iter()
            .position(|t| t.stage == 0 && t.kind == TaskKind::Reduce)
            .unwrap();
        let slow = p
            .tasks
            .iter()
            .position(|t| t.stage == 1 && t.kind == TaskKind::Reduce)
            .unwrap();
        assert_eq!(slack[fast], 10);
        assert_eq!(slack[slow], 0);
    }

    /// Co-group: stages 0 and 1 are external, stage 2 co-groups both with
    /// no map phase — its tasks consume sealed partitions directly.
    fn cogroup_spans() -> Vec<ProfSpan> {
        let mut spans = vec![
            job_span("c", 6, 0, "-", "r-prefix"),
            job_span("c", 6, 1, "-", "s-prefix"),
            job_span("c", 6, 2, "0,1", "join"),
        ];
        for stage in 0..2u64 {
            spans.push(task_span("c", 6, stage, "map", 0, stage as u32, 0, 10));
            spans.push(task_span(
                "c",
                6,
                stage,
                "reduce",
                0,
                stage as u32,
                10,
                10 + 10 * stage,
            ));
        }
        // The co-group task starts once BOTH upstream reduces sealed
        // partition 0 — at 30 — with no interposed map.
        spans.push(task_span("c", 6, 2, "cogroup", 0, 2, 30, 10));
        spans
    }

    #[test]
    fn cogroup_dag_and_critical_path() {
        let profiles = PlanProfile::from_spans(&cogroup_spans());
        let p = &profiles[0];
        assert_eq!(p.dag(), vec![(0, vec![]), (1, vec![]), (2, vec![0, 1])]);
        let co = p
            .tasks
            .iter()
            .position(|t| t.kind == TaskKind::CoGroup)
            .unwrap();
        assert_eq!(p.tasks[co].stage, 2);
        // The co-group task's logical preds are the sealed reduces of
        // BOTH upstream stages — same release rule as a fan-in map.
        let preds = p.logical_preds(co);
        let pred_stages: Vec<usize> = preds.iter().map(|&j| p.tasks[j].stage).collect();
        assert_eq!(preds.len(), 2);
        assert!(pred_stages.contains(&0) && pred_stages.contains(&1));
        // Both upstream reduces list the co-group task as a successor.
        for (i, t) in p.tasks.iter().enumerate() {
            if t.kind == TaskKind::Reduce {
                assert_eq!(p.logical_succs(i), vec![co], "reduce of stage {}", t.stage);
            }
        }
        // Critical path routes through the slower upstream and spans the
        // whole makespan; the fast upstream's reduce has slack.
        assert_eq!(p.makespan_us(), 40);
        assert_eq!(p.critical_path_span_us(), 40);
        let path = p.critical_path();
        assert!(path.iter().any(|&i| p.tasks[i].stage == 1));
        assert_eq!(*path.last().unwrap(), co);
        let slack = p.slack_us();
        let fast = p
            .tasks
            .iter()
            .position(|t| t.stage == 0 && t.kind == TaskKind::Reduce)
            .unwrap();
        assert_eq!(slack[fast], 10);
        assert_eq!(slack[co], 0);
    }

    #[test]
    fn critical_path_covers_makespan_on_packed_timeline() {
        let profiles = PlanProfile::from_spans(&two_stage_spans());
        let p = &profiles[0];
        assert_eq!(p.makespan_us(), 55);
        // Packed lanes: the backward walk must reach ts=0.
        assert_eq!(p.critical_path_span_us(), p.makespan_us());
        let path = p.critical_path();
        // Chronological and chained: each hop ends no later than the next
        // begins... (resource preds share a lane; logical preds precede).
        for w in path.windows(2) {
            assert!(p.tasks[w[0]].end_us <= p.tasks[w[1]].start_us + p.tasks[w[1]].dur_us());
            assert!(p.tasks[w[0]].start_us <= p.tasks[w[1]].start_us);
        }
        // The terminal task is the latest-ending one (stage 1 reduce 0).
        let last = &p.tasks[*path.last().unwrap()];
        assert_eq!((last.stage, last.kind), (1, TaskKind::Reduce));
        assert_eq!(last.end_us, 55);
    }

    #[test]
    fn slack_zero_on_critical_chain_positive_off_it() {
        let profiles = PlanProfile::from_spans(&two_stage_spans());
        let p = &profiles[0];
        let slack = p.slack_us();
        // Stage-1 reduce partition 1 ends at 45 while the makespan is 55:
        // it has 10µs of slack.
        let loose = p
            .tasks
            .iter()
            .position(|t| t.stage == 1 && t.kind == TaskKind::Reduce && t.partition == 1)
            .unwrap();
        assert_eq!(slack[loose], 10);
        // The terminal critical task has zero slack.
        let tight = p
            .tasks
            .iter()
            .position(|t| t.stage == 1 && t.kind == TaskKind::Reduce && t.partition == 0)
            .unwrap();
        assert_eq!(slack[tight], 0);
    }

    #[test]
    fn stage_waterfall_and_concurrency() {
        let profiles = PlanProfile::from_spans(&two_stage_spans());
        let p = &profiles[0];
        let wf = p.stage_waterfall();
        assert_eq!(wf.len(), 2);
        assert_eq!((wf[0].start_us, wf[0].end_us), (0, 30));
        assert_eq!(wf[0].peak_concurrency, 2);
        assert_eq!(wf[0].busy_us, 10 + 10 + 20 + 10);
        assert_eq!(wf[1].name, "verify");
    }

    #[test]
    fn chrome_json_round_trip_matches_collector_events() {
        // Build a synthetic trace, export via ChromeTrace, re-parse, and
        // profile both representations identically.
        let spans = two_stage_spans();
        let mut chrome = crate::ChromeTrace::new();
        for s in &spans {
            chrome.push_event(TraceEvent {
                name: s.name.clone(),
                cat: if s.cat == "mr.task" {
                    "mr.task"
                } else {
                    "mr.job"
                },
                pid: s.pid,
                tid: s.tid,
                ts_us: s.ts_us,
                dur_us: s.dur_us,
                args: s
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let key: &'static str = match k.as_str() {
                            "plan" => "plan",
                            "run" => "run",
                            "stage" => "stage",
                            "partition" => "partition",
                            "attempt" => "attempt",
                            _ => "upstream",
                        };
                        (key, v.clone())
                    })
                    .collect(),
            });
        }
        let parsed = spans_from_chrome_json(&chrome.to_json()).unwrap();
        let from_json = PlanProfile::from_spans(&parsed);
        let direct = PlanProfile::from_spans(&spans);
        assert_eq!(from_json.len(), direct.len());
        assert_eq!(
            from_json[0].critical_path_span_us(),
            direct[0].critical_path_span_us()
        );
        assert_eq!(from_json[0].dag(), direct[0].dag());
        assert_eq!(from_json[0].makespan_us(), direct[0].makespan_us());
    }
}
