//! Minimal JSON string helpers (the build environment is offline, so no
//! serde). Only what the exporters need: string escaping and finite float
//! formatting.

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number. JSON has no NaN/Infinity; those map to
/// `null` so the document stays parseable.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints without a decimal point ("3"), which
        // is valid JSON but ambiguous for readers expecting a float; keep
        // it explicit.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. The profiler reads back the trace/metrics files
/// the exporters write, so a tiny recursive-descent parser keeps the
/// round-trip in-crate without serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates from the exporters never occur
                            // (escape() only emits \u00xx); map any
                            // unpaired surrogate to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats_are_valid_json_numbers() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-2.5e1").unwrap(), Value::Num(-25.0));
        assert_eq!(
            Value::parse(r#""a\nbA""#).unwrap(),
            Value::Str("a\nbA".into())
        );
        let v = Value::parse(r#"{"xs": [1, 2, {"k": "v"}], "n": null}"#).unwrap();
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[2].get("k").unwrap().as_str(), Some("v"));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_exporter_escapes() {
        let original = "quote\" slash\\ nl\n ctl\u{1} uni\u{300}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Value::parse(&doc).unwrap(), Value::Str(original.into()));
    }
}
