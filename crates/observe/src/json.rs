//! Minimal JSON string helpers (the build environment is offline, so no
//! serde). Only what the exporters need: string escaping and finite float
//! formatting.

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number. JSON has no NaN/Infinity; those map to
/// `null` so the document stays parseable.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints without a decimal point ("3"), which
        // is valid JSON but ambiguous for readers expecting a float; keep
        // it explicit.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats_are_valid_json_numbers() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
