//! Chrome trace-event / Perfetto JSON export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly: `"M"` metadata events naming processes and threads,
//! then `"X"` complete events sorted by `(pid, tid, ts)` so timestamps
//! are monotonically non-decreasing within every lane.

use std::collections::BTreeMap;

use crate::json::{escape, fmt_f64};
use crate::trace::{Collector, FieldValue, TraceEvent};

/// Accumulates events and lane names, then serializes once.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u32), String>,
}

impl ChromeTrace {
    /// Empty trace document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed from everything a collector recorded.
    pub fn from_collector(c: &Collector) -> Self {
        ChromeTrace {
            events: c.events(),
            process_names: c.process_names(),
            thread_names: c.thread_names(),
        }
    }

    /// Append one event (used for synthetic timelines).
    pub fn push_event(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Name a process lane.
    pub fn set_process_name(&mut self, pid: u32, name: &str) {
        self.process_names.insert(pid, name.to_string());
    }

    /// Name a thread lane.
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.thread_names.insert((pid, tid), name.to_string());
    }

    /// Number of interval events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no interval events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The interval events currently held (unsorted; `to_json` sorts).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialize to the trace-event JSON object format.
    pub fn to_json(&self) -> String {
        let mut events = self.events.clone();
        // Sort per lane by start time, enclosing spans first at equal ts.
        // The cat/name tail makes the order total: concurrent `push`es can
        // interleave events with identical (pid, tid, ts, dur) in any
        // order, and without a full key the export would depend on that
        // interleaving.
        events.sort_by(|a, b| {
            (
                a.pid,
                a.tid,
                a.ts_us,
                std::cmp::Reverse(a.dur_us),
                a.cat,
                &a.name,
            )
                .cmp(&(
                    b.pid,
                    b.tid,
                    b.ts_us,
                    std::cmp::Reverse(b.dur_us),
                    b.cat,
                    &b.name,
                ))
        });

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_obj = |out: &mut String, body: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            out.push_str(&body);
            out.push('}');
        };

        for (pid, name) in &self.process_names {
            push_obj(
                &mut out,
                format!(
                    "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}",
                    escape(name)
                ),
            );
        }
        for ((pid, tid), name) in &self.thread_names {
            push_obj(
                &mut out,
                format!(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}",
                    escape(name)
                ),
            );
        }
        for e in &events {
            let mut body = format!(
                "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                escape(&e.name),
                escape(e.cat),
                e.pid,
                e.tid,
                e.ts_us,
                e.dur_us
            );
            if !e.args.is_empty() {
                body.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("\"{}\":", escape(k)));
                    match v {
                        FieldValue::Int(x) => body.push_str(&x.to_string()),
                        FieldValue::UInt(x) => body.push_str(&x.to_string()),
                        FieldValue::Float(x) => body.push_str(&fmt_f64(*x)),
                        FieldValue::Bool(x) => body.push_str(if *x { "true" } else { "false" }),
                        FieldValue::Str(s) => body.push_str(&format!("\"{}\"", escape(s))),
                    }
                }
                body.push('}');
            }
            push_obj(&mut out, body);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, pid: u32, tid: u32, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test",
            pid,
            tid,
            ts_us: ts,
            dur_us: dur,
            args: vec![],
        }
    }

    #[test]
    fn export_sorts_per_lane_and_names_lanes() {
        let mut t = ChromeTrace::new();
        t.set_process_name(1, "host");
        t.set_thread_name(1, 2, "worker \"2\"");
        t.push_event(ev("b", 1, 2, 50, 5));
        t.push_event(ev("a", 1, 2, 10, 5));
        t.push_event(ev("c", 1, 1, 30, 5));
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("worker \\\"2\\\""));
        // Lane (1,2): "a" (ts 10) must precede "b" (ts 50).
        let a = json.find("\"name\":\"a\"").unwrap();
        let b = json.find("\"name\":\"b\"").unwrap();
        assert!(a < b);
    }

    #[test]
    fn args_serialize_all_field_kinds() {
        let mut t = ChromeTrace::new();
        t.push_event(TraceEvent {
            name: "n".into(),
            cat: "c",
            pid: 1,
            tid: 1,
            ts_us: 0,
            dur_us: 1,
            args: vec![
                ("i", FieldValue::Int(-3)),
                ("u", FieldValue::UInt(7)),
                ("f", FieldValue::Float(0.5)),
                ("b", FieldValue::Bool(true)),
                ("s", FieldValue::Str("x\"y".into())),
            ],
        });
        let json = t.to_json();
        assert!(json.contains("\"i\":-3"));
        assert!(json.contains("\"u\":7"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.contains("\"b\":true"));
        assert!(json.contains("\"s\":\"x\\\"y\""));
    }

    #[test]
    fn nested_spans_order_parent_first_at_equal_ts() {
        // At equal ts the longer (enclosing) span must come first so the
        // viewer nests correctly.
        let mut t = ChromeTrace::new();
        t.push_event(ev("child", 1, 1, 100, 10));
        t.push_event(ev("parent", 1, 1, 100, 50));
        let json = t.to_json();
        let p = json.find("\"name\":\"parent\"").unwrap();
        let c = json.find("\"name\":\"child\"").unwrap();
        assert!(p < c);
    }
}
