//! Leveled stderr logging gated by the `SSJ_LOG` environment variable.
//!
//! Levels: `quiet` < `warn` < `info` < `debug`; default `info`. Messages
//! print verbatim via `eprintln!`, so a call site converted from
//! `eprintln!` to [`info!`](crate::info) produces byte-identical output at
//! the default level. The level is read once per process (first log call)
//! and cached.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Suppress everything.
    Quiet = 0,
    /// Something degraded silently-dangerous behavior (e.g. a simulation
    /// falling back to a coarser model). Printed by default.
    Warn = 1,
    /// Operator-facing narration (default).
    Info = 2,
    /// Extra detail for debugging runs.
    Debug = 3,
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn level_from_env() -> Level {
    match std::env::var("SSJ_LOG").as_deref() {
        Ok("quiet") | Ok("off") | Ok("none") => Level::Quiet,
        Ok("warn") => Level::Warn,
        Ok("debug") => Level::Debug,
        // Unknown values fall back to the default rather than erroring:
        // logging must never take a run down.
        _ => Level::Info,
    }
}

/// Current level (reads `SSJ_LOG` on first call).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let l = level_from_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
        0 => Level::Quiet,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Override the level programmatically (tests, embedders).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are emitted.
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Print `args` to stderr if `l` is enabled. Prefer the macros.
pub fn log(l: Level, args: std::fmt::Arguments<'_>) {
    if enabled(l) {
        eprintln!("{args}");
    }
}

/// Log at [`Level::Warn`] (formatting is skipped when suppressed).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`] (formatting is skipped when suppressed).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`] (formatting is skipped when suppressed).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_gating() {
        assert!(Level::Quiet < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        set_level(Level::Info);
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Quiet);
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        // Restore the default for other tests in this process.
        set_level(Level::Info);
    }

    #[test]
    fn macros_compile_and_run() {
        set_level(Level::Quiet);
        warn!("suppressed {}", 0);
        info!("suppressed {}", 1);
        debug!("suppressed {}", 2);
        set_level(Level::Info);
    }
}
