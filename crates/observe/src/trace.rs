//! Span tracer with a zero-cost disabled path.
//!
//! A global [`Collector`] is installed explicitly (e.g. by `expt
//! --trace-out`); until then, [`span`] is one relaxed atomic load and
//! returns an inert guard without touching the heap. Instrumented code
//! therefore never needs `#[cfg]` gates or call-site checks.
//!
//! Timestamps are microseconds from the collector's install instant
//! (monotonic, per-process). Each OS thread gets a stable small lane id
//! (`tid` in the exported trace) so concurrent task spans render on
//! separate tracks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $as)
            }
        }
    )*};
}

impl_field_from! {
    i32 => Int as i64,
    i64 => Int as i64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    f64 => Float as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One completed interval, in Chrome trace-event terms (an `"X"` event).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (e.g. `"map"`, `"fsjoin-filter"`).
    pub name: String,
    /// Category (e.g. `"mr.job"`, `"fsjoin.stage"`, `"sim.task"`).
    pub cat: &'static str,
    /// Process lane; `HOST_PID` for real execution, higher ids for
    /// synthetic timelines.
    pub pid: u32,
    /// Thread lane within the process.
    pub tid: u32,
    /// Start, microseconds since the collector epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Key/value attributes (`args` in the exported JSON).
    pub args: Vec<(&'static str, FieldValue)>,
}

/// `pid` used for spans recorded from real execution.
pub const HOST_PID: u32 = 1;

/// Thread-safe span sink. One is installed globally; clones of the `Arc`
/// may also be held directly (e.g. by the exporter).
pub struct Collector {
    id: u64,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    process_names: Mutex<BTreeMap<u32, String>>,
    thread_names: Mutex<BTreeMap<(u32, u32), String>>,
}

impl Collector {
    /// Fresh collector with its epoch at "now". Usually installed globally
    /// via [`install_collector`], but standalone collectors work too (e.g.
    /// synthetic timelines in tests).
    pub fn new() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let c = Collector {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            process_names: Mutex::new(BTreeMap::new()),
            thread_names: Mutex::new(BTreeMap::new()),
        };
        c.set_process_name(HOST_PID, "host");
        c
    }

    /// Microseconds elapsed since this collector was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Append a finished event (used by `Span::drop` and by synthetic
    /// timeline builders).
    pub fn push(&self, event: TraceEvent) {
        self.events.lock().unwrap().push(event);
    }

    /// Name a process lane in the exported trace.
    pub fn set_process_name(&self, pid: u32, name: &str) {
        self.process_names
            .lock()
            .unwrap()
            .insert(pid, name.to_string());
    }

    /// Name a thread lane in the exported trace.
    pub fn set_thread_name(&self, pid: u32, tid: u32, name: &str) {
        self.thread_names
            .lock()
            .unwrap()
            .insert((pid, tid), name.to_string());
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Snapshot of the process-name table.
    pub fn process_names(&self) -> BTreeMap<u32, String> {
        self.process_names.lock().unwrap().clone()
    }

    /// Snapshot of the thread-name table.
    pub fn thread_names(&self) -> BTreeMap<(u32, u32), String> {
        self.thread_names.lock().unwrap().clone()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);

fn collector_slot() -> &'static Mutex<Option<Arc<Collector>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Collector>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// True when a collector is installed. One relaxed load; this is the
/// entirety of the disabled-path cost beyond constructing an inert guard.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Install a fresh collector and enable tracing. Returns the collector so
/// the caller can export from it later.
pub fn install_collector() -> Arc<Collector> {
    let c = Arc::new(Collector::new());
    *collector_slot().lock().unwrap() = Some(Arc::clone(&c));
    TRACING.store(true, Ordering::Release);
    c
}

/// Disable tracing and drop the global reference. In-flight spans on other
/// threads still hold their own `Arc` and finish recording harmlessly.
pub fn uninstall_collector() -> Option<Arc<Collector>> {
    TRACING.store(false, Ordering::Release);
    collector_slot().lock().unwrap().take()
}

/// The installed collector, if any.
pub fn collector() -> Option<Arc<Collector>> {
    if !tracing_enabled() {
        return None;
    }
    collector_slot().lock().unwrap().clone()
}

/// Stable small per-thread lane id, registered with `collector` by name on
/// first use per collector generation.
fn thread_lane(c: &Collector) -> u32 {
    use std::cell::Cell;
    static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static LANE: Cell<u32> = const { Cell::new(0) };
        static REGISTERED_FOR: Cell<u64> = const { Cell::new(0) };
    }
    let lane = LANE.with(|l| {
        if l.get() == 0 {
            l.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
        }
        l.get()
    });
    REGISTERED_FOR.with(|r| {
        if r.get() != c.id {
            r.set(c.id);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("worker-{lane}"));
            c.set_thread_name(HOST_PID, lane, &name);
        }
    });
    lane
}

struct SpanInner {
    collector: Arc<Collector>,
    name: String,
    cat: &'static str,
    tid: u32,
    start_us: u64,
    args: Vec<(&'static str, FieldValue)>,
}

/// RAII span guard: records one [`TraceEvent`] on drop. Inert (no
/// allocation, no collector reference) when tracing is disabled.
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

/// Open a span. `cat` groups spans for filtering in the trace viewer;
/// `name` is the label on the timeline bar. Keep `name` a plain `&str`
/// that exists anyway (avoid `format!` at call sites) so the disabled
/// path allocates nothing; use [`Span::field`] for variable data.
#[inline]
pub fn span(cat: &'static str, name: &str) -> Span {
    if !tracing_enabled() {
        return Span { inner: None };
    }
    let Some(c) = collector() else {
        return Span { inner: None };
    };
    let tid = thread_lane(&c);
    let start_us = c.now_us();
    Span {
        inner: Some(Box::new(SpanInner {
            collector: c,
            name: name.to_string(),
            cat,
            tid,
            start_us,
            args: Vec::new(),
        })),
    }
}

impl Span {
    /// Attach an attribute. The value is only converted (and any
    /// allocation only happens) when the span is live.
    #[inline]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key, value.into()));
        }
        self
    }

    /// Attach an attribute to an existing span (non-consuming variant, for
    /// values only known mid-span).
    #[inline]
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key, value.into()));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end_us = inner.collector.now_us();
            inner.collector.push(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                pid: HOST_PID,
                tid: inner.tid,
                ts_us: inner.start_us,
                dur_us: end_us.saturating_sub(inner.start_us),
                args: inner.args,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Global metrics registry (installed alongside the collector by exporters).
// ---------------------------------------------------------------------------

fn registry_slot() -> &'static Mutex<Option<Arc<MetricsRegistry>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<MetricsRegistry>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a fresh global metrics registry and return it.
pub fn install_registry() -> Arc<MetricsRegistry> {
    let r = Arc::new(MetricsRegistry::new());
    *registry_slot().lock().unwrap() = Some(Arc::clone(&r));
    r
}

/// Remove and return the global registry.
pub fn uninstall_registry() -> Option<Arc<MetricsRegistry>> {
    registry_slot().lock().unwrap().take()
}

/// The global registry, if one is installed.
pub fn global_registry() -> Option<Arc<MetricsRegistry>> {
    registry_slot().lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector slot is process-global; tests touching it run under a
    // shared lock so `cargo test`'s parallel harness can't interleave them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = serial();
        uninstall_collector();
        let s = span("test", "nothing").field("k", 1u64);
        assert!(!s.is_active());
        drop(s);
    }

    #[test]
    fn spans_record_events_with_fields() {
        let _g = serial();
        let c = install_collector();
        {
            let _outer = span("test", "outer").field("n", 3usize);
            let _inner = span("test", "inner").field("which", "i");
        }
        uninstall_collector();
        let events = c.events();
        assert_eq!(events.len(), 2);
        // Drop order: inner recorded first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].args, vec![("n", FieldValue::UInt(3))]);
        // Containment: outer started no later and ended no earlier.
        let (i, o) = (&events[0], &events[1]);
        assert!(o.ts_us <= i.ts_us);
        assert!(o.ts_us + o.dur_us >= i.ts_us + i.dur_us);
    }

    #[test]
    fn uninstall_disables_future_spans() {
        let _g = serial();
        let c = install_collector();
        uninstall_collector();
        drop(span("test", "late"));
        assert!(c.events().is_empty());
    }

    #[test]
    fn thread_lanes_are_distinct_and_named() {
        let _g = serial();
        let c = install_collector();
        drop(span("test", "main-lane"));
        std::thread::scope(|s| {
            s.spawn(|| drop(span("test", "other-lane")));
        });
        uninstall_collector();
        let events = c.events();
        assert_eq!(events.len(), 2);
        let tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        assert_ne!(tids[0], tids[1], "two threads, two lanes");
        let names = c.thread_names();
        for e in &events {
            assert!(names.contains_key(&(HOST_PID, e.tid)));
        }
    }
}
