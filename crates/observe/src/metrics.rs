//! Named counters, gauges and log-scale histograms with merge semantics.
//!
//! A [`MetricsRegistry`] is cheap to create; the FS-Join driver makes one
//! per run to absorb worker-side filter statistics, then (if a global
//! registry is installed by the exporter) merges it upstream. Counter
//! names are dotted paths (`fsjoin.filter.segl_pruned`,
//! `mr.job.fsjoin-filter.shuffle_records`); the JSONL export writes one
//! self-describing object per metric.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::escape;

/// Power-of-two-bucket histogram for nonnegative integers: value `v` lands
/// in bucket `bits(v)` (so bucket `k` covers `[2^(k-1), 2^k)`, bucket 0
/// holds zeros). 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate by linear interpolation inside the covering
    /// power-of-two bucket, clamped to the observed `[min, max]` range (so
    /// degenerate single-value distributions report exactly that value).
    /// `q` is clamped to `[0, 1]`; an empty histogram reports 0.
    ///
    /// The straggler detector (`task > k × median`) and the shuffle
    /// imbalance factor (p99/p50) are both computed through this, which
    /// bounds their error to one bucket's width (< 2× the true value).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum as f64;
            cum += c;
            if cum as f64 >= rank {
                // Bucket k covers [2^(k-1), 2^k); bucket 0 holds zeros.
                let lower = if k == 0 {
                    0.0
                } else {
                    (1u128 << (k - 1)) as f64
                };
                let upper = if k == 0 { 1.0 } else { (1u128 << k) as f64 };
                let frac = (rank - before) / c as f64;
                let v = lower + frac * (upper - lower);
                return v.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Rebuild a histogram from its exported form (the JSONL fields:
    /// `count`/`sum`/`min`/`max` plus `(upper_bound, count)` bucket pairs as
    /// produced by [`Self::nonzero_buckets`]). Inverse of the export up to
    /// the information the export keeps.
    pub fn from_export(count: u64, sum: u64, min: u64, max: u64, buckets: &[(u64, u64)]) -> Self {
        let mut h = LogHistogram {
            buckets: [0; 65],
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        };
        for &(upper, c) in buckets {
            // upper = 1 << k (bucket 0 exports upper bound 1, which also
            // maps to k = 0 via trailing_zeros); u64::MAX marks bucket 64.
            let k = if upper == u64::MAX {
                64
            } else {
                upper.trailing_zeros() as usize
            };
            h.buckets[k] += c;
        }
        h
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs; the
    /// zero bucket reports upper bound 1.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| {
                let upper = if k >= 64 { u64::MAX } else { 1u64 << k };
                (upper, c)
            })
            .collect()
    }
}

/// A single metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic sum.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Distribution of nonnegative integers (boxed: a histogram is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<LogHistogram>),
}

/// Thread-safe name → metric map.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter `name` (created at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += delta,
            Some(other) => panic!("metric {name:?} is not a counter: {other:?}"),
            None => {
                m.insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Current counter value (0 if absent or not a counter).
    pub fn counter_get(&self, name: &str) -> u64 {
        match self.inner.lock().unwrap().get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Set the gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Current gauge value (None if absent or not a gauge).
    pub fn gauge_get(&self, name: &str) -> Option<f64> {
        match self.inner.lock().unwrap().get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Record one observation into the histogram `name` (created empty).
    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(value),
            Some(other) => panic!("metric {name:?} is not a histogram: {other:?}"),
            None => {
                let mut h = Box::new(LogHistogram::default());
                h.record(value);
                m.insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Snapshot of the histogram `name`, if present.
    pub fn histogram_get(&self, name: &str) -> Option<LogHistogram> {
        match self.inner.lock().unwrap().get(name) {
            Some(MetricValue::Histogram(h)) => Some((**h).clone()),
            _ => None,
        }
    }

    /// Fold every metric of `other` into this registry: counters add,
    /// gauges take `other`'s value, histograms merge.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.inner.lock().unwrap().clone();
        let mut mine = self.inner.lock().unwrap();
        for (name, value) in theirs {
            match (mine.get_mut(&name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(&b),
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = b,
                (Some(existing), incoming) => {
                    panic!("metric {name:?} kind mismatch: {existing:?} vs {incoming:?}")
                }
                (None, v) => {
                    mine.insert(name, v);
                }
            }
        }
    }

    /// Sorted snapshot of all metrics.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Serialize every metric as one JSON object per line.
    ///
    /// * counter: `{"metric":NAME,"type":"counter","value":N}`
    /// * gauge: `{"metric":NAME,"type":"gauge","value":X}`
    /// * histogram: `{"metric":NAME,"type":"histogram","count":N,"sum":S,
    ///   "min":m,"max":M,"mean":X,"buckets":{"UPPER":COUNT,...}}`
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            out.push_str("{\"metric\":\"");
            out.push_str(&escape(&name));
            out.push('"');
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{c}"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!(
                        ",\"type\":\"gauge\",\"value\":{}",
                        crate::json::fmt_f64(g)
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        crate::json::fmt_f64(h.mean())
                    ));
                    out.push_str(",\"buckets\":{");
                    let mut first = true;
                    for (upper, count) in h.nonzero_buckets() {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("\"{upper}\":{count}"));
                    }
                    out.push('}');
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("a.b", 3);
        r.counter_add("a.b", 4);
        assert_eq!(r.counter_get("a.b"), 7);
        assert_eq!(r.counter_get("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LogHistogram::default();
        for v in [0u64, 1, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        // Buckets: 0 -> [0], 1,1 -> (,1], 2,3 -> (,4]? No: bits(2)=2 ->
        // bucket 2 upper 4; bits(3)=2; bits(4)=3 -> upper 8; bits(100)=7 ->
        // upper 128.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 1), (2, 2), (4, 2), (8, 1), (128, 1)]
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = LogHistogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        // The log buckets bound any quantile by one power-of-two bucket:
        // the estimate must be within 2× of the true order statistic.
        for (q, exact) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
            let est = h.quantile(q);
            assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        // Monotone in q, and clamped to the observed range.
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(1.0) <= 100.0);
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(0.99));
    }

    #[test]
    fn quantile_degenerate_and_empty() {
        let empty = LogHistogram::default();
        assert_eq!(empty.quantile(0.5), 0.0);

        // Single repeated value: clamping to [min, max] makes every
        // quantile exact.
        let mut h = LogHistogram::default();
        for _ in 0..10 {
            h.record(5);
        }
        assert_eq!(h.quantile(0.0), 5.0);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(0.99), 5.0);

        // All zeros land in bucket 0.
        let mut z = LogHistogram::default();
        z.record(0);
        z.record(0);
        assert_eq!(z.quantile(0.5), 0.0);
    }

    #[test]
    fn export_round_trips_through_from_export() {
        let mut h = LogHistogram::default();
        for v in [0u64, 1, 3, 9, 1000, u64::MAX] {
            h.record(v);
        }
        let rebuilt =
            LogHistogram::from_export(h.count(), h.sum(), h.min(), h.max(), &h.nonzero_buckets());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut all = LogHistogram::default();
        for v in [5u64, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 7] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_merge_semantics() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        b.counter_add("only_b", 5);
        a.gauge_set("g", 1.0);
        b.gauge_set("g", 2.5);
        a.histogram_record("h", 4);
        b.histogram_record("h", 9);
        a.merge_from(&b);
        assert_eq!(a.counter_get("c"), 3);
        assert_eq!(a.counter_get("only_b"), 5);
        assert_eq!(a.gauge_get("g"), Some(2.5));
        let h = a.histogram_get("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 13);
    }

    #[test]
    fn jsonl_lines_are_objects() {
        let r = MetricsRegistry::new();
        r.counter_add("n", 3);
        r.gauge_set("x", 0.5);
        r.histogram_record("d", 10);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with("{\"metric\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"type\":\"counter\",\"value\":3"));
        assert!(jsonl.contains("\"type\":\"histogram\",\"count\":1,\"sum\":10"));
    }
}
