//! `ssj-observe`: observability primitives for the FS-Join suite.
//!
//! Three independent facilities, all std-only and dependency-free:
//!
//! * **[`trace`]** — a span/event tracer. Code under instrumentation calls
//!   [`span`], which returns an RAII guard recording a Chrome
//!   trace-event-compatible interval on drop. When no collector is
//!   installed (the default) the fast path is one relaxed atomic load and
//!   performs **zero allocations** — instrumentation can stay on
//!   permanently in hot paths.
//! * **[`metrics`]** — a [`MetricsRegistry`] of named counters, gauges and
//!   log-scale histograms with merge semantics and JSONL export. The
//!   FS-Join filter statistics and the MapReduce engine's per-job
//!   distributions flow through it.
//! * **[`log`]** — a leveled stderr logger ([`warn!`]/[`info!`]/
//!   [`debug!`]) gated by the `SSJ_LOG` environment variable
//!   (`quiet` | `warn` | `info` | `debug`, default `info`). Messages print
//!   verbatim, so converting an `eprintln!` call site to [`info!`] is
//!   byte-identical by default.
//!
//! [`chrome`] turns a collector's spans (plus any synthetic events, e.g.
//! simulated cluster schedules) into a Perfetto-loadable
//! `{"traceEvents": [...]}` JSON document; the JSON writer is hand-rolled
//! in [`json`] because the build environment is offline.

pub mod chrome;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::ChromeTrace;
pub use log::Level;
pub use metrics::{LogHistogram, MetricValue, MetricsRegistry};
pub use profile::{
    decode_upstreams, encode_upstreams, spans_from_chrome_json, spans_from_events, PlanProfile,
    ProfSpan, StageSummary, TaskKind, TaskRec,
};
pub use trace::{
    collector, install_collector, span, tracing_enabled, uninstall_collector, Collector,
    FieldValue, Span, TraceEvent,
};
pub use trace::{global_registry, install_registry, uninstall_registry};
