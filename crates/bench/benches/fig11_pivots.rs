//! Figure 11 (bench-scale): FS-Join across pivot-selection strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::PivotStrategy;
use ssj_bench::bench_corpus;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for strategy in PivotStrategy::all() {
        g.bench_function(format!("fsjoin_{}", strategy.name()), |b| {
            let cfg = fsjoin::FsJoinConfig::default()
                .with_theta(0.8)
                .with_pivot_strategy(strategy);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
