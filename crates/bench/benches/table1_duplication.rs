//! Table I (bench-scale): the duplication contrast — FS-Join's
//! segment-emitting map phase vs RIDPairsPPJoin's signature-replicating
//! map phase, isolated to the first (shuffle-heavy) job of each.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_baselines::ridpairs::ridpairs_ppjoin;
use ssj_baselines::BaselineConfig;
use ssj_bench::bench_corpus;
use ssj_similarity::Measure;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("fsjoin_duplication_free_pipeline", |b| {
        let cfg = fsjoin::FsJoinConfig::default().with_theta(0.8);
        b.iter(|| {
            let res = fsjoin::run_self_join(black_box(&collection), &cfg);
            // The quantity Table I is about: shuffled bytes of the filter job.
            res.chain.job("fsjoin-filter").unwrap().shuffle_bytes
        })
    });
    g.bench_function("ridpairs_duplicating_pipeline", |b| {
        let cfg = BaselineConfig::default();
        b.iter(|| {
            let res = ridpairs_ppjoin(black_box(&collection), Measure::Jaccard, 0.8, &cfg);
            res.chain.job("ridpairs-kernel").unwrap().shuffle_bytes
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
