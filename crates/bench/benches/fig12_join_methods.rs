//! Figure 12 (bench-scale): FS-Join across fragment join kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::JoinKernel;
use ssj_bench::bench_corpus;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for kernel in JoinKernel::all() {
        g.bench_function(format!("fsjoin_{}", kernel.name()), |b| {
            let cfg = fsjoin::FsJoinConfig::default()
                .with_theta(0.8)
                .with_kernel(kernel);
            b.iter(|| fsjoin::run_self_join(black_box(&collection), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
