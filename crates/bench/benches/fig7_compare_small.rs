//! Figure 7 (bench-scale): all five algorithms on a tiny corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_baselines::massjoin::{massjoin, MassJoinVariant};
use ssj_baselines::ridpairs::ridpairs_ppjoin;
use ssj_baselines::vsmart::vsmart_join;
use ssj_baselines::BaselineConfig;
use ssj_bench::bench_corpus;
use ssj_similarity::Measure;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let cfg = BaselineConfig::default();
    let theta = 0.85;
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("fsjoin", |b| {
        let fscfg = fsjoin::FsJoinConfig::default().with_theta(theta);
        b.iter(|| fsjoin::run_self_join(black_box(&collection), &fscfg))
    });
    g.bench_function("ridpairs", |b| {
        b.iter(|| ridpairs_ppjoin(black_box(&collection), Measure::Jaccard, theta, &cfg))
    });
    g.bench_function("vsmart", |b| {
        b.iter(|| vsmart_join(black_box(&collection), Measure::Jaccard, theta, &cfg).unwrap())
    });
    g.bench_function("massjoin_merge", |b| {
        b.iter(|| {
            massjoin(
                black_box(&collection),
                Measure::Jaccard,
                theta,
                MassJoinVariant::Merge,
                &cfg,
            )
            .unwrap()
        })
    });
    g.bench_function("massjoin_light", |b| {
        b.iter(|| {
            massjoin(
                black_box(&collection),
                Measure::Jaccard,
                theta,
                MassJoinVariant::MergeLight,
                &cfg,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
