//! Shuffle data-plane micro-benchmark: reduce-side k-way merge vs the
//! pre-refactor concat + re-sort, across run counts (k = 2..64) and key
//! distributions (uniform and skewed), plus allocation counts for the
//! grouped-value reduce path.
//!
//! Besides throughput, the bench counts heap allocations with a wrapping
//! global allocator and prints them before Criterion runs: the streaming
//! grouped path ([`GroupedRuns`]) must perform **zero per-key engine
//! allocations**, while the legacy group-walk pays one `Vec` per key (plus
//! its growth). The same counter guards the map-side combine path: a
//! fold-style [`Combiner::combine_into`] override (what [`SumCombiner`]
//! ships) must not allocate per key, while a combiner that only implements
//! the batch `combine` pays the default adapter's per-key `Vec`. Numbers
//! are recorded in `results/shuffle.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_mapreduce::{Combiner, GroupedRuns, KWayMerge, SumCombiner};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---- Allocation counting ---------------------------------------------------

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOC_CALLS.load(Ordering::Relaxed) - before)
}

// ---- Fixtures --------------------------------------------------------------

/// Deterministic splitmix64 (no external PRNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy)]
enum KeyDist {
    /// Keys uniform over the domain.
    Uniform,
    /// Zipf-like: the draw is cubed into [0, 1), concentrating mass on the
    /// low keys (frequent-token skew, the regime FS-Join's cells see).
    Skewed,
}

/// `k` sorted runs totalling `total` pairs — the shape a reduce task
/// fetches from the spill store after a `k`-map-task job.
fn make_runs(k: usize, total: usize, dist: KeyDist, seed: u64) -> Vec<Vec<(u32, u64)>> {
    const DOMAIN: u64 = 50_000;
    let mut state = seed;
    let per_run = total / k;
    (0..k)
        .map(|_| {
            let mut run: Vec<(u32, u64)> = (0..per_run)
                .map(|_| {
                    let r = splitmix64(&mut state);
                    let key = match dist {
                        KeyDist::Uniform => r % DOMAIN,
                        KeyDist::Skewed => {
                            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                            ((u * u * u) * DOMAIN as f64) as u64
                        }
                    };
                    (key as u32, splitmix64(&mut state))
                })
                .collect();
            run.sort_by_key(|&(key, _)| key);
            run
        })
        .collect()
}

/// Fold the merged stream into a checksum (keeps the comparison about
/// merge cost, not about materializing an output vector).
fn checksum(pairs: impl Iterator<Item = (u32, u64)>) -> u64 {
    pairs.fold(0u64, |acc, (k, v)| {
        acc.wrapping_mul(31)
            .wrapping_add(u64::from(k))
            .wrapping_add(v)
    })
}

fn merge_checksum(runs: &[Vec<(u32, u64)>]) -> u64 {
    let slices: Vec<&[(u32, u64)]> = runs.iter().map(Vec::as_slice).collect();
    checksum(KWayMerge::new(slices).copied())
}

/// The pre-refactor reduce input path: concatenate every run and stable
/// re-sort the whole thing.
fn resort_checksum(runs: &[Vec<(u32, u64)>]) -> u64 {
    let mut all: Vec<(u32, u64)> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|&(key, _)| key);
    checksum(all.into_iter())
}

/// Streaming grouped reduce: fold each group's values without any per-key
/// buffer (what a native `StreamingReducer` costs the engine).
fn grouped_streaming(runs: &[Vec<(u32, u64)>]) -> (usize, u64) {
    let slices: Vec<&[(u32, u64)]> = runs.iter().map(Vec::as_slice).collect();
    let mut groups = 0usize;
    let mut acc = 0u64;
    GroupedRuns::new(slices).for_each_group(|k, vs| {
        groups += 1;
        let sum: u64 = vs.copied().sum();
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(u64::from(*k))
            .wrapping_add(sum);
    });
    (groups, acc)
}

/// The pre-refactor group-walk: concat + re-sort, then one `Vec` per key.
fn grouped_legacy(runs: &[Vec<(u32, u64)>]) -> (usize, u64) {
    let mut all: Vec<(u32, u64)> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|&(key, _)| key);
    let mut groups = 0usize;
    let mut acc = 0u64;
    let mut current: Option<(u32, Vec<u64>)> = None;
    let flush = |k: u32, vals: Vec<u64>, groups: &mut usize, acc: &mut u64| {
        *groups += 1;
        let sum: u64 = vals.into_iter().sum();
        *acc = acc
            .wrapping_mul(31)
            .wrapping_add(u64::from(k))
            .wrapping_add(sum);
    };
    for (k, v) in all {
        match &mut current {
            Some((ck, vals)) if *ck == k => vals.push(v),
            _ => {
                if let Some((ck, vals)) = current.take() {
                    flush(ck, vals, &mut groups, &mut acc);
                }
                current = Some((k, vec![v]));
            }
        }
    }
    if let Some((ck, vals)) = current.take() {
        flush(ck, vals, &mut groups, &mut acc);
    }
    (groups, acc)
}

/// A combiner identical to [`SumCombiner`] except it implements only the
/// batch `combine` — so it pays the trait's default `combine_into`
/// adapter, which collects every key group into a fresh `Vec`. This is
/// what all fold-style combiners cost before the `combine_into` override
/// existed.
struct BatchSumCombiner;

impl Combiner<u32, u64> for BatchSumCombiner {
    fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
}

/// The engine's map-side combine shape: walk a sorted bucket key group by
/// key group, streaming each group's values into `combine_into` with one
/// reused output vector.
fn combine_bucket<C: Combiner<u32, u64>>(c: &C, bucket: &[(u32, u64)]) -> (usize, u64) {
    let mut out: Vec<u64> = Vec::with_capacity(4);
    let mut groups = 0usize;
    let mut acc = 0u64;
    let mut i = 0usize;
    while i < bucket.len() {
        let key = bucket[i].0;
        let mut end = i + 1;
        while end < bucket.len() && bucket[end].0 == key {
            end += 1;
        }
        out.clear();
        c.combine_into(&key, &mut bucket[i..end].iter().map(|&(_, v)| v), &mut out);
        groups += 1;
        for &v in &out {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(u64::from(key))
                .wrapping_add(v);
        }
        i = end;
    }
    (groups, acc)
}

// ---- Allocation report (printed once, before Criterion) --------------------

fn report_allocations() {
    let runs = make_runs(16, 200_000, KeyDist::Uniform, 42);
    // Warm-up outside the counted window (lazy allocator state).
    let warm = grouped_streaming(&runs);
    let ((groups, stream_sum), stream_allocs) = allocs_during(|| grouped_streaming(&runs));
    let ((legacy_groups, legacy_sum), legacy_allocs) = allocs_during(|| grouped_legacy(&runs));
    assert_eq!(warm, (groups, stream_sum));
    assert_eq!((groups, stream_sum), (legacy_groups, legacy_sum));
    println!(
        "alloc-report: groups={groups} streaming_allocs={stream_allocs} \
         legacy_allocs={legacy_allocs}"
    );
    // The refactor's claim: the streaming grouped path allocates only the
    // run-slice vector and the k-entry heap — never per key. The legacy
    // walk pays at least one Vec per key on top of the concat buffer.
    assert!(
        stream_allocs < 8,
        "streaming grouped path must not allocate per key \
         ({stream_allocs} allocs for {groups} groups)"
    );
    assert!(
        legacy_allocs > groups,
        "legacy group-walk should allocate per key \
         ({legacy_allocs} allocs for {groups} groups)"
    );
}

fn report_combine_allocations() {
    // One key-sorted map bucket, the shape the spill path combines.
    let bucket = {
        let runs = make_runs(1, 200_000, KeyDist::Uniform, 17);
        runs.into_iter().next().unwrap()
    };
    let warm = combine_bucket(&SumCombiner, &bucket);
    let ((groups, fold_sum), fold_allocs) = allocs_during(|| combine_bucket(&SumCombiner, &bucket));
    let ((batch_groups, batch_sum), batch_allocs) =
        allocs_during(|| combine_bucket(&BatchSumCombiner, &bucket));
    assert_eq!(warm, (groups, fold_sum));
    assert_eq!((groups, fold_sum), (batch_groups, batch_sum));
    println!(
        "combine-report: groups={groups} fold_allocs={fold_allocs} batch_allocs={batch_allocs}"
    );
    // The perf fix's claim: a fold-style `combine_into` override combines
    // a whole bucket with a bounded handful of allocations (the reused
    // output vector), while the default batch adapter collects one `Vec`
    // per key group.
    assert!(
        fold_allocs < 8,
        "fold-style combine_into must not allocate per key \
         ({fold_allocs} allocs for {groups} groups)"
    );
    assert!(
        batch_allocs >= groups,
        "batch-default combine_into should allocate per key \
         ({batch_allocs} allocs for {groups} groups)"
    );
}

// ---- Criterion groups ------------------------------------------------------

fn bench_merge_vs_resort(c: &mut Criterion) {
    report_allocations();
    report_combine_allocations();
    const TOTAL: usize = 200_000;
    for (dist, label) in [(KeyDist::Uniform, "uniform"), (KeyDist::Skewed, "skewed")] {
        let mut g = c.benchmark_group(format!("shuffle_merge_{label}"));
        g.sample_size(15);
        for k in [2usize, 4, 8, 16, 32, 64] {
            let runs = make_runs(k, TOTAL, dist, 42 + k as u64);
            // Sanity: both paths must agree before we compare their cost.
            assert_eq!(merge_checksum(&runs), resort_checksum(&runs));
            g.bench_function(format!("merge/k{k}"), |bench| {
                bench.iter(|| merge_checksum(black_box(&runs)))
            });
            g.bench_function(format!("resort/k{k}"), |bench| {
                bench.iter(|| resort_checksum(black_box(&runs)))
            });
        }
        g.finish();
    }
}

fn bench_grouped_paths(c: &mut Criterion) {
    const TOTAL: usize = 200_000;
    let mut g = c.benchmark_group("grouped_reduce");
    g.sample_size(15);
    for k in [8usize, 32] {
        let runs = make_runs(k, TOTAL, KeyDist::Uniform, 7 + k as u64);
        assert_eq!(grouped_streaming(&runs), grouped_legacy(&runs));
        g.bench_function(format!("streaming/k{k}"), |bench| {
            bench.iter(|| grouped_streaming(black_box(&runs)))
        });
        g.bench_function(format!("legacy/k{k}"), |bench| {
            bench.iter(|| grouped_legacy(black_box(&runs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge_vs_resort, bench_grouped_paths);
criterion_main!(benches);
