//! Micro-benchmarks of the serving plane: index build, single probes,
//! top-k, inserts, and compaction on the bench corpus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ssj_bench::bench_corpus;
use ssj_serve::{build_index, ProbeStats, ServeConfig};
use std::hint::black_box;

fn cfg() -> ServeConfig {
    ServeConfig::default().with_theta_min(0.7)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_build");
    g.sample_size(10);
    let collection = bench_corpus();
    g.bench_function("bench_corpus", |bench| {
        bench.iter(|| build_index(black_box(&collection), &cfg()))
    });
    g.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_probe");
    g.sample_size(30);
    let collection = bench_corpus();
    let index = build_index(&collection, &cfg());
    // A mid-sized record: representative prefix + posting work.
    let query = index.tokens_of((index.len() / 2) as u32).to_vec();
    g.bench_function("single_theta08", |bench| {
        bench.iter(|| {
            let mut stats = ProbeStats::default();
            index.probe_with(black_box(&query), 0.8, None, &mut stats)
        })
    });
    g.bench_function("top8", |bench| {
        bench.iter(|| index.top_k(black_box(&query), 8))
    });
    g.bench_function("replay_all_theta08", |bench| {
        bench.iter(|| {
            let mut stats = ProbeStats::default();
            let mut hits = 0usize;
            for rec in 0..index.len() as u32 {
                hits += index
                    .probe_with(index.tokens_of(rec), 0.8, Some(rec), &mut stats)
                    .len();
            }
            hits
        })
    });
    g.finish();
}

fn bench_freshness(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_freshness");
    g.sample_size(10);
    let collection = bench_corpus();
    let n = collection.len();
    let tail: Vec<Vec<u32>> = (n * 4 / 5..n)
        .map(|rid| collection.tokens(rid as u32).to_vec())
        .collect();
    g.bench_function("insert_tail_fifth", |bench| {
        bench.iter_batched(
            || build_index(&collection, &cfg()),
            |mut index| {
                for tokens in &tail {
                    index.insert(black_box(tokens)).unwrap();
                }
                index
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("compact_tail_fifth", |bench| {
        bench.iter_batched(
            || {
                let mut index = build_index(&collection, &cfg());
                for tokens in &tail {
                    index.insert(tokens).unwrap();
                }
                index
            },
            |mut index| {
                index.compact();
                index
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_probe, bench_freshness);
criterion_main!(benches);
