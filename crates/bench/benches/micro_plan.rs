//! Micro-benchmark of plan-level pipelining: the same multi-stage chains
//! executed by [`PlanRunner`] in pipelined vs sequential (barriered) mode.
//!
//! Two real chains are measured end-to-end:
//!
//! - **FS-Join** (2 stages): fragment filtering → verification.
//! - **MassJoin Merge+Light** (3 stages): signature generation →
//!   candidate dedup → verification (the paper's 4-job pipeline, with the
//!   shared ordering job run once at encode time).
//!
//! Pipelining never changes results or logical metrics — only *when* tasks
//! run — so both modes produce bit-identical pairs (asserted here). The
//! report lines print three observables per chain: wall-clock, simulated
//! cluster makespan ([`ClusterModel::simulate_plan`] vs the barriered
//! [`ClusterModel::simulate_chain_schedule`]), and the peak live
//! intermediate bytes held between stages (eager partition dropping).

use criterion::{criterion_group, criterion_main, Criterion};
use fsjoin::FsJoinResult;
use ssj_baselines::massjoin::{massjoin, MassJoinVariant};
use ssj_baselines::{BaselineConfig, JoinRunResult};
use ssj_bench::datasets::{bench_corpus, tuned_fsjoin};
use ssj_mapreduce::{ChainMetrics, ClusterModel, PlanMode};
use ssj_similarity::Measure;
use ssj_text::{Collection, CorpusProfile};
use std::hint::black_box;
use std::time::Instant;

const THETA: f64 = 0.8;

fn fsjoin_cfg(mode: PlanMode) -> fsjoin::FsJoinConfig {
    tuned_fsjoin(CorpusProfile::WikiLike)
        .with_theta(THETA)
        .with_measure(Measure::Jaccard)
        .with_tasks(8, 12)
        .with_plan_mode(mode)
}

fn massjoin_cfg(mode: PlanMode) -> BaselineConfig {
    BaselineConfig::default()
        .with_tasks(8, 12)
        .with_plan_mode(mode)
}

fn run_fsjoin(coll: &Collection, mode: PlanMode) -> FsJoinResult {
    fsjoin::run_self_join(coll, &fsjoin_cfg(mode))
}

fn run_massjoin(coll: &Collection, mode: PlanMode) -> JoinRunResult {
    massjoin(
        coll,
        Measure::Jaccard,
        THETA,
        MassJoinVariant::MergeLight,
        &massjoin_cfg(mode),
    )
    .expect("bench corpus fits the signature budget")
}

/// Linear chain: stage `i` consumes stage `i − 1`.
fn linear_deps(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| i.checked_sub(1).into_iter().collect())
        .collect()
}

/// Median wall-clock of `runs` timed invocations (after one warm-up).
fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Simulated makespans on a modelled cluster from ONE chain's logical
/// metrics (mode-invariant, so the comparison isolates the schedule):
/// partition-granular pipelined vs whole-job barriered.
fn simulated_secs(chain: &ChainMetrics) -> (f64, f64) {
    // Two nodes (6 slots) against 12 reduce partitions: each phase runs in
    // waves, so a downstream map can start on wave-1 partitions while
    // wave 2 is still reducing — the schedule pipelining exploits.
    let cluster = ClusterModel::paper_default(2);
    let deps = linear_deps(chain.jobs.len());
    let piped = cluster
        .simulate_plan(chain, &deps)
        .iter()
        .map(|s| s.end_secs)
        .fold(0.0f64, f64::max);
    let barriered = cluster
        .simulate_chain_schedule(chain)
        .iter()
        .map(|s| s.end_secs)
        .fold(0.0f64, f64::max);
    (piped, barriered)
}

fn report_chain(
    name: &str,
    chain: &ChainMetrics,
    wall_piped_ms: f64,
    wall_seq_ms: f64,
    peak_piped: usize,
    peak_seq: usize,
) {
    let (sim_piped, sim_barrier) = simulated_secs(chain);
    println!(
        "plan-report: chain={name} stages={} wall_piped_ms={wall_piped_ms:.1} \
         wall_seq_ms={wall_seq_ms:.1} sim_piped_ms={:.2} \
         sim_barrier_ms={:.2} peak_piped_bytes={peak_piped} \
         peak_seq_bytes={peak_seq}",
        chain.jobs.len(),
        sim_piped * 1e3,
        sim_barrier * 1e3,
    );
    assert!(
        peak_piped <= peak_seq,
        "{name}: eager dropping must not raise the high-water mark \
         ({peak_piped} > {peak_seq})"
    );
    assert!(
        sim_piped <= sim_barrier + 1e-9,
        "{name}: pipelined simulated makespan must not exceed barriered"
    );
}

fn report_plan_modes(coll: &Collection) {
    // FS-Join: 2-stage filter → verify chain.
    let piped = run_fsjoin(coll, PlanMode::Pipelined);
    let seq = run_fsjoin(coll, PlanMode::Sequential);
    assert_eq!(piped.pairs, seq.pairs, "fsjoin results are mode-invariant");
    let wall_p = median_ms(3, || run_fsjoin(coll, PlanMode::Pipelined));
    let wall_s = median_ms(3, || run_fsjoin(coll, PlanMode::Sequential));
    report_chain(
        "fsjoin",
        &seq.chain,
        wall_p,
        wall_s,
        piped.peak_live_bytes,
        seq.peak_live_bytes,
    );

    // MassJoin Merge+Light: 3-stage signatures → dedup → verify chain.
    let piped = run_massjoin(coll, PlanMode::Pipelined);
    let seq = run_massjoin(coll, PlanMode::Sequential);
    assert_eq!(
        piped.pairs, seq.pairs,
        "massjoin results are mode-invariant"
    );
    let wall_p = median_ms(3, || run_massjoin(coll, PlanMode::Pipelined));
    let wall_s = median_ms(3, || run_massjoin(coll, PlanMode::Sequential));
    report_chain(
        "massjoin-light",
        &seq.chain,
        wall_p,
        wall_s,
        piped.peak_live_bytes,
        seq.peak_live_bytes,
    );
}

fn bench_plan_modes(c: &mut Criterion) {
    let coll = bench_corpus();
    report_plan_modes(&coll);

    let mut g = c.benchmark_group("plan_fsjoin");
    g.sample_size(10);
    g.bench_function("pipelined", |b| {
        b.iter(|| black_box(run_fsjoin(&coll, PlanMode::Pipelined)))
    });
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(run_fsjoin(&coll, PlanMode::Sequential)))
    });
    g.finish();

    let mut g = c.benchmark_group("plan_massjoin_light");
    g.sample_size(10);
    g.bench_function("pipelined", |b| {
        b.iter(|| black_box(run_massjoin(&coll, PlanMode::Pipelined)))
    });
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(run_massjoin(&coll, PlanMode::Sequential)))
    });
    g.finish();
}

criterion_group!(benches, bench_plan_modes);
criterion_main!(benches);
