//! Figure 9 (bench-scale): FS-Join at varying task geometry + cluster
//! simulation (the node-scalability pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_bench::bench_corpus;
use ssj_mapreduce::ClusterModel;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let collection = bench_corpus();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for nodes in [5usize, 10, 15] {
        g.bench_function(format!("fsjoin_{nodes}nodes"), |b| {
            let cfg = fsjoin::FsJoinConfig::default()
                .with_theta(0.8)
                .with_tasks(2 * nodes, 3 * nodes);
            let cluster = ClusterModel::paper_default(nodes);
            b.iter(|| {
                let res = fsjoin::run_self_join(black_box(&collection), &cfg);
                res.simulated_secs(&cluster)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
